//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Implements `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! warmup-then-sample loop over `std::time::Instant`; results print as
//! `<group>/<name>  time: [min mean max]` lines, so the bench bins remain
//! runnable (and their numbers comparable run-to-run) without crates.io.

use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark, e.g. `forward/128`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the most recent `iter`.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up for ~20ms to populate caches and settle the branch
        // predictors, estimating the per-iteration cost as we go.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        // Aim for ~2ms per sample so short routines are batched.
        let iters_per_sample = ((2_000_000 / per_iter.max(1)) as u64).clamp(1, 1 << 20);

        self.samples.clear();
        self.iters_per_sample = iters_per_sample;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Mean nanoseconds per iteration over all samples.
    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos()).sum();
        total as f64 / (self.samples.len() as u64 * self.iters_per_sample) as f64
    }

    fn min_ns(&self) -> f64 {
        self.samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .fold(f64::INFINITY, f64::min)
    }

    fn max_ns(&self) -> f64 {
        self.samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .fold(0.0, f64::max)
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        let sample_size = self.sample_size;
        self.criterion.run_bench(&full, sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        let sample_size = self.sample_size;
        self.criterion
            .run_bench(&full, sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo-bench passes `--bench` plus an optional name filter; honour
        // the filter, ignore the flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 15,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_bench(name, 15, f);
        self
    }

    fn run_bench<F>(&mut self, full_name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher::new(sample_size);
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{full_name:<48} (no measurements: closure never called iter)");
            return;
        }
        println!(
            "{full_name:<48} time: [{} {} {}]",
            format_ns(bencher.min_ns()),
            format_ns(bencher.mean_ns()),
            format_ns(bencher.max_ns()),
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
