//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Implements the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros, a
//! `Strategy` trait with range / tuple / collection strategies, and
//! `ProptestConfig::with_cases`. Each test runs `cases` deterministic random
//! inputs (seeded from the test name, plus a `PROPTEST_SEED` env override for
//! exploration); there is no shrinking — the failing inputs are printed
//! verbatim instead, which the deterministic seeding makes reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!` family; carried as a `Result` so the
/// macros can early-return out of the test-case closure.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG. Seeded from the test path via FNV-1a so every
/// test sees an independent but stable stream.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// Generates values of an output type from a RNG. `new_tree`-style
/// intermediate trees (for shrinking) are intentionally absent.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = rng.0.gen_range(0..span);
                ((self.start as i64) + off as i64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range must be non-empty");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                let off = rng.0.gen_range(0..span);
                ((lo as i64) + off as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(isize, i64, i32, i16, i8);

/// String strategies: a `&str` pattern is interpreted as a miniature regex of
/// literal characters and character classes with optional `{n}` / `{m,n}`
/// repetition — enough for patterns like `"[a-z ]{0,200}"`.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = if c == '[' {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') | None => break,
                        Some('-') => {
                            // Range like `a-z` (leading/trailing '-' is literal).
                            match (prev, chars.peek().copied()) {
                                (Some(lo), Some(hi)) if hi != ']' => {
                                    chars.next();
                                    for u in (lo as u32 + 1)..=(hi as u32) {
                                        if let Some(ch) = char::from_u32(u) {
                                            class.push(ch);
                                        }
                                    }
                                    prev = None;
                                }
                                _ => {
                                    class.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        Some(ch) => {
                            class.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                Atom::Class(class)
            } else {
                Atom::Literal(c)
            };
            // Optional repetition suffix.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().unwrap_or(0),
                        b.trim().parse::<usize>().unwrap_or(0),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo >= hi {
                lo
            } else {
                rng.0.gen_range(lo..=hi)
            };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(ch) => out.push(*ch),
                    Atom::Class(class) => {
                        if !class.is_empty() {
                            let i = rng.0.gen_range(0..class.len());
                            out.push(class[i]);
                        }
                    }
                }
            }
        }
        out
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `Just`-style constant strategy, handy for composed tests.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Size specification for collection strategies: either an exact length or a
/// half-open range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range must be non-empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves via the prelude.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::{prop, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
}

/// The test-definition macro. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a real `#[test]` that loops `cases` times, generating every
/// argument from its strategy and treating `prop_assert*` failures as fatal
/// with the offending inputs attached.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", $arg));
                        )*
                        s
                    };
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 0u64..5, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0usize..4, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn tuple_strategies_work(pair in prop::collection::vec((0usize..8, 0usize..8), 1..5)) {
            for (a, b) in &pair {
                prop_assert!(*a < 8 && *b < 8);
            }
            prop_assert_eq!(pair.len(), pair.len());
        }
    }

    #[test]
    fn deterministic_given_same_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = 0usize..100;
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
