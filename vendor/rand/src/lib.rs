//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal implementation of the API surface it actually calls: `StdRng` +
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods `gen`,
//! `gen_range`, `gen_bool`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! Unlike a generic PRNG shim, this implementation is **bit-for-bit
//! stream-compatible with upstream `rand` 0.8**: `StdRng` is ChaCha12 seeded
//! through `rand_core`'s PCG32-based `seed_from_u64` expansion, consumed
//! through the same `BlockRng` word-buffer discipline (64 × u32 per refill,
//! `next_u64` = two consecutive little-endian words), and every distribution
//! helper replicates the upstream sampling algorithm exactly:
//!
//! * `gen::<f32>` / `gen::<f64>`: high 24 / 53 bits of one `u32` / `u64`,
//!   multiply-based mapping into `[0, 1)`.
//! * integer `gen_range`: widening-multiply with the upstream zone-rejection
//!   constants (`u32` lanes for `u8`/`u16`/`u32`, `u64` lanes for
//!   `u64`/`usize`).
//! * float `gen_range`: exponent-splice into `[1, 2)` then rescale, with the
//!   one-ULP `scale` decrease on the (astronomically rare) retry path.
//! * `gen_bool`: Bernoulli via 64-bit integer threshold `(p * 2^64) as u64`.
//! * `shuffle` / `choose`: upstream visitation order and draw types.
//!
//! Consequently every seeded recording in `EXPERIMENTS.md` (produced against
//! crates.io `rand` 0.8 when the repo seed was created) reproduces exactly,
//! and swapping this shim for the real crate changes no observable output.

/// Low-level source of random words, mirroring `rand_core::RngCore`.
///
/// Both methods are required because upstream's `BlockRng` consumes its
/// buffer differently for each: `next_u32` takes one word, `next_u64` takes
/// two consecutive words (low word first). Callers must hit the same method
/// upstream would, so neither may be defined in terms of the other.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers), matching upstream
/// `Distribution<T> for Standard`.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits of one u32 -> [0, 1), upstream's multiply-based method.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream compares the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer uniform sampling, transcribed from upstream `UniformInt`'s
/// `sample_single_inclusive`: widening multiply of one full-width draw
/// against the span, rejecting the biased low-word tail. `$large` is the
/// lane type upstream assigns each integer (`u32` for sub-word types).
macro_rules! uniform_int_range {
    ($($t:ty => $large:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: low >= high");
                sample_inclusive_int(self.start, self.end - 1, rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "gen_range: low > high");
                sample_inclusive_int(*self.start(), *self.end(), rng)
            }
        }

        impl UniformInt for $t {
            type Large = $large;

            fn to_large(self) -> $large {
                self as $large
            }

            fn wrapping_add_large(self, v: $large) -> $t {
                self.wrapping_add(v as $t)
            }
        }
    )*};
}

trait UniformInt: StandardSample + Copy + PartialOrd {
    type Large: UniformLarge;

    fn to_large(self) -> Self::Large;
    fn wrapping_add_large(self, v: Self::Large) -> Self;
}

trait UniformLarge: StandardSample + Copy + PartialOrd {
    fn wrapping_sub_add_one(hi: Self, lo: Self) -> Self;
    fn is_zero(self) -> bool;
    /// Upstream's shift-approximation rejection zone for word-size types.
    fn zone(self) -> Self;
    /// Upstream's exact modulus zone `max - (max - range + 1) % range`, used
    /// for sub-word types (u8/u16 sampled in u32 lanes).
    fn exact_zone(self) -> Self;
    fn wmul(self, rhs: Self) -> (Self, Self);
}

macro_rules! uniform_large_impl {
    ($($t:ty, $wide:ty),*) => {$(
        impl UniformLarge for $t {
            fn wrapping_sub_add_one(hi: Self, lo: Self) -> Self {
                hi.wrapping_sub(lo).wrapping_add(1)
            }

            fn is_zero(self) -> bool {
                self == 0
            }

            fn zone(self) -> Self {
                (self << self.leading_zeros()).wrapping_sub(1)
            }

            fn exact_zone(self) -> Self {
                let ints_to_reject = (<$t>::MAX - self + 1) % self;
                <$t>::MAX - ints_to_reject
            }

            fn wmul(self, rhs: Self) -> (Self, Self) {
                let t = self as $wide * rhs as $wide;
                ((t >> <$t>::BITS) as $t, t as $t)
            }
        }
    )*};
}

uniform_large_impl!(u32, u64, u64, u128, usize, u128);

fn sample_inclusive_int<T: UniformInt, R: RngCore + ?Sized>(low: T, high: T, rng: &mut R) -> T {
    let range = T::Large::wrapping_sub_add_one(high.to_large(), low.to_large());
    // Wrap-around to 0 means the range covers the whole type.
    if range.is_zero() {
        return T::sample_standard(rng);
    }
    // Upstream uses the exact modulus zone for u8/u16 (cheap at 32-bit lane
    // width) and the shift approximation for u32 and wider.
    let zone = if core::mem::size_of::<T>() <= 2 {
        range.exact_zone()
    } else {
        range.zone()
    };
    loop {
        let v = T::Large::sample_standard(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return low.wrapping_add_large(hi);
        }
    }
}

uniform_int_range!(u8 => u32, u16 => u32, u32 => u32, u64 => u64, usize => usize);

/// Float uniform sampling, transcribed from upstream `UniformFloat`'s
/// `sample_single`: splice random mantissa bits under exponent 0 to get a
/// value in `[1, 2)`, rescale into `[low, high)`, and on the rare rounding
/// collision with `high` retry with `scale` lowered by one ULP
/// (`decrease_masked`).
macro_rules! float_sample_range {
    ($($t:ty, $u:ty, $bits_to_discard:expr, $exp_bits:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                debug_assert!(low.is_finite() && high.is_finite(), "gen_range: non-finite bound");
                assert!(low < high, "gen_range: low >= high");
                let mut scale = high - low;
                assert!(scale.is_finite(), "gen_range: range overflow");
                loop {
                    let value1_2 = <$t>::from_bits(
                        (<$u as StandardSample>::sample_standard(rng) >> $bits_to_discard)
                            | $exp_bits,
                    );
                    let res = (value1_2 - 1.0) * scale + low;
                    if res < high {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}

float_sample_range!(f32, u32, 9, 127u32 << 23; f64, u64, 12, 1023u64 << 52);

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw, matching upstream: threshold `(p * 2^64) as u64`
    /// against one `u64`; `p == 1.0` short-circuits without consuming
    /// randomness.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p={p} is outside range [0.0, 1.0]",
        );
        const ALWAYS_TRUE: u64 = u64::MAX;
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = if p == 1.0 {
            ALWAYS_TRUE
        } else {
            (p * SCALE) as u64
        };
        if p_int == ALWAYS_TRUE {
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_DOUBLE_ROUNDS: usize = 6; // ChaCha12, upstream StdRng's cipher
    const BUF_WORDS: usize = 64; // BlockRng refills four 16-word blocks at once

    /// ChaCha12 generator, stream-compatible with `rand` 0.8's `StdRng`
    /// (`rand_chacha::ChaCha12Rng` consumed through `rand_core::BlockRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        /// 64-bit block counter (state words 12–13); the stream id (words
        /// 14–15) is always 0, as upstream leaves it unless `set_stream` is
        /// called.
        counter: u64,
        buf: [u32; BUF_WORDS],
        /// Next unconsumed word in `buf`; `BUF_WORDS` means "refill first".
        index: usize,
    }

    impl StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        /// Refill the buffer with the next four keystream blocks and position
        /// the read cursor at `offset`, mirroring `BlockRng::generate_and_set`.
        fn generate_and_set(&mut self, offset: usize) {
            for block in 0..BUF_WORDS / 16 {
                let words = chacha_block(
                    &self.key,
                    self.counter.wrapping_add(block as u64),
                    CHACHA_DOUBLE_ROUNDS,
                );
                self.buf[block * 16..(block + 1) * 16].copy_from_slice(&words);
            }
            self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
            self.index = offset;
        }
    }

    impl SeedableRng for StdRng {
        /// `rand_core`'s default `seed_from_u64`: a PCG32 walk expands the
        /// u64 into the 32-byte ChaCha key.
        fn seed_from_u64(mut state: u64) -> Self {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.buf[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            let read_u64 = |buf: &[u32; BUF_WORDS], i: usize| {
                (u64::from(buf[i + 1]) << 32) | u64::from(buf[i])
            };
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read_u64(&self.buf, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read_u64(&self.buf, 0)
            } else {
                // Straddles a refill: last word of this buffer is the low
                // half, first word of the next is the high half.
                let lo = u64::from(self.buf[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let hi = u64::from(self.buf[0]);
                (hi << 32) | lo
            }
        }
    }

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// One djb-variant ChaCha block: 64-bit counter in words 12–13, 64-bit
    /// stream id (always 0 here) in words 14–15.
    fn chacha_block(key: &[u32; 8], counter: u64, double_rounds: usize) -> [u32; 16] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..double_rounds {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        state
    }

    #[cfg(test)]
    pub(crate) fn chacha_block_for_tests(
        key: &[u32; 8],
        counter: u64,
        double_rounds: usize,
    ) -> [u32; 16] {
        chacha_block(key, counter, double_rounds)
    }
}

pub mod seq {
    use super::{sample_inclusive_int, RngCore};

    /// Upstream's `gen_index`: uniform in `[0, ubound)`, sampled in **u32**
    /// lanes whenever the bound fits, "primarily in order to produce the same
    /// output on 32-bit and 64-bit platforms" — and therefore load-bearing
    /// for stream compatibility (one buffer word per draw, u32 zone
    /// constants).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            sample_inclusive_int(0u32, (ubound - 1) as u32, rng) as usize
        } else {
            sample_inclusive_int(0usize, ubound - 1, rng)
        }
    }

    /// Slice helpers; only `shuffle` and `choose` are used by this workspace.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, descending, exactly upstream's draw sequence:
            // one `gen_index(rng, i + 1)` per swap.
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{chacha_block_for_tests, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    /// ChaCha20 block 0 under the all-zero key equals the canonical djb test
    /// vector (the first 64 keystream bytes `76 b8 e0 ad ...`). The block
    /// function is shared verbatim with the ChaCha12 used by `StdRng`, so
    /// this pins the constants, round structure, counter placement, and
    /// feed-forward addition against an external reference.
    #[test]
    fn chacha20_zero_key_reference_vector() {
        let words = chacha_block_for_tests(&[0u32; 8], 0, 10);
        let mut bytes = [0u8; 64];
        for (chunk, w) in bytes.chunks_exact_mut(4).zip(words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 16] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28,
        ];
        assert_eq!(&bytes[..16], &expected);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    /// Mixed-width draws must stay aligned with the BlockRng buffer
    /// discipline: a u32 draw consumes one word, a u64 two, including across
    /// the refill boundary.
    #[test]
    fn mixed_width_draws_consume_block_buffer_words() {
        let mut whole = StdRng::seed_from_u64(3);
        let mut split = StdRng::seed_from_u64(3);
        // 63 u32 draws leave `split` one word before the refill boundary.
        let mut words = Vec::new();
        for _ in 0..66 {
            words.push(whole.next_u32());
        }
        for w in words.iter().take(63) {
            assert_eq!(split.next_u32(), *w);
        }
        // The straddling u64 must splice word 63 (low) with word 64 (high).
        let straddle = split.next_u64();
        assert_eq!(straddle as u32, words[63]);
        assert_eq!((straddle >> 32) as u32, words[64]);
        assert_eq!(split.next_u32(), words[65]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(0u32..5);
            assert!(z < 5);
            let w = rng.gen_range(250u8..=255);
            assert!(w >= 250);
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&g));
            let u = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&heads), "p=0.25 over 2000: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
