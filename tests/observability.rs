//! The observability layer's core contract: telemetry is *purely
//! observational*. Training with an [`ObsSession`] attached must reproduce
//! the uninstrumented run bit-for-bit — parameters, losses, and metrics —
//! at every thread count, and the JSONL stream it emits must be valid
//! line-by-line (manifest first, at least one completed epoch, a final
//! `run_end`).
//!
//! Observability state (the enable flag, the registry, the event sink) is
//! process-global, so every test here serialises on a mutex.

use std::path::PathBuf;
use std::sync::Mutex;

use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use cem_obs::{Event, Object, ObsSession, RunManifest, Value};
use crossem::config::PlusConfig;
use crossem::plus::CrossEmPlus;
use crossem::trainer::TrainOptions;
use crossem::{CrossEm, PromptKind, TrainConfig};

/// Serialises every test in this file: the obs enable flag, global
/// registry, and event sink are process-global state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn smoke_bundle() -> DatasetBundle {
    DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub))
}

fn train_config(prompt: PromptKind) -> TrainConfig {
    TrainConfig {
        prompt,
        hops: 1,
        epochs: 2,
        batch_vertices: 4,
        batch_images: 8,
        ..TrainConfig::default()
    }
}

fn scratch_jsonl(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cem_obs_test_{tag}_{}.jsonl", std::process::id()))
}

#[derive(PartialEq, Debug)]
struct Run {
    params: Vec<Vec<f32>>,
    losses: Vec<f32>,
    mrr: f32,
}

/// One full CrossEM run over a freshly rebuilt world, optionally streaming
/// telemetry to `sink`.
fn crossem_run(threads: usize, sink: Option<&ObsSession>) -> Run {
    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(5);
    let matcher = CrossEm::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Hard),
        &mut rng,
    );
    let report = matcher
        .train_with_options(
            &mut rng,
            TrainOptions { threads: Some(threads), obs: sink, ..Default::default() },
        )
        .expect("no checkpoints, no resume path to fail");
    Run {
        params: matcher.trainable_params().iter().map(|p| p.to_vec()).collect(),
        losses: report.epochs.iter().map(|e| e.mean_loss).collect(),
        mrr: matcher.evaluate().mrr,
    }
}

/// One full CrossEM⁺ run (PCP + negative sampling), optionally instrumented.
fn crossem_plus_run(threads: usize, sink: Option<&ObsSession>) -> Run {
    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(6);
    let plus = PlusConfig { negative_top_k: 3, ..PlusConfig::default() };
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Soft),
        plus,
        &mut rng,
    );
    let report = trainer
        .train_with_options(
            &mut rng,
            TrainOptions { threads: Some(threads), obs: sink, ..Default::default() },
        )
        .expect("no checkpoints, no resume path to fail");
    Run {
        params: trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect(),
        losses: report.train.epochs.iter().map(|e| e.mean_loss).collect(),
        mrr: trainer.evaluate().mrr,
    }
}

fn instrumented<F: FnOnce(&ObsSession) -> Run>(tag: &str, run: F) -> (Run, PathBuf) {
    let path = scratch_jsonl(tag);
    let session = ObsSession::begin(&path, &RunManifest::new(tag).threads(1))
        .expect("temp dir is writable");
    let result = run(&session);
    session.finish(&[("test", Value::Str(tag.to_string()))]);
    (result, path)
}

/// Acceptance gate: obs on vs obs off is bit-identical at 1 and 4 threads,
/// for both trainers.
#[test]
fn instrumented_training_is_bit_identical() {
    let _guard = lock();
    for threads in [1usize, 4] {
        let plain = crossem_run(threads, None);
        let (traced, path) = instrumented("bitid_em", |s| crossem_run(threads, Some(s)));
        assert_eq!(plain, traced, "CrossEM diverged under tracing at {threads} threads");
        let _ = std::fs::remove_file(path);

        let plain = crossem_plus_run(threads, None);
        let (traced, path) = instrumented("bitid_plus", |s| crossem_plus_run(threads, Some(s)));
        assert_eq!(plain, traced, "CrossEM⁺ diverged under tracing at {threads} threads");
        let _ = std::fs::remove_file(path);
    }
}

/// Every emitted line parses as a flat JSON object with a `type`; the
/// stream opens with the manifest, records both epochs, and closes with a
/// `run_end` carrying the wall time.
#[test]
fn instrumented_run_emits_valid_jsonl() {
    let _guard = lock();
    let (_, path) = instrumented("jsonl", |s| crossem_run(1, Some(s)));
    let text = std::fs::read_to_string(&path).expect("stream was written");
    assert!(text.ends_with('\n'), "stream must end in a complete line");

    let events: Vec<Object> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            Object::parse(line).unwrap_or_else(|e| panic!("line {} invalid: {e}", i + 1))
        })
        .collect();
    for event in &events {
        assert!(event.str("type").is_some(), "every event carries a type");
        assert!(event.num("t_ms").is_some(), "every event is timestamped");
    }

    assert_eq!(events[0].str("type"), Some("run_manifest"));
    assert_eq!(events[0].str("run"), Some("jsonl"));
    let epoch_ends: Vec<&Object> =
        events.iter().filter(|e| e.str("type") == Some("epoch_end")).collect();
    assert_eq!(epoch_ends.len(), 2, "both epochs must be recorded");
    for end in &epoch_ends {
        assert!(end.num("mean_loss").is_some());
        assert!(end.num("batches").unwrap_or(0.0) > 0.0);
    }
    let run_end = events.last().expect("non-empty stream");
    assert_eq!(run_end.str("type"), Some("run_end"));
    assert!(run_end.num("wall_seconds").unwrap_or(-1.0) >= 0.0);
    assert_eq!(run_end.str("test"), Some("jsonl"), "finish() extras are recorded");
    let _ = std::fs::remove_file(path);
}

/// An event survives serialisation to a JSONL line and back with every
/// field intact, including the string encoding for large u64 values.
#[test]
fn event_schema_round_trips_through_json() {
    let event = Event::new("epoch_end")
        .field("epoch", 3.0)
        .field("mean_loss", 0.125)
        .field("note", "drill")
        .field("healthy", true)
        .field("bad", f64::NAN)
        .field_u64("seed", u64::MAX);
    let line = event.object().to_json();
    let parsed = Object::parse(&line).expect("round-trip parse");
    assert_eq!(parsed.str("type"), Some("epoch_end"));
    assert_eq!(parsed.num("epoch"), Some(3.0));
    assert_eq!(parsed.num("mean_loss"), Some(0.125));
    assert_eq!(parsed.str("note"), Some("drill"));
    assert_eq!(parsed.get("healthy").and_then(Value::as_bool), Some(true));
    assert!(matches!(parsed.get("bad"), Some(Value::Null)), "NaN must encode as null");
    assert_eq!(parsed.str("seed"), Some("18446744073709551615"), "u64 beyond 2^53 stays exact");
}
