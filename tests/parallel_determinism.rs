//! End-to-end determinism of the parallel kernel layer: training with
//! `TrainOptions::threads = 4` must reproduce the single-threaded run
//! bit-for-bit — parameters, losses, and metrics — for both trainers, and
//! the guarantee must compose with crash/resume (a parallel run killed
//! mid-training and resumed must still match a serial uninterrupted run).
//!
//! `TrainOptions::threads` swaps a process-global override for the
//! duration of the run, so these tests serialise on a mutex instead of
//! relying on the harness's per-test threads.

use std::sync::Mutex;

use cem_bench::faults::CrashAfterEpoch;
use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use crossem::config::PlusConfig;
use crossem::plus::CrossEmPlus;
use crossem::trainer::TrainOptions;
use crossem::{CheckpointManager, CrossEm, PromptKind, TrainConfig};

/// Serialises every test in this file: the thread override they exercise is
/// process-global state.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    THREADS_LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn smoke_bundle() -> DatasetBundle {
    DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub))
}

fn train_config() -> TrainConfig {
    TrainConfig {
        prompt: PromptKind::Hard,
        hops: 1,
        epochs: 3,
        batch_vertices: 4,
        batch_images: 8,
        ..TrainConfig::default()
    }
}

struct Run {
    params: Vec<Vec<f32>>,
    losses: Vec<f32>,
    mrr: f32,
}

/// One full CrossEM run over a freshly rebuilt world at a fixed thread
/// budget.
fn crossem_run(threads: usize) -> Run {
    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(1);
    let matcher =
        CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, train_config(), &mut rng);
    let report = matcher
        .train_with_options(&mut rng, TrainOptions { threads: Some(threads), ..Default::default() })
        .expect("no checkpoints, no resume path to fail");
    Run {
        params: matcher.trainable_params().iter().map(|p| p.to_vec()).collect(),
        losses: report.epochs.iter().map(|e| e.mean_loss).collect(),
        mrr: matcher.evaluate().mrr,
    }
}

/// One full CrossEM⁺ run (PCP + negative sampling) at a fixed thread
/// budget.
fn crossem_plus_run(threads: usize) -> Run {
    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(2);
    let config = TrainConfig { prompt: PromptKind::Soft, ..train_config() };
    let plus = PlusConfig { negative_top_k: 3, ..PlusConfig::default() };
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        config,
        plus,
        &mut rng,
    );
    let report = trainer
        .train_with_options(&mut rng, TrainOptions { threads: Some(threads), ..Default::default() })
        .expect("no checkpoints, no resume path to fail");
    Run {
        params: trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect(),
        losses: report.train.epochs.iter().map(|e| e.mean_loss).collect(),
        mrr: trainer.evaluate().mrr,
    }
}

fn assert_bitwise_equal(serial: &Run, parallel: &Run, what: &str) {
    assert_eq!(serial.losses, parallel.losses, "{what}: per-epoch losses diverged");
    assert_eq!(serial.params, parallel.params, "{what}: trained parameters diverged");
    assert!(
        serial.mrr.to_bits() == parallel.mrr.to_bits(),
        "{what}: MRR diverged ({} vs {})",
        serial.mrr,
        parallel.mrr
    );
}

#[test]
fn crossem_four_threads_reproduces_serial_bitwise() {
    let _guard = lock();
    let serial = crossem_run(1);
    let parallel = crossem_run(4);
    assert_bitwise_equal(&serial, &parallel, "CrossEM t1 vs t4");
}

#[test]
fn crossem_plus_four_threads_reproduces_serial_bitwise() {
    let _guard = lock();
    let serial = crossem_plus_run(1);
    let parallel = crossem_plus_run(4);
    assert_bitwise_equal(&serial, &parallel, "CrossEM⁺ t1 vs t4");
}

#[test]
fn parallel_crash_and_resume_matches_serial_uninterrupted() {
    let _guard = lock();
    let dir = std::env::temp_dir()
        .join(format!("cem_par_determinism_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let manager = CheckpointManager::new(&dir).expect("scratch dir");

    // Serial, uninterrupted, no checkpoints involved in the reference: the
    // reference uses its own manager so both runs take the seeded-RNG path.
    let dir_ref = std::env::temp_dir()
        .join(format!("cem_par_determinism_ref_{}", std::process::id()));
    std::fs::remove_dir_all(&dir_ref).ok();
    let manager_ref = CheckpointManager::new(&dir_ref).expect("scratch dir");
    let reference = {
        let bundle = smoke_bundle();
        let mut rng = bundle.stage_rng(1);
        let matcher = CrossEm::new(
            &bundle.clip, &bundle.tokenizer, &bundle.dataset, train_config(), &mut rng,
        );
        matcher
            .train_with_options(
                &mut rng,
                TrainOptions {
                    checkpoints: Some(&manager_ref),
                    threads: Some(1),
                    ..Default::default()
                },
            )
            .expect("reference run");
        matcher.trainable_params().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
    };

    // Parallel run killed after epoch 0 …
    {
        let bundle = smoke_bundle();
        let mut rng = bundle.stage_rng(1);
        let matcher = CrossEm::new(
            &bundle.clip, &bundle.tokenizer, &bundle.dataset, train_config(), &mut rng,
        );
        let mut crasher = CrashAfterEpoch::at(0);
        let report = matcher
            .train_with_options(
                &mut rng,
                TrainOptions {
                    checkpoints: Some(&manager),
                    injector: Some(&mut crasher),
                    threads: Some(4),
                    ..Default::default()
                },
            )
            .expect("crash run");
        assert!(crasher.crashed, "crash injector never fired");
        assert_eq!(report.epochs.len(), 1);
    }

    // … and resumed in a "new process", still at 4 threads.
    let resumed = {
        let bundle = smoke_bundle();
        let mut rng = bundle.stage_rng(1);
        let matcher = CrossEm::new(
            &bundle.clip, &bundle.tokenizer, &bundle.dataset, train_config(), &mut rng,
        );
        let report = matcher
            .train_with_options(
                &mut rng,
                TrainOptions {
                    checkpoints: Some(&manager),
                    threads: Some(4),
                    ..Default::default()
                },
            )
            .expect("resume run");
        assert_eq!(report.resumed_from, Some(1));
        matcher.trainable_params().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
    };

    assert_eq!(
        reference, resumed,
        "parallel crash+resume must match the serial uninterrupted run bit-for-bit"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_ref).ok();
}

#[test]
fn shared_feature_cache_does_not_change_results() {
    let _guard = lock();
    // Two CrossEM⁺ trainers over the same bundle sharing one cache: the
    // second must hit the cache and still train identically to a trainer
    // with its own private cache.
    let bundle = smoke_bundle();
    let config = TrainConfig { prompt: PromptKind::Soft, ..train_config() };
    let plus = PlusConfig { negative_top_k: 3, ..PlusConfig::default() };

    // Snapshot the pristine pre-trained weights so every run starts from
    // the identical state.
    let snapshot = {
        use cem_nn::Module;
        bundle.clip.state_dict()
    };

    let private = {
        let mut rng = bundle.stage_rng(2);
        let trainer = CrossEmPlus::new(
            &bundle.clip, &bundle.tokenizer, &bundle.dataset, config, plus, &mut rng,
        );
        trainer.train(&mut rng);
        trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
    };

    let shared = std::rc::Rc::new(crossem::FeatureCache::new());
    let first = {
        use cem_nn::Module;
        bundle.clip.load_state_dict(&snapshot);
        bundle.clip.set_trainable(true);
        let mut rng = bundle.stage_rng(2);
        let trainer = CrossEmPlus::with_feature_cache(
            &bundle.clip,
            &bundle.tokenizer,
            &bundle.dataset,
            config,
            plus,
            std::rc::Rc::clone(&shared),
            &mut rng,
        );
        trainer.train(&mut rng);
        trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
    };
    assert_eq!(private, first, "shared cache changed the first trainer's results");

    let second = {
        use cem_nn::Module;
        bundle.clip.load_state_dict(&snapshot);
        bundle.clip.set_trainable(true);
        let mut rng = bundle.stage_rng(2);
        let trainer = CrossEmPlus::with_feature_cache(
            &bundle.clip,
            &bundle.tokenizer,
            &bundle.dataset,
            config,
            plus,
            std::rc::Rc::clone(&shared),
            &mut rng,
        );
        trainer.train(&mut rng);
        assert!(
            trainer.feature_cache().hits() > 0,
            "second trainer never hit the shared cache"
        );
        trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
    };
    assert_eq!(private, second, "cache hit changed the second trainer's results");
}
