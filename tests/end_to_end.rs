//! Cross-crate integration tests: the full pipeline from synthetic data
//! lake to tuned matcher, at smoke scale.

use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use crossem::config::PlusConfig;
use crossem::plus::CrossEmPlus;
use crossem::{CrossEm, PromptKind, TrainConfig};

fn smoke_bundle(kind: DatasetKind) -> DatasetBundle {
    DatasetBundle::prepare(BundleConfig::smoke(kind))
}

fn train_config(prompt: PromptKind) -> TrainConfig {
    TrainConfig { prompt, hops: 1, epochs: 2, batch_vertices: 4, batch_images: 8, ..TrainConfig::default() }
}

#[test]
fn full_pipeline_runs_on_every_dataset_family() {
    for kind in [DatasetKind::Cub, DatasetKind::Sun, DatasetKind::Fb2k] {
        let bundle = smoke_bundle(kind);
        let mut rng = bundle.stage_rng(1);
        let matcher = CrossEm::new(
            &bundle.clip,
            &bundle.tokenizer,
            &bundle.dataset,
            train_config(PromptKind::Hard),
            &mut rng,
        );
        let report = matcher.train(&mut rng);
        assert!(
            report.final_loss().expect("epochs ran").is_finite(),
            "{kind:?} loss not finite"
        );
        let metrics = matcher.evaluate();
        assert_eq!(metrics.queries, bundle.dataset.entity_count());
        assert!(metrics.mrr > 0.0 && metrics.mrr <= 1.0);
    }
}

#[test]
fn crossem_plus_pipeline_and_pruning() {
    let bundle = smoke_bundle(DatasetKind::Cub);
    let mut rng = bundle.stage_rng(2);
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Soft),
        PlusConfig { vertex_subsets: 2, image_clusters: 2, prune_quantile: 0.25, ..PlusConfig::default() },
        &mut rng,
    );
    let report = trainer.train(&mut rng);
    // PCP prunes pairs; NS then pads each partition's images up to a
    // multiple of the batch size, so at tiny scale the bound is the full
    // cross product plus one image-batch of negatives per partition.
    let full = bundle.dataset.candidate_pair_count();
    let slack = report.partitions * 8 * 4; // partitions × batch_images × vertices
    assert!(
        report.pairs_per_epoch <= full + slack,
        "plus trained on {} pairs, full is {full} (+{slack} NS slack)",
        report.pairs_per_epoch
    );
    assert!(trainer.evaluate().mrr > 0.0);
}

#[test]
fn same_seed_reproduces_metrics_exactly() {
    let run = || {
        let bundle = smoke_bundle(DatasetKind::Sun);
        let mut rng = bundle.stage_rng(3);
        let matcher = CrossEm::new(
            &bundle.clip,
            &bundle.tokenizer,
            &bundle.dataset,
            train_config(PromptKind::Hard),
            &mut rng,
        );
        matcher.train(&mut rng);
        matcher.evaluate()
    };
    let a = run();
    let b = run();
    assert_eq!(a.hits_at_1, b.hits_at_1);
    assert_eq!(a.mrr, b.mrr);
}

#[test]
fn structure_aware_prompt_beats_naive_on_opaque_names() {
    // SUN-like data: names reveal nothing, attributes carry everything.
    // The central claim of the paper, testable end to end: the hard prompt
    // must out-rank the naive prompt after tuning.
    let bundle = smoke_bundle(DatasetKind::Sun);

    let mut rng = bundle.stage_rng(4);
    let naive = CrossEm::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Baseline),
        &mut rng,
    );
    // Evaluate the naive prompt zero-shot (training it cannot add info).
    let naive_metrics = naive.evaluate();

    let snapshot = {
        use cem_nn::Module;
        bundle.clip.state_dict()
    };
    let mut rng = bundle.stage_rng(5);
    let mut config = train_config(PromptKind::Hard);
    config.epochs = 3;
    config.mining_prior_weight = 0.25;
    let hard = CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, config, &mut rng);
    hard.train(&mut rng);
    let hard_metrics = hard.evaluate();
    {
        use cem_nn::Module;
        bundle.clip.load_state_dict(&snapshot);
    }

    assert!(
        hard_metrics.mrr >= naive_metrics.mrr,
        "hard prompt ({:.3}) should not lose to naive prompt ({:.3}) on SUN-like data",
        hard_metrics.mrr,
        naive_metrics.mrr
    );
}

#[test]
fn image_tower_frozen_and_text_tower_restorable() {
    use cem_nn::Module;
    let bundle = smoke_bundle(DatasetKind::Cub);
    let snapshot = bundle.clip.state_dict();
    let image_before = bundle.clip.image.params()[0].to_vec();

    let mut rng = bundle.stage_rng(6);
    let matcher = CrossEm::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Hard),
        &mut rng,
    );
    matcher.train(&mut rng);

    // Image tower untouched by training.
    assert_eq!(bundle.clip.image.params()[0].to_vec(), image_before);

    // Restoring the snapshot returns the text tower to its pre-trained state.
    bundle.clip.set_trainable(true);
    bundle.clip.load_state_dict(&snapshot);
    let restored = bundle.clip.text.params()[0].to_vec();
    let snap_first = snapshot.get("text.token_emb.weight").unwrap().to_vec();
    assert_eq!(restored, snap_first);
}

#[test]
fn unseen_split_protocol_evaluates_strict_zero_shot() {
    // The paper evaluates CUB/SUN with the seen/unseen splits of Xian et
    // al. [42]. Check the protocol plumbing: filtering rankings to the
    // unseen pool yields a well-formed evaluation whose query count matches
    // the unseen entity count.
    let bundle = smoke_bundle(DatasetKind::Cub);
    let mut rng = bundle.stage_rng(8);
    let matcher = CrossEm::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Hard),
        &mut rng,
    );
    let probabilities = matcher.matching_matrix();
    let rankings = crossem::matcher::rank_images(&probabilities, 0);

    let split = cem_data::EntitySplit::new(&bundle.dataset, 0.5, &mut rng);
    let (queries, filtered) = split.filter_rankings(&rankings, &bundle.dataset);
    let metrics = crossem::metrics::evaluate_rankings(&filtered, |qi, img| {
        bundle.dataset.is_match(queries[qi], img)
    });
    assert_eq!(metrics.queries, split.unseen.len());
    // Every unseen query's gold images are in the pool, so MRR can't be 0.
    assert!(metrics.mrr > 0.0);
}

#[test]
fn bootstrap_ci_wraps_point_estimate_on_real_rankings() {
    let bundle = smoke_bundle(DatasetKind::Sun);
    let mut rng = bundle.stage_rng(9);
    let matcher = CrossEm::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Hard),
        &mut rng,
    );
    let rankings = crossem::matcher::rank_images(&matcher.matching_matrix(), 0);
    let metrics = crossem::metrics::evaluate_rankings(&rankings, |e, i| {
        bundle.dataset.is_match(e, i)
    });
    let ci = crossem::metrics::bootstrap_mrr_ci(
        &rankings,
        |e, i| bundle.dataset.is_match(e, i),
        200,
        0.95,
        &mut rng,
    );
    assert!((ci.mean - metrics.mrr).abs() < 1e-5);
    assert!(ci.lo <= metrics.mrr && metrics.mrr <= ci.hi);
}

#[test]
fn matching_set_precision_correlates_with_metrics() {
    let bundle = smoke_bundle(DatasetKind::Fb2k);
    let mut rng = bundle.stage_rng(7);
    let matcher = CrossEm::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        train_config(PromptKind::Soft),
        &mut rng,
    );
    matcher.train(&mut rng);
    let metrics = matcher.evaluate();
    let top1 = crossem::MatchingSet::top1(&matcher.matching_matrix());
    let precision = top1.precision(|e, i| bundle.dataset.is_match(e, i));
    // Top-1 matching-set precision is by construction identical to Hits@1.
    assert!((precision - metrics.hits_at_1).abs() < 1e-6);
}
