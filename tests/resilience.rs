//! Fault-injection integration tests: the resilience tier.
//!
//! These prove the training loop's failure-handling guarantees end to end,
//! at smoke scale, using the deterministic injectors from
//! `cem_bench::faults`:
//!
//! * a run killed between epochs and resumed from its durable checkpoint
//!   reaches the *same* parameters and metrics as an uninterrupted run;
//! * a NaN-poisoned batch trips the divergence guard, rolls back, and the
//!   run still finishes healthy;
//! * damaged checkpoint files (torn writes, bit rot) are rejected with
//!   typed errors — never a panic, never a silent load.

use cem_bench::faults::{corrupt_byte, truncate_file, CrashAfterEpoch, NanPoisoner};
use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use cem_tensor::io::{CheckpointError, StateDict};
use crossem::config::PlusConfig;
use crossem::guard::FaultInjector;
use crossem::plus::CrossEmPlus;
use crossem::trainer::TrainOptions;
use crossem::{CheckpointManager, CrossEm, PromptKind, ResumeError, TrainConfig};

fn smoke_bundle() -> DatasetBundle {
    DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub))
}

fn train_config() -> TrainConfig {
    TrainConfig {
        prompt: PromptKind::Hard,
        hops: 1,
        epochs: 3,
        batch_vertices: 4,
        batch_images: 8,
        ..TrainConfig::default()
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cem_resilience_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One checkpointed CrossEM run over a freshly rebuilt world — rebuilding
/// the bundle from its seed is how a real restarted process would come
/// back up.
fn crossem_run<'h>(
    manager: &'h CheckpointManager,
    injector: Option<&'h mut (dyn FaultInjector + 'h)>,
) -> (crossem::TrainReport, Vec<Vec<f32>>, f32) {
    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(1);
    let matcher =
        CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, train_config(), &mut rng);
    let report = matcher
        .train_with_options(&mut rng, TrainOptions { checkpoints: Some(manager), injector, ..Default::default() })
        .expect("resume must succeed");
    let params = matcher.trainable_params().iter().map(|p| p.to_vec()).collect();
    let mrr = matcher.evaluate().mrr;
    (report, params, mrr)
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_run() {
    // Uninterrupted reference run.
    let dir_full = scratch_dir("full");
    let manager_full = CheckpointManager::new(&dir_full).unwrap();
    let (full_report, full_params, full_mrr) = crossem_run(&manager_full, None);
    assert_eq!(full_report.epochs.len(), 3);

    // Killed after epoch 0's checkpoint…
    let dir_crash = scratch_dir("crash");
    let manager_crash = CheckpointManager::new(&dir_crash).unwrap();
    let mut crasher = CrashAfterEpoch::at(0);
    let (partial_report, _, _) = crossem_run(&manager_crash, Some(&mut crasher));
    assert!(crasher.crashed);
    assert_eq!(partial_report.epochs.len(), 1);

    // …then "restarted": fresh world, same checkpoint directory.
    let (resumed_report, resumed_params, resumed_mrr) = crossem_run(&manager_crash, None);
    assert_eq!(resumed_report.resumed_from, Some(1));
    assert_eq!(resumed_report.epochs.len(), 2);

    assert_eq!(full_params, resumed_params, "resume must be bit-faithful");
    assert_eq!(full_mrr, resumed_mrr);

    std::fs::remove_dir_all(&dir_full).ok();
    std::fs::remove_dir_all(&dir_crash).ok();
}

#[test]
fn plus_trainer_crash_resume_is_bit_faithful() {
    let plus_config = PlusConfig {
        vertex_subsets: 2,
        image_clusters: 2,
        ..PlusConfig::default()
    };
    fn run<'h>(
        plus_config: PlusConfig,
        manager: &'h CheckpointManager,
        injector: Option<&'h mut (dyn FaultInjector + 'h)>,
    ) -> (crossem::TrainReport, Vec<Vec<f32>>) {
        let bundle = smoke_bundle();
        let mut rng = bundle.stage_rng(2);
        let trainer = CrossEmPlus::new(
            &bundle.clip,
            &bundle.tokenizer,
            &bundle.dataset,
            train_config(),
            plus_config,
            &mut rng,
        );
        let report = trainer
            .train_with_options(&mut rng, TrainOptions { checkpoints: Some(manager), injector, ..Default::default() })
            .expect("resume must succeed");
        let params =
            trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect();
        (report.train, params)
    }

    let dir_full = scratch_dir("plus_full");
    let manager_full = CheckpointManager::new(&dir_full).unwrap();
    let (full, full_params) = run(plus_config, &manager_full, None);
    assert_eq!(full.epochs.len(), 3);

    let dir_crash = scratch_dir("plus_crash");
    let manager_crash = CheckpointManager::new(&dir_crash).unwrap();
    let mut crasher = CrashAfterEpoch::at(1);
    run(plus_config, &manager_crash, Some(&mut crasher));
    assert!(crasher.crashed);

    let (resumed, resumed_params) = run(plus_config, &manager_crash, None);
    assert_eq!(resumed.resumed_from, Some(2));
    assert_eq!(full_params, resumed_params, "plus resume must be bit-faithful");

    std::fs::remove_dir_all(&dir_full).ok();
    std::fs::remove_dir_all(&dir_crash).ok();
}

#[test]
fn nan_injection_triggers_rollback_and_run_stays_healthy() {
    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(3);
    let matcher =
        CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, train_config(), &mut rng);
    let mut poisoner = NanPoisoner::at(2);
    let report = matcher
        .train_with_options(
            &mut rng,
            TrainOptions { checkpoints: None, injector: Some(&mut poisoner), ..Default::default() },
        )
        .unwrap();
    assert_eq!(poisoner.poisoned, 1);
    assert_eq!(report.nan_batches(), 1);
    assert_eq!(report.rollbacks(), 1);
    assert!(!report.diverged);
    assert!(report.final_loss().expect("epochs ran").is_finite());
    for p in matcher.trainable_params() {
        assert!(p.to_vec().iter().all(|x| x.is_finite()), "NaN leaked into parameters");
    }
    assert!(matcher.evaluate().mrr > 0.0);
}

#[test]
fn corrupted_checkpoints_are_rejected_with_typed_errors() {
    // A real training checkpoint, not a toy dict.
    let dir = scratch_dir("corrupt");
    let manager = CheckpointManager::new(&dir).unwrap();
    crossem_run(&manager, None);
    let pristine = std::fs::read(manager.latest_path()).unwrap();
    let victim = dir.join("victim.cemt");

    // Torn writes at a spread of lengths.
    for keep in [0usize, 3, 8, pristine.len() / 3, pristine.len() - 1] {
        std::fs::write(&victim, &pristine).unwrap();
        truncate_file(&victim, keep as u64).unwrap();
        let err = StateDict::load(&victim).expect_err("truncated checkpoint must not load");
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::Corrupted { .. }
                    | CheckpointError::BadMagic(_)
            ),
            "unexpected error for keep={keep}: {err}"
        );
    }

    // Bit rot throughout the file.
    let stride = (pristine.len() / 16).max(1);
    for offset in (0..pristine.len()).step_by(stride) {
        std::fs::write(&victim, &pristine).unwrap();
        corrupt_byte(&victim, offset as u64, 0x01).unwrap();
        assert!(
            StateDict::load(&victim).is_err(),
            "flipped byte at {offset} went undetected"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_latest_falls_back_to_prev_and_resume_still_works() {
    let dir = scratch_dir("fallback");
    let manager = CheckpointManager::new(&dir).unwrap();
    let (report, _, _) = crossem_run(&manager, None);
    assert_eq!(report.epochs.len(), 3);
    assert!(manager.prev_path().exists(), "three epochs leave a latest/prev pair");

    // Tear the freshest checkpoint; the rotation's `prev` (epoch 2) must
    // serve the resume, so training replays epoch 2 only.
    let bytes = std::fs::read(manager.latest_path()).unwrap();
    truncate_file(manager.latest_path(), (bytes.len() / 2) as u64).unwrap();

    let (resumed, _, _) = crossem_run(&manager, None);
    assert_eq!(resumed.resumed_from, Some(2), "resume must fall back to prev");
    assert_eq!(resumed.epochs.len(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_wrong_config_is_a_typed_error() {
    let dir = scratch_dir("wrongcfg");
    let manager = CheckpointManager::new(&dir).unwrap();
    crossem_run(&manager, None);

    let bundle = smoke_bundle();
    let mut rng = bundle.stage_rng(1);
    let other = TrainConfig { lr: 1e-3, ..train_config() };
    let matcher = CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, other, &mut rng);
    let err = matcher
        .train_with_options(
            &mut rng,
            TrainOptions { checkpoints: Some(&manager), injector: None, ..Default::default() },
        )
        .expect_err("mismatched config must not resume");
    assert!(matches!(err, ResumeError::FingerprintMismatch { .. }), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
