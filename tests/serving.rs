//! End-to-end degraded-mode serving: with every richer tier scripted to
//! fail, the service must land on the zero-shot floor and answer *exactly*
//! what the `cem-baselines` CLIP zero-shot baseline would — the floor is
//! not a stub, it is Eq. 4 served under a different name.

use std::rc::Rc;

use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use cem_nn::Module;
use cem_serve::{
    cached_proximity_scores, hard_prompt_scores, zero_shot_scores, FaultKind, MatchRequest,
    MatchService, Outcome, ServeConfig, ServeFault, ServeIndex, Tier,
};
use cem_tensor::par::ThreadsGuard;
use crossem::config::PlusConfig;
use crossem::matcher::rank_images;
use crossem::plus::CrossEmPlus;
use crossem::prompt::HardPromptOptions;
use crossem::{FeatureCache, PromptKind, TrainConfig};

/// Every breaker-guarded tier fails on every attempt; only the floor is
/// reachable.
struct AllTiersDown;

impl ServeFault for AllTiersDown {
    fn inject(&self, _request_id: u64, tier: Tier, _attempt: u32) -> Option<FaultKind> {
        match tier {
            Tier::Full | Tier::Hard => Some(FaultKind::NanFeatures),
            Tier::Cached => Some(FaultKind::CorruptCache),
            Tier::Zero => None,
        }
    }
}

/// Build the four-tier index over the quickstart (smoke) bundle: frozen
/// tiers from the pristine pre-trained towers, the full tier from a short
/// CrossEM⁺ tuning run sharing the same feature cache.
fn build_world() -> (DatasetBundle, ServeIndex) {
    let bundle = DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub));
    let dataset = &bundle.dataset;
    let config = TrainConfig {
        prompt: PromptKind::Soft,
        hops: 1,
        epochs: 2,
        batch_vertices: 4,
        batch_images: 8,
        ..TrainConfig::default()
    };

    let zero = zero_shot_scores(&bundle.clip, &bundle.tokenizer, dataset);
    let hard = hard_prompt_scores(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
        &HardPromptOptions { hops: config.hops, ..HardPromptOptions::default() },
    );
    let cache = Rc::new(FeatureCache::new());
    let cached =
        cached_proximity_scores(&cache, &bundle.clip, &bundle.tokenizer, dataset, config.hops);

    // Tune the soft prompt for the full tier, then restore the pristine
    // towers so the baseline comparison below sees pre-trained weights.
    let snapshot = bundle.clip.state_dict();
    let mut rng = bundle.stage_rng(41);
    let trainer = CrossEmPlus::with_feature_cache(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
        config,
        PlusConfig { vertex_subsets: 2, image_clusters: 2, ..PlusConfig::default() },
        Rc::clone(&cache),
        &mut rng,
    );
    trainer.train(&mut rng);
    let full = trainer.matching_matrix().to_vec();
    bundle.clip.set_trainable(true);
    bundle.clip.load_state_dict(&snapshot);

    let index = ServeIndex::new(dataset.entity_count(), dataset.image_count(), [
        full, cached, hard, zero,
    ]);
    (bundle, index)
}

fn hits_at_10(rankings: &[Vec<usize>], dataset: &cem_data::EmDataset) -> f64 {
    let hits = rankings
        .iter()
        .enumerate()
        .filter(|(e, ranking)| ranking.iter().take(10).any(|&i| dataset.is_match(*e, i)))
        .count();
    hits as f64 / rankings.len() as f64
}

#[test]
fn degraded_service_serves_the_zero_shot_baseline_exactly() {
    let (bundle, index) = build_world();
    let dataset = &bundle.dataset;
    let entities = dataset.entity_count();

    let config = ServeConfig { seed: 17, top_k: 10, wave: 4, ..ServeConfig::default() };
    let mut service = MatchService::new(config, &index);
    // One request per entity (the stream walks entities round-robin).
    let requests = MatchRequest::stream(entities, entities, 17);
    let responses = service.run(&requests, &AllTiersDown);

    // Every request degrades all the way down — and resolves.
    let mut served: Vec<Vec<usize>> = vec![Vec::new(); entities];
    for (request, response) in requests.iter().zip(&responses) {
        match &response.outcome {
            Outcome::Served { tier, ranking } => {
                assert_eq!(*tier, Tier::Zero, "req {} did not reach the floor", response.id);
                served[request.entity] = ranking.clone();
            }
            other => panic!("req {} failed to resolve: {other:?}", response.id),
        }
    }
    assert_eq!(service.stats().served[Tier::Zero.index()], entities as u64);

    // The floor's answers are bit-identical to the cem-baselines CLIP
    // zero-shot ranking (same pristine weights, same Eq. 4 prompt).
    let baseline = cem_baselines::clip_zeroshot::score_matrix(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
    );
    let expected: Vec<Vec<usize>> = rank_images(&baseline, 0)
        .into_iter()
        .map(|mut r| {
            r.truncate(10);
            r
        })
        .collect();
    assert_eq!(served, expected, "degraded serving diverged from the zero-shot baseline");

    // And the degraded tier's quality matches the seed baseline: identical
    // Hits@10, well above a coin flip on the quickstart data.
    let served_h10 = hits_at_10(&served, dataset);
    let baseline_h10 = hits_at_10(&expected, dataset);
    assert!((served_h10 - baseline_h10).abs() < 1e-12);
    assert!(served_h10 > 0.5, "zero-shot floor Hits@10 {served_h10} is below tolerance");
}

#[test]
fn degraded_service_is_thread_count_invariant() {
    let (_bundle, index) = build_world();
    let entities = index.entities();
    let requests = MatchRequest::stream(3 * entities, entities, 23);
    let run_with = |threads: usize| {
        let _guard = ThreadsGuard::new(threads);
        let mut service =
            MatchService::new(ServeConfig { seed: 23, wave: 4, ..ServeConfig::default() }, &index);
        let responses = service.run(&requests, &AllTiersDown);
        (responses, service.trace().to_vec(), service.stats().clone())
    };
    let (r1, t1, s1) = run_with(1);
    let (r4, t4, s4) = run_with(4);
    assert_eq!(r1, r4);
    assert_eq!(t1, t4);
    assert_eq!(s1, s4);
}
