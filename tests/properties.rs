//! Property-based tests over the workspace's core invariants (proptest).

use cem_graph::{d_hop_subgraph, Graph, JsonValue, VertexId};
use cem_tensor::io::StateDict;
use cem_tensor::Tensor;
use crossem::kmeans::{clusters_of, kmeans};
use crossem::metrics::evaluate_rankings;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

/// A deterministic checkpoint dict: `count` `[rows, cols]` tensors seeded
/// from `seed`, with metadata when requested.
fn build_dict(count: usize, rows: usize, cols: usize, seed: u64, with_meta: bool) -> StateDict {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dict = StateDict::new();
    for i in 0..count {
        let data: Vec<f32> =
            (0..rows * cols).map(|_| rng.gen::<f32>() * 2000.0 - 1000.0).collect();
        dict.insert(format!("entry.{i}"), Tensor::from_vec(data, &[rows, cols]));
    }
    if with_meta {
        dict.insert_meta("epochs_done", seed % 97);
        dict.insert_meta("seed", seed);
    }
    dict
}

fn dicts_equal(a: &StateDict, b: &StateDict) -> bool {
    let entries_a: Vec<_> = a.iter().map(|(n, t)| (n.to_string(), t.dims().to_vec(), t.to_vec())).collect();
    let entries_b: Vec<_> = b.iter().map(|(n, t)| (n.to_string(), t.dims().to_vec(), t.to_vec())).collect();
    let bits = |e: &[(String, Vec<usize>, Vec<f32>)]| -> Vec<(String, Vec<usize>, Vec<u32>)> {
        e.iter()
            .map(|(n, d, v)| (n.clone(), d.clone(), v.iter().map(|x| x.to_bits()).collect()))
            .collect()
    };
    bits(&entries_a) == bits(&entries_b)
        && a.meta_iter().collect::<Vec<_>>() == b.meta_iter().collect::<Vec<_>>()
}

proptest! {
    // ---------------- tensor algebra ----------------

    #[test]
    fn add_commutes(a in vec_f32(12), b in vec_f32(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]);
        let tb = Tensor::from_vec(b, &[3, 4]);
        let x = ta.add(&tb).to_vec();
        let y = tb.add(&ta).to_vec();
        for (u, v) in x.iter().zip(&y) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(data in vec_f32(20)) {
        let t = Tensor::from_vec(data, &[4, 5]);
        let s = t.softmax_rows();
        for r in 0..4 {
            let sum: f32 = (0..5).map(|c| s.at2(r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..5 {
                prop_assert!(s.at2(r, c) >= 0.0);
            }
        }
    }

    #[test]
    fn l2_normalized_rows_are_unit_or_zero(data in vec_f32(18)) {
        let t = Tensor::from_vec(data, &[3, 6]);
        let n = t.l2_normalize_rows();
        for r in 0..3 {
            let norm: f32 = (0..6).map(|c| n.at2(r, c).powi(2)).sum::<f32>().sqrt();
            prop_assert!(norm < 1.0 + 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in vec_f32(6), b in vec_f32(6), c in vec_f32(6)) {
        // A(B + C) == AB + AC
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3, 2]);
        let tc = Tensor::from_vec(c, &[3, 2]);
        let lhs = ta.matmul(&tb.add(&tc)).to_vec();
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc)).to_vec();
        for (u, v) in lhs.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-3, "{u} vs {v}");
        }
    }

    #[test]
    fn sum_gradient_is_all_ones(data in vec_f32(10)) {
        let t = Tensor::from_vec(data, &[10]).requires_grad();
        t.sum().backward();
        prop_assert_eq!(t.grad().unwrap(), vec![1.0; 10]);
    }

    #[test]
    fn transpose_is_involutive(data in vec_f32(12)) {
        let t = Tensor::from_vec(data.clone(), &[3, 4]);
        prop_assert_eq!(t.transpose().transpose().to_vec(), data);
    }

    // ---------------- graph invariants ----------------

    #[test]
    fn subgraph_edges_stay_inside(edges in prop::collection::vec((0usize..8, 0usize..8), 1..20), d in 0usize..4) {
        let mut g = Graph::new();
        for i in 0..8 {
            g.add_vertex(format!("v{i}"));
        }
        for (s, t) in &edges {
            g.add_edge(VertexId(*s), VertexId(*t), "e");
        }
        let sub = d_hop_subgraph(&g, VertexId(0), d);
        for &e in &sub.edges {
            let (s, t) = g.edge_endpoints(e);
            prop_assert!(sub.contains(s) && sub.contains(t));
        }
        // Depths are bounded by d and the center comes first.
        prop_assert_eq!(sub.vertices[0], VertexId(0));
        prop_assert!(sub.depths.iter().all(|&x| x <= d));
    }

    #[test]
    fn bigger_radius_never_shrinks_subgraph(edges in prop::collection::vec((0usize..6, 0usize..6), 1..15)) {
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_vertex(format!("v{i}"));
        }
        for (s, t) in &edges {
            g.add_edge(VertexId(*s), VertexId(*t), "e");
        }
        let mut last = 0usize;
        for d in 0..4 {
            let n = d_hop_subgraph(&g, VertexId(0), d).vertex_count();
            prop_assert!(n >= last);
            last = n;
        }
    }

    #[test]
    fn json_display_parse_roundtrip(keys in prop::collection::vec("[a-z]{1,6}", 1..5), n in -1000i32..1000) {
        let mut map = std::collections::BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            map.insert(k.clone(), if i % 2 == 0 {
                JsonValue::Number(n as f64)
            } else {
                JsonValue::String(format!("s{i}"))
            });
        }
        let v = JsonValue::Object(map);
        let reparsed = JsonValue::parse(&v.to_string()).unwrap();
        prop_assert_eq!(v, reparsed);
    }

    // ---------------- metrics invariants ----------------

    #[test]
    fn hits_are_monotone_in_k(golds in prop::collection::vec(0usize..10, 1..8)) {
        let rankings: Vec<Vec<usize>> = golds.iter().map(|_| (0..10).collect()).collect();
        let m = evaluate_rankings(&rankings, |q, img| img == golds[q]);
        prop_assert!(m.hits_at_1 <= m.hits_at_3 + 1e-6);
        prop_assert!(m.hits_at_3 <= m.hits_at_5 + 1e-6);
        prop_assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        prop_assert!(m.mrr + 1e-6 >= m.hits_at_1); // MRR lower-bounded by H@1
    }

    // ---------------- kmeans invariants ----------------

    #[test]
    fn kmeans_assigns_every_point(points in prop::collection::vec(vec_f32(3), 1..30), k in 1usize..6, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = kmeans(&points, k, 20, &mut rng);
        prop_assert_eq!(result.assignments.len(), points.len());
        let kk = k.min(points.len());
        prop_assert!(result.assignments.iter().all(|&a| a < kk));
        let groups = clusters_of(&result, kk);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, points.len());
    }

    // ---------------- tokenizer invariants ----------------

    #[test]
    fn tokenizer_encode_respects_budget(text in "[a-z ]{0,200}", max_len in 2usize..40) {
        let tok = cem_clip::Tokenizer::build([text.as_str()]);
        let (ids, len) = tok.encode(&text, max_len);
        prop_assert_eq!(ids.len(), len);
        prop_assert!(len <= max_len);
        prop_assert_eq!(ids[0], cem_clip::tokenizer::CLS);
        prop_assert_eq!(*ids.last().unwrap(), cem_clip::tokenizer::SEP);
    }

    #[test]
    fn tokenizer_roundtrips_known_words(words in prop::collection::vec("[a-z]{1,8}", 1..10)) {
        let text = words.join(" ");
        let tok = cem_clip::Tokenizer::build([text.as_str()]);
        let ids = tok.tokenize(&text);
        let decoded = tok.decode(&ids);
        prop_assert_eq!(decoded, text.split_whitespace().collect::<Vec<_>>().join(" "));
    }

    // ---------------- checkpoint container (CEMT) ----------------

    #[test]
    fn cemt_v2_roundtrips(count in 1usize..5, rows in 1usize..4, cols in 1usize..6, seed in 0u64..1000) {
        let dict = build_dict(count, rows, cols, seed, true);
        let restored = StateDict::from_bytes(&dict.to_bytes()).unwrap();
        prop_assert!(dicts_equal(&dict, &restored));
    }

    #[test]
    fn cemt_v1_files_stay_readable(count in 1usize..5, rows in 1usize..4, cols in 1usize..6, seed in 0u64..1000) {
        let dict = build_dict(count, rows, cols, seed, false);
        let restored = StateDict::from_bytes(&dict.to_bytes_v1()).unwrap();
        prop_assert!(dicts_equal(&dict, &restored));
        prop_assert_eq!(restored.meta_iter().count(), 0);
    }

    #[test]
    fn cemt_v2_detects_any_byte_corruption(seed in 0u64..500, offset_sel in 0usize..100_000, mask in 0u8..255) {
        let bytes = build_dict(2, 2, 3, seed, true).to_bytes();
        let mut bad = bytes.clone();
        let offset = offset_sel % bad.len();
        bad[offset] ^= mask.wrapping_add(1).max(1);
        prop_assert!(
            StateDict::from_bytes(&bad).is_err(),
            "corrupting byte {} went undetected", offset
        );
    }

    #[test]
    fn cemt_v2_detects_any_truncation(seed in 0u64..500, cut_sel in 0usize..100_000) {
        let bytes = build_dict(2, 2, 3, seed, true).to_bytes();
        let keep = cut_sel % bytes.len();
        prop_assert!(
            StateDict::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {} bytes went undetected", keep
        );
    }
}

/// Exhaustive, not sampled: *every* single-byte flip anywhere in a v2
/// container — header, entry payloads, CRCs, footer — must be caught.
#[test]
fn cemt_v2_every_single_byte_flip_is_caught() {
    let dict = build_dict(3, 2, 3, 42, true);
    let bytes = dict.to_bytes();
    for offset in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[offset] ^= 0xFF;
        assert!(
            StateDict::from_bytes(&bad).is_err(),
            "flipping byte {offset}/{} went undetected",
            bytes.len()
        );
    }
}
