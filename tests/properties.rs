//! Property-based tests over the workspace's core invariants (proptest).

use cem_graph::{d_hop_subgraph, Graph, JsonValue, VertexId};
use cem_tensor::Tensor;
use crossem::kmeans::{clusters_of, kmeans};
use crossem::metrics::evaluate_rankings;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    // ---------------- tensor algebra ----------------

    #[test]
    fn add_commutes(a in vec_f32(12), b in vec_f32(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]);
        let tb = Tensor::from_vec(b, &[3, 4]);
        let x = ta.add(&tb).to_vec();
        let y = tb.add(&ta).to_vec();
        for (u, v) in x.iter().zip(&y) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(data in vec_f32(20)) {
        let t = Tensor::from_vec(data, &[4, 5]);
        let s = t.softmax_rows();
        for r in 0..4 {
            let sum: f32 = (0..5).map(|c| s.at2(r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..5 {
                prop_assert!(s.at2(r, c) >= 0.0);
            }
        }
    }

    #[test]
    fn l2_normalized_rows_are_unit_or_zero(data in vec_f32(18)) {
        let t = Tensor::from_vec(data, &[3, 6]);
        let n = t.l2_normalize_rows();
        for r in 0..3 {
            let norm: f32 = (0..6).map(|c| n.at2(r, c).powi(2)).sum::<f32>().sqrt();
            prop_assert!(norm < 1.0 + 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in vec_f32(6), b in vec_f32(6), c in vec_f32(6)) {
        // A(B + C) == AB + AC
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3, 2]);
        let tc = Tensor::from_vec(c, &[3, 2]);
        let lhs = ta.matmul(&tb.add(&tc)).to_vec();
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc)).to_vec();
        for (u, v) in lhs.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-3, "{u} vs {v}");
        }
    }

    #[test]
    fn sum_gradient_is_all_ones(data in vec_f32(10)) {
        let t = Tensor::from_vec(data, &[10]).requires_grad();
        t.sum().backward();
        prop_assert_eq!(t.grad().unwrap(), vec![1.0; 10]);
    }

    #[test]
    fn transpose_is_involutive(data in vec_f32(12)) {
        let t = Tensor::from_vec(data.clone(), &[3, 4]);
        prop_assert_eq!(t.transpose().transpose().to_vec(), data);
    }

    // ---------------- graph invariants ----------------

    #[test]
    fn subgraph_edges_stay_inside(edges in prop::collection::vec((0usize..8, 0usize..8), 1..20), d in 0usize..4) {
        let mut g = Graph::new();
        for i in 0..8 {
            g.add_vertex(format!("v{i}"));
        }
        for (s, t) in &edges {
            g.add_edge(VertexId(*s), VertexId(*t), "e");
        }
        let sub = d_hop_subgraph(&g, VertexId(0), d);
        for &e in &sub.edges {
            let (s, t) = g.edge_endpoints(e);
            prop_assert!(sub.contains(s) && sub.contains(t));
        }
        // Depths are bounded by d and the center comes first.
        prop_assert_eq!(sub.vertices[0], VertexId(0));
        prop_assert!(sub.depths.iter().all(|&x| x <= d));
    }

    #[test]
    fn bigger_radius_never_shrinks_subgraph(edges in prop::collection::vec((0usize..6, 0usize..6), 1..15)) {
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_vertex(format!("v{i}"));
        }
        for (s, t) in &edges {
            g.add_edge(VertexId(*s), VertexId(*t), "e");
        }
        let mut last = 0usize;
        for d in 0..4 {
            let n = d_hop_subgraph(&g, VertexId(0), d).vertex_count();
            prop_assert!(n >= last);
            last = n;
        }
    }

    #[test]
    fn json_display_parse_roundtrip(keys in prop::collection::vec("[a-z]{1,6}", 1..5), n in -1000i32..1000) {
        let mut map = std::collections::BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            map.insert(k.clone(), if i % 2 == 0 {
                JsonValue::Number(n as f64)
            } else {
                JsonValue::String(format!("s{i}"))
            });
        }
        let v = JsonValue::Object(map);
        let reparsed = JsonValue::parse(&v.to_string()).unwrap();
        prop_assert_eq!(v, reparsed);
    }

    // ---------------- metrics invariants ----------------

    #[test]
    fn hits_are_monotone_in_k(golds in prop::collection::vec(0usize..10, 1..8)) {
        let rankings: Vec<Vec<usize>> = golds.iter().map(|_| (0..10).collect()).collect();
        let m = evaluate_rankings(&rankings, |q, img| img == golds[q]);
        prop_assert!(m.hits_at_1 <= m.hits_at_3 + 1e-6);
        prop_assert!(m.hits_at_3 <= m.hits_at_5 + 1e-6);
        prop_assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        prop_assert!(m.mrr + 1e-6 >= m.hits_at_1); // MRR lower-bounded by H@1
    }

    // ---------------- kmeans invariants ----------------

    #[test]
    fn kmeans_assigns_every_point(points in prop::collection::vec(vec_f32(3), 1..30), k in 1usize..6, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = kmeans(&points, k, 20, &mut rng);
        prop_assert_eq!(result.assignments.len(), points.len());
        let kk = k.min(points.len());
        prop_assert!(result.assignments.iter().all(|&a| a < kk));
        let groups = clusters_of(&result, kk);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, points.len());
    }

    // ---------------- tokenizer invariants ----------------

    #[test]
    fn tokenizer_encode_respects_budget(text in "[a-z ]{0,200}", max_len in 2usize..40) {
        let tok = cem_clip::Tokenizer::build([text.as_str()]);
        let (ids, len) = tok.encode(&text, max_len);
        prop_assert_eq!(ids.len(), len);
        prop_assert!(len <= max_len);
        prop_assert_eq!(ids[0], cem_clip::tokenizer::CLS);
        prop_assert_eq!(*ids.last().unwrap(), cem_clip::tokenizer::SEP);
    }

    #[test]
    fn tokenizer_roundtrips_known_words(words in prop::collection::vec("[a-z]{1,8}", 1..10)) {
        let text = words.join(" ");
        let tok = cem_clip::Tokenizer::build([text.as_str()]);
        let ids = tok.tokenize(&text);
        let decoded = tok.decode(&ids);
        prop_assert_eq!(decoded, text.split_whitespace().collect::<Vec<_>>().join(" "));
    }
}
