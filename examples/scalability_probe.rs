//! Scalability probe (Figure 8 in miniature): CrossEM vs CrossEM⁺ as the
//! candidate-pair count grows. Shows the pair pruning and the time/memory
//! effect of mini-batch generation.
//!
//! ```text
//! cargo run --release --example scalability_probe
//! ```

use cem_data::{BundleConfig, DatasetBundle, DatasetKind, DatasetScale};
use crossem::plus::CrossEmPlus;
use crossem::{CrossEm, PromptKind, TrainConfig};

fn main() {
    for classes in [20usize, 40, 80] {
        let mut bc = BundleConfig::bench(DatasetKind::Fb2k);
        bc.scale = DatasetScale { classes, images_per_class: 4 };
        bc.pretrain_pairs = 800; // keep the probe quick
        println!("\n--- {classes} entities ({} candidate pairs) ---", classes * classes * 4);
        let bundle = DatasetBundle::prepare(bc);
        let dataset = &bundle.dataset;
        println!("actual candidate pairs: {}", dataset.candidate_pair_count());

        let config = TrainConfig {
            prompt: PromptKind::Soft,
            soft_backend: crossem::config::SoftBackend::GraphSage,
            hops: 1,
            epochs: 2,
            mining_prior_weight: 1.0,
            ..TrainConfig::default()
        };

        // Plain CrossEM — trains on every pair.
        let mut rng = bundle.stage_rng(1);
        let plain = CrossEm::new(&bundle.clip, &bundle.tokenizer, dataset, config, &mut rng);
        let plain_report = plain.train(&mut rng);
        println!(
            "CrossEM   : {:>7} pairs/epoch, {:.2}s/epoch, peak {:5.1} MB, MRR {:.2}",
            dataset.candidate_pair_count(),
            plain_report.avg_epoch_seconds(),
            plain_report.peak_bytes() as f64 / 1048576.0,
            plain.evaluate().mrr,
        );

        // CrossEM⁺ — PCP prunes and localises pairs.
        let mut rng = bundle.stage_rng(2);
        let plus = CrossEmPlus::new(
            &bundle.clip,
            &bundle.tokenizer,
            dataset,
            config,
            crossem::config::PlusConfig::default(),
            &mut rng,
        );
        let plus_report = plus.train(&mut rng);
        println!(
            "CrossEM+  : {:>7} pairs/epoch, {:.2}s/epoch, peak {:5.1} MB, MRR {:.2} (prep {:.1}s)",
            plus_report.pairs_per_epoch,
            plus_report.train.avg_epoch_seconds(),
            plus_report.train.peak_bytes() as f64 / 1048576.0,
            plus.evaluate().mrr,
            plus_report.prep_seconds,
        );
    }
}
