//! Case study (paper Sec. V-D): multi-modal knowledge-graph integration.
//! Match images to KG entities with CrossEM⁺, attach the confident matches
//! to the graph as `has image` edges, and compare against a supervised KG
//! baseline (RSME-style gated fusion).
//!
//! ```text
//! cargo run --release --example mkg_integration
//! ```

use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use crossem::plus::CrossEmPlus;
use crossem::{MatchingSet, PromptKind, TrainConfig};

fn main() {
    println!("preparing FB-IMG bundle (≈30 s) …");
    let bundle = DatasetBundle::prepare(BundleConfig::bench(DatasetKind::Fb2k));
    let dataset = &bundle.dataset;

    // --- CrossEM⁺: unsupervised ------------------------------------
    let mut rng = bundle.stage_rng(5);
    let config = TrainConfig {
        prompt: PromptKind::Soft,
        soft_backend: crossem::config::SoftBackend::GraphSage,
        hops: 1,
        epochs: 4,
        mining_prior_weight: 1.0,
        ..TrainConfig::default()
    };
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
        config,
        crossem::config::PlusConfig::default(),
        &mut rng,
    );
    let report = trainer.train(&mut rng);
    println!(
        "CrossEM+ trained: {} partitions, {} pairs/epoch (full cross product would be {})",
        report.partitions,
        report.pairs_per_epoch,
        dataset.candidate_pair_count()
    );
    let metrics = trainer.evaluate();
    println!("CrossEM+ ranking quality: {}", metrics.row());

    // --- KG baseline: supervised RSME analogue ----------------------
    let mut rng2 = bundle.stage_rng(6);
    let rsme = cem_baselines::kg::rsme::run(&bundle.clip, dataset, 8, 8, &mut rng2);
    println!("RSME (seed-supervised) ranking quality: {}", rsme.metrics.row());

    // --- Integrate: attach confident matches to the KG --------------
    let probabilities = trainer.matching_matrix();
    let confident = MatchingSet::thresholded(&probabilities, 0.5);
    let mut enriched = dataset.graph.clone();
    let before_edges = enriched.edge_count();
    let mut correct = 0usize;
    for &(entity, image, _) in &confident.pairs {
        let image_vertex = enriched.add_vertex(format!("image #{image}"));
        enriched.add_edge(dataset.entities[entity], image_vertex, "has image");
        if dataset.is_match(entity, image) {
            correct += 1;
        }
    }
    println!(
        "\nintegration: added {} `has image` edges ({} -> {} edges), {:.0}% correct",
        confident.len(),
        before_edges,
        enriched.edge_count(),
        if confident.is_empty() { 0.0 } else { 100.0 * correct as f32 / confident.len() as f32 }
    );
    println!(
        "paper's takeaway: the unsupervised cross-modal matcher integrates images\n\
         more accurately than structure-first KG methods — compare the two ranking\n\
         rows above."
    );
}
