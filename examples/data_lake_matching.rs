//! Data-lake matching: the paper's motivating scenario (Fig. 1) built by
//! hand. A relational table, a JSON document, and a small graph are mapped
//! into one canonical graph; a handful of images are rendered from the same
//! latent world; CrossEM matches vertices to images.
//!
//! ```text
//! cargo run --release --example data_lake_matching
//! ```

use cem_clip::pretrain::PretrainConfig;
use cem_clip::{Clip, ClipConfig, Tokenizer};
use cem_data::{AttributePool, ClassSpec, EmDataset, World};
use cem_graph::{DataLakeBuilder, JsonValue, Table};
use crossem::{CrossEm, PromptKind, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // ---------------------------------------------------------------
    // 1. Three heterogeneous sources, Figure-1 style.
    // ---------------------------------------------------------------
    let mut table = Table::new(
        "birds",
        vec!["name".into(), "crown color".into(), "wing shape".into(), "origin".into()],
    );
    table.push_row(vec![
        "laysan albatross".into(),
        "white crown".into(),
        "long wings".into(),
        "hawaii".into(),
    ]);
    table.push_row(vec![
        "downy woodpecker".into(),
        "red crown".into(),
        "short wings".into(),
        "north america".into(),
    ]);

    let json = JsonValue::parse(
        r#"{"name": "snowy owl", "crown color": "white crown", "wing shape": "round wings",
            "habitat": "@ref:tundra"}"#,
    )
    .expect("valid json");

    let mut graph_source = cem_graph::Graph::new();
    let heron = graph_source.add_vertex("great heron");
    let grey = graph_source.add_vertex("grey crown");
    let long = graph_source.add_vertex("long wings");
    graph_source.add_edge(heron, grey, "has crown color");
    graph_source.add_edge(heron, long, "has wing shape");

    // Map everything into one canonical graph.
    let mut builder = DataLakeBuilder::new();
    builder.add_table(&table);
    builder.add_json("snowy owl", &json);
    builder.add_graph(&graph_source);
    let graph = builder.build();
    println!(
        "canonical graph: {} vertices, {} edges from {} sources",
        graph.vertex_count(),
        graph.edge_count(),
        3
    );

    // ---------------------------------------------------------------
    // 2. A tiny world renders images of the four birds.
    // ---------------------------------------------------------------
    let mut world = World::new(cem_data::world::WorldConfig::default(), &mut rng);
    let entities = ["laysan albatross", "downy woodpecker", "snowy owl", "great heron"];
    let traits: [&[&str]; 4] = [
        &["white crown", "long wings", "albatross"],
        &["red crown", "short wings", "woodpecker"],
        &["white crown", "round wings", "owl"],
        &["grey crown", "long wings", "heron"],
    ];
    for t in traits.iter().flat_map(|t| t.iter()) {
        world.register_text(t, &mut rng);
    }
    for label in &entities {
        world.register_text(label, &mut rng);
    }

    let mut images = Vec::new();
    let mut gold = Vec::new();
    for (i, t) in traits.iter().enumerate() {
        for _ in 0..3 {
            images.push(world.render_image(t, &mut rng));
            gold.push(i);
        }
    }

    // ---------------------------------------------------------------
    // 3. Pre-train a small CLIP on captions from the same world.
    // ---------------------------------------------------------------
    let mut captions = Vec::new();
    for _ in 0..80 {
        for (i, t) in traits.iter().enumerate() {
            let caption = format!("a photo of {} with {} and {}", entities[i], t[0], t[1]);
            captions.push((caption, world.render_image(t, &mut rng)));
        }
    }
    let mut texts: Vec<String> = captions.iter().map(|(c, _)| c.clone()).collect();
    for v in graph.vertices() {
        texts.push(graph.vertex_label(v).to_string());
    }
    texts.push("a photo of with and in has".into());
    let tokenizer = Tokenizer::build(texts.iter().map(String::as_str));

    let clip = Clip::new(
        ClipConfig::small(tokenizer.vocab_size(), world.config().patch_dim),
        &mut rng,
    );
    let pairs: Vec<(Vec<usize>, cem_clip::Image)> =
        captions.into_iter().map(|(c, img)| (tokenizer.encode(&c, 77).0, img)).collect();
    println!("pre-training CLIP on {} caption pairs …", pairs.len());
    cem_clip::pretrain(
        &clip,
        &pairs,
        &PretrainConfig { epochs: 8, batch_size: 32, lr: 1e-3, clip_norm: 5.0 },
        &mut rng,
    );

    // ---------------------------------------------------------------
    // 4. Assemble the EM dataset over the canonical graph and match.
    // ---------------------------------------------------------------
    let entity_vertices: Vec<cem_graph::VertexId> =
        entities.iter().map(|l| graph.find_vertex(l).expect("entity in graph")).collect();
    let dataset = EmDataset {
        name: "data-lake".into(),
        graph,
        entities: entity_vertices,
        classes: entities
            .iter()
            .map(|l| ClassSpec { name: l.to_string(), signature: vec![], name_reveals: 0 })
            .collect(),
        images,
        image_gold: gold,
        pool: AttributePool::synthesize(2, 2),
    };
    dataset.validate();

    let config = TrainConfig {
        prompt: PromptKind::Hard,
        hops: 1,
        epochs: 4,
        batch_vertices: 4,
        batch_images: 6,
        ..TrainConfig::default()
    };
    let matcher = CrossEm::new(&clip, &tokenizer, &dataset, config, &mut rng);
    matcher.train(&mut rng);
    let metrics = matcher.evaluate();
    println!("\ncross-modal EM over the data lake: {}", metrics.row());

    let top1 = crossem::MatchingSet::top1(&matcher.matching_matrix());
    for &(e, i, p) in &top1.pairs {
        let gold = if dataset.is_match(e, i) { "✓" } else { "✗" };
        println!("  {gold} {:18} -> image #{i} (p={p:.2})", dataset.entity_label(e));
    }
}
