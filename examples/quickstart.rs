//! Quickstart: generate a small cross-modal EM benchmark, pre-train the
//! miniature CLIP, prompt-tune it with CrossEM, and inspect the matches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
use crossem::{CrossEm, MatchingSet, PromptKind, TrainConfig};

fn main() {
    // 1. One call builds the dataset, the tokenizer, and a pre-trained
    //    dual encoder (the "pre-trained MMLM" CrossEM assumes).
    println!("preparing dataset + pre-training CLIP (≈10 s) …");
    let bundle = DatasetBundle::prepare(BundleConfig::bench(DatasetKind::Cub));
    let dataset = &bundle.dataset;
    println!(
        "dataset: {} entities, {} graph vertices, {} images, {} candidate pairs",
        dataset.entity_count(),
        dataset.graph.vertex_count(),
        dataset.image_count(),
        dataset.candidate_pair_count()
    );

    // 2. Build a CrossEM matcher with hard-encoding prompts (Eq. 5) and
    //    tune it — entirely unsupervised.
    let mut rng = bundle.stage_rng(1);
    let config = TrainConfig {
        prompt: PromptKind::Hard,
        hops: 1,
        epochs: 4,
        ..TrainConfig::default()
    };
    let matcher = CrossEm::new(&bundle.clip, &bundle.tokenizer, dataset, config, &mut rng);

    // Show one generated prompt so the structure is visible.
    let sample_prompt = crossem::prompt::hard_prompt(
        &dataset.graph,
        dataset.entities[0],
        &crossem::prompt::HardPromptOptions { hops: 1, photo_prefix: true, max_subprompts: 4 },
    );
    println!("\nexample hard prompt:\n  {sample_prompt}");

    println!("\ntuning …");
    let report = matcher.train(&mut rng);
    println!(
        "trained {} epochs, {:.2}s/epoch, final loss {:.3}",
        report.epochs.len(),
        report.avg_epoch_seconds(),
        report.final_loss().unwrap_or(f32::NAN)
    );

    // 3. Evaluate against the gold pairs (used for evaluation only).
    let metrics = matcher.evaluate();
    println!("\naccuracy: {}", metrics.row());

    // 4. Extract the matching set S (Def. 2) and inspect the top matches.
    let probabilities = matcher.matching_matrix();
    let matches = MatchingSet::top1(&probabilities);
    println!(
        "matching set: {} pairs, precision {:.2}",
        matches.len(),
        matches.precision(|e, i| dataset.is_match(e, i))
    );
    for &(entity, image, p) in matches.pairs.iter().take(5) {
        let gold = if dataset.is_match(entity, image) { "✓" } else { "✗" };
        println!("  {gold} {:40} -> image #{image} (p={p:.2})", dataset.entity_label(entity));
    }
}
