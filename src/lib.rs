//! `crossem-suite` — workspace-level façade re-exporting the CrossEM crates.
//!
//! The real public API lives in the member crates; this crate exists so the
//! repository root can host runnable `examples/` and cross-crate integration
//! `tests/`.

pub use cem_baselines as baselines;
pub use cem_clip as clip;
pub use cem_data as data;
pub use cem_graph as graph;
pub use cem_nn as nn;
pub use cem_tensor as tensor;
pub use crossem as core;
