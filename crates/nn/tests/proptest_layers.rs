//! Property-based tests over the layer library: shape contracts, gradient
//! flow, and attention invariances.

use cem_nn::{
    CrossAttention, Embedding, GnnLayer, LayerNorm, Linear, Module, MultiHeadAttention,
    TransformerEncoder,
};
use cem_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_shapes_hold(rows in 1usize..8, in_dim in 1usize..12, out_dim in 1usize..12, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(in_dim, out_dim, &mut rng);
        let x = init::randn(&[rows, in_dim], 1.0, &mut rng);
        let y = layer.forward(&x);
        prop_assert_eq!(y.dims(), &[rows, out_dim]);
    }

    #[test]
    fn layer_norm_output_is_standardised(rows in 1usize..6, dim in 2usize..16, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ln = LayerNorm::new(dim);
        let x = init::randn(&[rows, dim], 3.0, &mut rng);
        let y = ln.forward(&x);
        for r in 0..rows {
            let row: Vec<f32> = (0..dim).map(|c| y.at2(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / dim as f32;
            prop_assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
        }
    }

    #[test]
    fn embedding_gather_is_consistent(vocab in 2usize..20, dim in 1usize..8, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let emb = Embedding::new(vocab, dim, &mut rng);
        let id = seed as usize % vocab;
        let single = emb.lookup(id).to_vec();
        let batch = emb.forward(&[id, id]);
        for (c, &v) in single.iter().enumerate() {
            prop_assert_eq!(batch.at2(0, c), v);
            prop_assert_eq!(batch.at2(1, c), v);
        }
    }

    #[test]
    fn self_attention_is_permutation_sensitive_but_shape_stable(t in 2usize..8, seed in 0u64..30) {
        // No positional information inside MHA itself: permuting the rows
        // permutes the outputs (equivariance), so row 0's output must equal
        // the permuted row's output after the same permutation.
        let mut rng = StdRng::seed_from_u64(seed);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = init::randn(&[t, 8], 1.0, &mut rng);
        let y = mha.forward(&x, None);
        prop_assert_eq!(y.dims(), &[t, 8]);

        // Swap rows 0 and t-1 in the input.
        let mut data = x.to_vec();
        for c in 0..8 {
            data.swap(c, (t - 1) * 8 + c);
        }
        let x_swapped = Tensor::from_vec(data, &[t, 8]);
        let y_swapped = mha.forward(&x_swapped, None);
        // Equivariance: output row 0 of swapped == output row t-1 of original.
        for c in 0..8 {
            prop_assert!((y_swapped.at2(0, c) - y.at2(t - 1, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn transformer_gradients_reach_every_parameter(layers in 1usize..3, seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = TransformerEncoder::new(8, 2, layers, 16, &mut rng);
        let x = init::randn(&[3, 8], 1.0, &mut rng);
        enc.forward(&x, None).sum().backward();
        for (name, p) in enc.named_params() {
            prop_assert!(p.grad().is_some(), "no grad for {}", name);
        }
    }

    #[test]
    fn cross_attention_ignores_context_permutation_of_values_it_never_attends(seed in 0u64..30) {
        // Softmax attention mixes all context rows, so permuting the
        // context must leave the output unchanged only when weights are
        // permutation-covariant — which they are: the output is invariant
        // to reordering (set semantics of attention over keys/values).
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = CrossAttention::new(8, 2, &mut rng);
        let x = init::randn(&[2, 8], 1.0, &mut rng);
        let ctx = init::randn(&[4, 8], 1.0, &mut rng);
        let y = ca.forward(&x, &ctx).to_vec();

        // Reverse the context rows.
        let mut data = ctx.to_vec();
        let mut reversed = Vec::with_capacity(data.len());
        for r in (0..4).rev() {
            reversed.extend_from_slice(&data[r * 8..(r + 1) * 8]);
        }
        data = reversed;
        let y2 = ca.forward(&x, &Tensor::from_vec(data, &[4, 8])).to_vec();
        for (a, b) in y.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-4, "attention not set-invariant over context");
        }
    }

    #[test]
    fn gnn_output_bounded_by_relu(n in 2usize..6, seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = GnnLayer::new(4, 4, &mut rng);
        let f = init::randn(&[n, 4], 1.0, &mut rng);
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let out = layer.forward(&f, &adj);
        prop_assert!(out.to_vec().iter().all(|&x| x >= 0.0), "relu output must be non-negative");
    }
}
