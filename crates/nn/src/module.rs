//! The [`Module`] trait: a named collection of trainable parameters.

use cem_tensor::io::{CheckpointError, StateDict};
use cem_tensor::Tensor;

/// A neural-network component owning zero or more parameter tensors.
pub trait Module {
    /// All parameters with hierarchical dot-separated names
    /// (`"block0.attn.wq.weight"`, …). Names must be unique within one
    /// module tree; [`Module::state_dict`] asserts this.
    fn named_params(&self) -> Vec<(String, Tensor)>;

    /// Just the tensors, in `named_params` order (what optimisers consume).
    fn params(&self) -> Vec<Tensor> {
        self.named_params().into_iter().map(|(_, t)| t).collect()
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.named_params().iter().map(|(_, t)| t.numel()).sum()
    }

    /// Snapshot all parameters into a [`StateDict`].
    fn state_dict(&self) -> StateDict {
        let mut dict = StateDict::new();
        for (name, t) in self.named_params() {
            dict.insert(name, t.detach());
        }
        dict
    }

    /// Restore parameters from a [`StateDict`] by name, surfacing shape
    /// mismatches and unknown entries as typed errors instead of panics.
    fn try_load_state_dict(&self, dict: &StateDict) -> Result<(), CheckpointError> {
        let unused = dict.restore_into(&self.named_params())?;
        if !unused.is_empty() {
            return Err(CheckpointError::InvalidEntry {
                context: format!("checkpoint has unknown parameters: {unused:?}"),
            });
        }
        Ok(())
    }

    /// Restore parameters from a [`StateDict`] by name. Panics if the dict
    /// does not fit this module (a wiring bug); load paths that consume
    /// external files should prefer [`Module::try_load_state_dict`].
    fn load_state_dict(&self, dict: &StateDict) {
        if let Err(e) = self.try_load_state_dict(dict) {
            panic!("load_state_dict failed: {e}");
        }
    }

    /// Mark every parameter as requiring gradients (training mode for this
    /// subtree) or freeze it.
    fn set_trainable(&self, trainable: bool) {
        for (_, p) in self.named_params() {
            p.set_requires_grad(trainable);
        }
    }
}

/// Prefix each name of `params` with `prefix.`, a helper for composite
/// modules.
pub fn with_prefix(prefix: &str, params: Vec<(String, Tensor)>) -> Vec<(String, Tensor)> {
    params.into_iter().map(|(name, t)| (format!("{prefix}.{name}"), t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        a: Tensor,
        b: Tensor,
    }

    impl Module for Pair {
        fn named_params(&self) -> Vec<(String, Tensor)> {
            vec![("a".into(), self.a.clone()), ("b".into(), self.b.clone())]
        }
    }

    #[test]
    fn param_count_sums() {
        let m = Pair { a: Tensor::zeros(&[2, 3]), b: Tensor::zeros(&[4]) };
        assert_eq!(m.param_count(), 10);
    }

    #[test]
    fn state_dict_roundtrip() {
        let m = Pair {
            a: Tensor::from_vec(vec![1.0; 6], &[2, 3]),
            b: Tensor::from_vec(vec![2.0; 4], &[4]),
        };
        let dict = m.state_dict();
        let fresh = Pair { a: Tensor::zeros(&[2, 3]), b: Tensor::zeros(&[4]) };
        fresh.load_state_dict(&dict);
        assert_eq!(fresh.a.to_vec(), vec![1.0; 6]);
        assert_eq!(fresh.b.to_vec(), vec![2.0; 4]);
    }

    #[test]
    fn set_trainable_toggles() {
        let m = Pair { a: Tensor::zeros(&[1]), b: Tensor::zeros(&[1]) };
        m.set_trainable(true);
        assert!(m.a.requires_grad_enabled());
        m.set_trainable(false);
        assert!(!m.a.requires_grad_enabled());
    }

    #[test]
    fn with_prefix_nests_names() {
        let v = with_prefix("layer", vec![("w".into(), Tensor::zeros(&[1]))]);
        assert_eq!(v[0].0, "layer.w");
    }
}
