//! Multi-head scaled-dot-product self-attention over a single sequence.
//!
//! Operates on `[T, D]` (one sequence at a time); the encoders loop over the
//! batch. An optional additive mask (e.g. `-1e9` at padding positions)
//! matches the behaviour of masked softmax in the reference CLIP text
//! encoder.

use cem_tensor::Tensor;
use rand::Rng;

use crate::linear::Linear;
use crate::module::{with_prefix, Module};

/// Multi-head self-attention with fused QKV projection.
pub struct MultiHeadAttention {
    qkv: Linear,
    proj: Linear,
    heads: usize,
    dim: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    pub fn new<R: Rng>(dim: usize, heads: usize, rng: &mut R) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            qkv: Linear::new(dim, 3 * dim, rng),
            proj: Linear::new(dim, dim, rng),
            heads,
            dim,
            head_dim: dim / heads,
        }
    }

    /// Self-attention over `[T, D]`. `mask` (if given) must be `[T, T]` and
    /// is added to the attention logits before softmax.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let (t, d) = x.shape().as_matrix();
        debug_assert_eq!(d, self.dim);
        let qkv = self.qkv.forward(x); // [T, 3D]
        let q = qkv.slice_cols(0, d);
        let k = qkv.slice_cols(d, 2 * d);
        let v = qkv.slice_cols(2 * d, 3 * d);

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let lo = h * self.head_dim;
            let hi = lo + self.head_dim;
            let qh = q.slice_cols(lo, hi); // [T, hd]
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            let mut scores = qh.matmul_nt(&kh).mul_scalar(scale); // [T, T]
            if let Some(m) = mask {
                debug_assert_eq!(m.dims(), &[t, t]);
                scores = scores.add(m);
            }
            let attn = scores.softmax_rows();
            head_outputs.push(attn.matmul(&vh)); // [T, hd]
        }
        let concat = head_outputs
            .into_iter()
            .reduce(|acc, h| acc.concat_cols(&h))
            .expect("at least one head");
        self.proj.forward(&concat)
    }

    /// Build an additive padding mask for a sequence where positions
    /// `valid_len..t` are padding: those key columns get `-1e9`.
    pub fn padding_mask(t: usize, valid_len: usize) -> Tensor {
        let mut data = vec![0.0f32; t * t];
        for row in 0..t {
            for col in valid_len..t {
                data[row * t + col] = -1e9;
            }
        }
        Tensor::from_vec(data, &[t, t])
    }

    pub fn heads(&self) -> usize {
        self.heads
    }
}

impl Module for MultiHeadAttention {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = with_prefix("qkv", self.qkv.named_params());
        v.extend(with_prefix("proj", self.proj.named_params()));
        v
    }
}

/// Multi-head cross-attention: queries from one sequence, keys/values from
/// another (the co-attention primitive of two-stream fusion models such as
/// ViLBERT).
pub struct CrossAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    proj: Linear,
    heads: usize,
    dim: usize,
    head_dim: usize,
}

impl CrossAttention {
    pub fn new<R: Rng>(dim: usize, heads: usize, rng: &mut R) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        CrossAttention {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            proj: Linear::new(dim, dim, rng),
            heads,
            dim,
            head_dim: dim / heads,
        }
    }

    /// Attend from `x` (`[Tx, D]`) over `context` (`[Tc, D]`); returns
    /// `[Tx, D]`.
    pub fn forward(&self, x: &Tensor, context: &Tensor) -> Tensor {
        debug_assert_eq!(x.shape().last_dim(), self.dim);
        debug_assert_eq!(context.shape().last_dim(), self.dim);
        let q = self.wq.forward(x);
        let k = self.wk.forward(context);
        let v = self.wv.forward(context);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let lo = h * self.head_dim;
            let hi = lo + self.head_dim;
            let attn = q
                .slice_cols(lo, hi)
                .matmul_nt(&k.slice_cols(lo, hi))
                .mul_scalar(scale)
                .softmax_rows();
            heads.push(attn.matmul(&v.slice_cols(lo, hi)));
        }
        let concat =
            heads.into_iter().reduce(|acc, h| acc.concat_cols(&h)).expect("at least one head");
        self.proj.forward(&concat)
    }
}

impl Module for CrossAttention {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = with_prefix("wq", self.wq.named_params());
        v.extend(with_prefix("wk", self.wk.named_params()));
        v.extend(with_prefix("wv", self.wv.named_params()));
        v.extend(with_prefix("proj", self.proj.named_params()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = cem_tensor::init::randn(&[5, 8], 1.0, &mut rng);
        let y = mha.forward(&x, None);
        assert_eq!(y.dims(), &[5, 8]);
    }

    #[test]
    fn padding_mask_blocks_attention_to_padding() {
        let mut rng = StdRng::seed_from_u64(1);
        let mha = MultiHeadAttention::new(4, 1, &mut rng);
        let x = cem_tensor::init::randn(&[4, 4], 1.0, &mut rng);

        // With a full mask over the last two positions, changing those rows'
        // *content* must not affect the first row's output.
        let mask = MultiHeadAttention::padding_mask(4, 2);
        let y1 = mha.forward(&x, Some(&mask));

        let mut data = x.to_vec();
        for v in data[8..16].iter_mut() {
            *v += 100.0; // perturb padding rows
        }
        let x2 = Tensor::from_vec(data, &[4, 4]);
        let y2 = mha.forward(&x2, Some(&mask));

        // First two (valid) query rows attend only to valid keys.
        for i in 0..8 {
            assert!((y1.to_vec()[i] - y2.to_vec()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(8, 4, &mut rng);
        let x = cem_tensor::init::randn(&[3, 8], 1.0, &mut rng);
        mha.forward(&x, None).sum().backward();
        for (name, p) in mha.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }

    #[test]
    fn cross_attention_shapes_follow_query() {
        let mut rng = StdRng::seed_from_u64(3);
        let ca = CrossAttention::new(8, 2, &mut rng);
        let x = cem_tensor::init::randn(&[3, 8], 1.0, &mut rng);
        let ctx = cem_tensor::init::randn(&[7, 8], 1.0, &mut rng);
        let y = ca.forward(&x, &ctx);
        assert_eq!(y.dims(), &[3, 8]);
    }

    #[test]
    fn cross_attention_depends_on_context() {
        let mut rng = StdRng::seed_from_u64(4);
        let ca = CrossAttention::new(8, 2, &mut rng);
        let x = cem_tensor::init::randn(&[2, 8], 1.0, &mut rng);
        let c1 = cem_tensor::init::randn(&[4, 8], 1.0, &mut rng);
        let c2 = cem_tensor::init::randn(&[4, 8], 1.0, &mut rng);
        let y1 = ca.forward(&x, &c1).to_vec();
        let y2 = ca.forward(&x, &c2).to_vec();
        assert!(y1.iter().zip(&y2).any(|(a, b)| (a - b).abs() > 1e-5));
    }

    #[test]
    fn cross_attention_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(5);
        let ca = CrossAttention::new(4, 1, &mut rng);
        let x = cem_tensor::init::randn(&[2, 4], 1.0, &mut rng);
        let ctx = cem_tensor::init::randn(&[3, 4], 1.0, &mut rng);
        ca.forward(&x, &ctx).sum().backward();
        for (name, p) in ca.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }
}
