//! Transformer feed-forward block (Linear → GELU → Linear).

use cem_tensor::Tensor;
use rand::Rng;

use crate::linear::Linear;
use crate::module::{with_prefix, Module};

/// Position-wise feed-forward network with a GELU nonlinearity.
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    pub fn new<R: Rng>(dim: usize, hidden: usize, rng: &mut R) -> Self {
        FeedForward { fc1: Linear::new(dim, hidden, rng), fc2: Linear::new(hidden, dim, rng) }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.fc2.forward(&self.fc1.forward(x).gelu())
    }
}

impl Module for FeedForward {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = with_prefix("fc1", self.fc1.named_params());
        v.extend(with_prefix("fc2", self.fc2.named_params()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let ff = FeedForward::new(8, 32, &mut rng);
        let x = cem_tensor::init::randn(&[4, 8], 1.0, &mut rng);
        assert_eq!(ff.forward(&x).dims(), &[4, 8]);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let ff = FeedForward::new(4, 16, &mut rng);
        // 4*16 + 16 + 16*4 + 4
        assert_eq!(ff.param_count(), 148);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let ff = FeedForward::new(4, 8, &mut rng);
        let x = cem_tensor::init::randn(&[2, 4], 1.0, &mut rng);
        ff.forward(&x).sum().backward();
        for (name, p) in ff.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }
}
