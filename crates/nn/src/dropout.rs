//! Inverted dropout.

use cem_tensor::Tensor;
use rand::Rng;

/// Dropout with probability `p`. At train time a Bernoulli mask is sampled
/// from the provided RNG and the surviving activations are scaled by
/// `1/(1-p)` so evaluation needs no correction. Calling it in eval mode is
/// the identity.
pub struct Dropout {
    p: f32,
}

impl Dropout {
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }

    /// Training-mode forward (samples a fresh mask).
    pub fn forward_train<R: Rng>(&self, x: &Tensor, rng: &mut R) -> Tensor {
        if self.p == 0.0 {
            return x.clone();
        }
        let scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| if rng.gen::<f32>() < self.p { 0.0 } else { scale })
            .collect();
        let mask_t = Tensor::from_vec(mask, x.dims());
        x.mul(&mask_t)
    }

    /// Evaluation-mode forward (identity).
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        x.clone()
    }

    pub fn p(&self) -> f32 {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_p_is_identity() {
        let d = Dropout::new(0.0);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.forward_train(&x, &mut rng).to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn expected_value_is_preserved() {
        let d = Dropout::new(0.5);
        let x = Tensor::ones(&[10_000]);
        let mut rng = StdRng::seed_from_u64(1);
        let y = d.forward_train(&x, &mut rng);
        let mean: f32 = y.to_vec().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn eval_mode_never_drops() {
        let d = Dropout::new(0.9);
        let x = Tensor::ones(&[16]);
        assert_eq!(d.forward_eval(&x).to_vec(), vec![1.0; 16]);
    }

    #[test]
    fn masked_positions_get_zero_grad() {
        let d = Dropout::new(0.5);
        let x = Tensor::ones(&[64]).requires_grad();
        let mut rng = StdRng::seed_from_u64(2);
        let y = d.forward_train(&x, &mut rng);
        y.sum().backward();
        let g = x.grad().unwrap();
        let out = y.to_vec();
        for (gv, ov) in g.iter().zip(&out) {
            if *ov == 0.0 {
                assert_eq!(*gv, 0.0);
            } else {
                assert!((gv - 2.0).abs() < 1e-6); // scale = 1/(1-0.5)
            }
        }
    }
}
