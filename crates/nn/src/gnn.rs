//! Graph layers used by the soft-prompt generator (paper Eq. 6).
//!
//! Both layers operate on a dense feature matrix `[N, D]` plus an adjacency
//! list. [`GnnLayer`] is the plain mean-aggregation GNN the paper selects
//! for CUB/SUN; [`GraphSageLayer`] is the concat-self-and-neighbours
//! GraphSAGE variant it selects for the FB15K-derived graphs.

use cem_tensor::Tensor;
use rand::Rng;

use crate::linear::Linear;
use crate::module::{with_prefix, Module};

/// Mean-aggregate the neighbour rows of every vertex: row `i` of the result
/// is `mean_{j ∈ adj[i]} features[j]` (zero vector for isolated vertices).
pub fn neighbor_mean(features: &Tensor, adj: &[Vec<usize>]) -> Tensor {
    let (n, _d) = features.shape().as_matrix();
    assert_eq!(adj.len(), n, "adjacency length {} != vertex count {n}", adj.len());
    let parts: Vec<Tensor> = adj
        .iter()
        .map(|neighbors| {
            if neighbors.is_empty() {
                Tensor::zeros(&[features.shape().last_dim()])
            } else {
                features.gather_rows(neighbors).mean_axis0()
            }
        })
        .collect();
    Tensor::stack_rows(&parts)
}

/// A single GNN layer: `relu(W·mean(neigh) + U·self)` per vertex.
pub struct GnnLayer {
    w_neigh: Linear,
    w_self: Linear,
}

impl GnnLayer {
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GnnLayer {
            w_neigh: Linear::new(in_dim, out_dim, rng),
            w_self: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// `features [N, in] + adjacency -> [N, out]`.
    pub fn forward(&self, features: &Tensor, adj: &[Vec<usize>]) -> Tensor {
        let neigh = neighbor_mean(features, adj);
        self.w_self.forward(features).add(&self.w_neigh.forward(&neigh)).relu()
    }
}

impl Module for GnnLayer {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = with_prefix("w_neigh", self.w_neigh.named_params());
        v.extend(with_prefix("w_self", self.w_self.named_params()));
        v
    }
}

/// GraphSAGE layer: `relu(W·[self ‖ mean(neigh)])` followed by row L2
/// normalisation, per Hamilton et al.
pub struct GraphSageLayer {
    w: Linear,
}

impl GraphSageLayer {
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GraphSageLayer { w: Linear::new(2 * in_dim, out_dim, rng) }
    }

    /// `features [N, in] + adjacency -> [N, out]` (rows L2-normalised).
    pub fn forward(&self, features: &Tensor, adj: &[Vec<usize>]) -> Tensor {
        let neigh = neighbor_mean(features, adj);
        let concat = features.concat_cols(&neigh);
        self.w.forward(&concat).relu().l2_normalize_rows()
    }
}

impl Module for GraphSageLayer {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        with_prefix("w", self.w.named_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn neighbor_mean_averages_rows() {
        let f = Tensor::from_vec(vec![1.0, 0.0, 3.0, 0.0, 0.0, 6.0], &[3, 2]);
        let adj = vec![vec![1, 2], vec![0], vec![]];
        let m = neighbor_mean(&f, &adj);
        assert_eq!(m.dims(), &[3, 2]);
        let v = m.to_vec();
        assert_eq!(&v[0..2], &[1.5, 3.0]); // mean of rows 1,2
        assert_eq!(&v[2..4], &[1.0, 0.0]); // row 0
        assert_eq!(&v[4..6], &[0.0, 0.0]); // isolated
    }

    #[test]
    fn gnn_layer_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = GnnLayer::new(4, 6, &mut rng);
        let f = cem_tensor::init::randn(&[3, 4], 1.0, &mut rng);
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let out = layer.forward(&f, &adj);
        assert_eq!(out.dims(), &[3, 6]);
        out.sum().backward();
        for (name, p) in layer.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn graphsage_rows_are_unit_or_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GraphSageLayer::new(4, 8, &mut rng);
        let f = cem_tensor::init::randn(&[3, 4], 1.0, &mut rng);
        let adj = vec![vec![1, 2], vec![0], vec![0, 1]];
        let out = layer.forward(&f, &adj);
        for r in 0..3 {
            let row: Vec<f32> = (0..8).map(|c| out.at2(r, c)).collect();
            let n: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(n < 1.0 + 1e-4, "row norm {n}");
        }
    }

    #[test]
    fn isolated_vertex_depends_only_on_self() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GnnLayer::new(2, 2, &mut rng);
        let f1 = Tensor::from_vec(vec![1.0, 2.0, 9.0, 9.0], &[2, 2]);
        let f2 = Tensor::from_vec(vec![1.0, 2.0, -5.0, 0.0], &[2, 2]);
        let adj = vec![vec![], vec![]];
        let o1 = layer.forward(&f1, &adj);
        let o2 = layer.forward(&f2, &adj);
        // Vertex 0 isolated and identical in both inputs -> same output row.
        assert_eq!(&o1.to_vec()[0..2], &o2.to_vec()[0..2]);
    }
}
