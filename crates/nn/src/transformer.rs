//! Pre-LayerNorm Transformer encoder (the architecture of CLIP's text
//! tower and of the ViT-style image tower).

use cem_tensor::Tensor;
use rand::Rng;

use crate::attention::MultiHeadAttention;
use crate::mlp::FeedForward;
use crate::module::{with_prefix, Module};
use crate::norm::LayerNorm;

/// One pre-LN Transformer block: `x + MHA(LN(x))`, then `x + FFN(LN(x))`.
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
}

impl TransformerBlock {
    pub fn new<R: Rng>(dim: usize, heads: usize, ffn_hidden: usize, rng: &mut R) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln2: LayerNorm::new(dim),
            ffn: FeedForward::new(dim, ffn_hidden, rng),
        }
    }

    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let x = x.add(&self.attn.forward(&self.ln1.forward(x), mask));
        x.add(&self.ffn.forward(&self.ln2.forward(&x)))
    }
}

impl Module for TransformerBlock {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = with_prefix("ln1", self.ln1.named_params());
        v.extend(with_prefix("attn", self.attn.named_params()));
        v.extend(with_prefix("ln2", self.ln2.named_params()));
        v.extend(with_prefix("ffn", self.ffn.named_params()));
        v
    }
}

/// A stack of [`TransformerBlock`]s with a final LayerNorm.
pub struct TransformerEncoder {
    blocks: Vec<TransformerBlock>,
    ln_final: LayerNorm,
    dim: usize,
}

impl TransformerEncoder {
    pub fn new<R: Rng>(
        dim: usize,
        heads: usize,
        layers: usize,
        ffn_hidden: usize,
        rng: &mut R,
    ) -> Self {
        TransformerEncoder {
            blocks: (0..layers).map(|_| TransformerBlock::new(dim, heads, ffn_hidden, rng)).collect(),
            ln_final: LayerNorm::new(dim),
            dim,
        }
    }

    /// `[T, D] -> [T, D]` token representations.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.forward(&h, mask);
        }
        self.ln_final.forward(&h)
    }

    pub fn layers(&self) -> usize {
        self.blocks.len()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Module for TransformerEncoder {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = Vec::new();
        for (i, block) in self.blocks.iter().enumerate() {
            v.extend(with_prefix(&format!("block{i}"), block.named_params()));
        }
        v.extend(with_prefix("ln_final", self.ln_final.named_params()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(8, 2, 2, 16, &mut rng);
        let x = cem_tensor::init::randn(&[6, 8], 1.0, &mut rng);
        let y = enc.forward(&x, None);
        assert_eq!(y.dims(), &[6, 8]);
    }

    #[test]
    fn deeper_encoder_has_more_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let one = TransformerEncoder::new(8, 2, 1, 16, &mut rng).param_count();
        let two = TransformerEncoder::new(8, 2, 2, 16, &mut rng).param_count();
        assert!(two > one);
    }

    #[test]
    fn unique_parameter_names() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(8, 2, 3, 16, &mut rng);
        let names: Vec<String> = enc.named_params().into_iter().map(|(n, _)| n).collect();
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(names.len(), unique.len());
    }

    #[test]
    fn gradients_reach_every_block() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TransformerEncoder::new(8, 2, 2, 16, &mut rng);
        let x = cem_tensor::init::randn(&[3, 8], 1.0, &mut rng);
        enc.forward(&x, None).sum().backward();
        for (name, p) in enc.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn training_step_reduces_reconstruction_loss() {
        // A 1-block transformer should be able to start fitting an identity
        // target within a few optimiser steps — an end-to-end smoke test of
        // the layer stack + autograd + AdamW together.
        use cem_tensor::optim::{AdamW, Optimizer};
        let mut rng = StdRng::seed_from_u64(3);
        let enc = TransformerEncoder::new(8, 2, 1, 16, &mut rng);
        let x = cem_tensor::init::randn(&[4, 8], 1.0, &mut rng);
        let target = cem_tensor::init::randn(&[4, 8], 1.0, &mut rng);
        let mut opt = AdamW::new(enc.params(), 1e-2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..20 {
            opt.zero_grad();
            let loss = enc.forward(&x, None).sub(&target).square().mean();
            last = loss.item();
            first.get_or_insert(last);
            loss.backward();
            opt.step();
        }
        assert!(last < first.unwrap(), "loss did not decrease: {first:?} -> {last}");
    }
}
