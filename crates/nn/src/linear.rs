//! Fully-connected layer `y = x·W + b`.

use cem_tensor::{init, Tensor};
use rand::Rng;

use crate::module::Module;

/// Linear projection with optional bias. Weight layout is `[in, out]` so
/// forward is a plain `x.matmul(&w)`.
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Xavier-initialised linear layer with bias.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: init::xavier_uniform(in_dim, out_dim, rng).requires_grad(),
            bias: Some(Tensor::zeros(&[out_dim]).requires_grad()),
            in_dim,
            out_dim,
        }
    }

    /// Xavier-initialised linear layer without bias (projection heads).
    pub fn new_no_bias<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: init::xavier_uniform(in_dim, out_dim, rng).requires_grad(),
            bias: None,
            in_dim,
            out_dim,
        }
    }

    /// `[N, in] -> [N, out]` (rank-1 inputs behave as a single row).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        debug_assert_eq!(x.shape().last_dim(), self.in_dim, "Linear input dim mismatch");
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add_row(b),
            None => y,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Linear {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = vec![("weight".to_string(), self.weight.clone())];
        if let Some(b) = &self.bias {
            v.push(("bias".to_string(), b.clone()));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(3, 2, &mut rng);
        let x = Tensor::ones(&[4, 3]);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[4, 2]);
    }

    #[test]
    fn identity_weight_passthrough() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new_no_bias(2, 2, &mut rng);
        l.weight().copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        let x = Tensor::from_vec(vec![3.0, -1.0], &[1, 2]);
        assert_eq!(l.forward(&x).to_vec(), vec![3.0, -1.0]);
    }

    #[test]
    fn gradient_flows_to_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        l.forward(&x).sum().backward();
        for (_, p) in l.named_params() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn param_count_with_and_without_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Linear::new(3, 4, &mut rng).param_count(), 16);
        assert_eq!(Linear::new_no_bias(3, 4, &mut rng).param_count(), 12);
    }
}
