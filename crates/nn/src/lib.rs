//! # cem-nn
//!
//! Neural-network layers built on [`cem_tensor`]: the building blocks of the
//! CLIP-style dual encoder (Linear, LayerNorm, Embedding, multi-head
//! attention, Transformer encoder) plus the graph layers the paper's soft
//! prompt relies on (a mean-aggregating GNN layer and GraphSAGE).
//!
//! Everything is a [`Module`]: a named bag of parameter tensors that can be
//! collected for an optimiser or serialised via
//! [`cem_tensor::io::StateDict`].

pub mod attention;
pub mod dropout;
pub mod embedding;
pub mod gnn;
pub mod linear;
pub mod mlp;
pub mod module;
pub mod norm;
pub mod transformer;

pub use attention::{CrossAttention, MultiHeadAttention};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gnn::{GnnLayer, GraphSageLayer};
pub use linear::Linear;
pub use mlp::FeedForward;
pub use module::Module;
pub use norm::LayerNorm;
pub use transformer::{TransformerBlock, TransformerEncoder};
