//! Layer normalisation module (owns gamma/beta).

use cem_tensor::Tensor;

use crate::module::Module;

/// LayerNorm over the last axis with learned affine parameters.
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones(&[dim]).requires_grad(),
            beta: Tensor::zeros(&[dim]).requires_grad(),
            eps: 1e-5,
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.layer_norm(&self.gamma, &self.beta, self.eps)
    }
}

impl Module for LayerNorm {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        vec![("gamma".to_string(), self.gamma.clone()), ("beta".to_string(), self.beta.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[1, 4]);
        let y = ln.forward(&x).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn params_receive_gradients() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        ln.forward(&x).sum().backward();
        for (_, p) in ln.named_params() {
            assert!(p.grad().is_some());
        }
    }
}
