//! Token and positional embeddings.

use cem_tensor::{init, Tensor};
use rand::Rng;

use crate::module::Module;

/// A `[vocab, dim]` lookup table. `forward` gathers rows (differentiable:
/// backward scatter-adds into the table).
pub struct Embedding {
    weight: Tensor,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        // CLIP-style small-normal init keeps early logits in a sane range.
        Embedding { weight: init::randn(&[vocab, dim], 0.02, rng).requires_grad(), vocab, dim }
    }

    /// Wrap an existing table (e.g. to share weights between modules).
    pub fn from_weight(weight: Tensor) -> Self {
        let (vocab, dim) = weight.shape().as_matrix();
        Embedding { weight, vocab, dim }
    }

    /// `[N] token ids -> [N, dim]`.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        self.weight.gather_rows(ids)
    }

    /// A single token's embedding as `[dim]`.
    pub fn lookup(&self, id: usize) -> Tensor {
        self.weight.gather_rows(&[id]).reshape(&[self.dim])
    }

    pub fn vocab(&self) -> usize {
        self.vocab
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Embedding {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        vec![("weight".to_string(), self.weight.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_gathers_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(10, 4, &mut rng);
        let out = e.forward(&[3, 3, 7]);
        assert_eq!(out.dims(), &[3, 4]);
        let w = e.weight().to_vec();
        assert_eq!(&out.to_vec()[0..4], &w[12..16]);
        assert_eq!(&out.to_vec()[4..8], &w[12..16]);
    }

    #[test]
    fn gradients_scatter_to_used_rows_only() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(4, 2, &mut rng);
        e.forward(&[1]).sum().backward();
        let g = e.weight().grad().unwrap();
        assert_eq!(&g[0..2], &[0.0, 0.0]);
        assert_eq!(&g[2..4], &[1.0, 1.0]);
        assert_eq!(&g[4..8], &[0.0; 4]);
    }

    #[test]
    fn lookup_is_rank1() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(4, 3, &mut rng);
        assert_eq!(e.lookup(2).dims(), &[3]);
    }
}
