//! Configuration types for CrossEM / CrossEM⁺ training.

/// Which prompt generation mechanism to use (paper Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptKind {
    /// `"a photo of {label}"` — the Sec. II-B baseline.
    Baseline,
    /// Hard-encoding prompt `f_pro^h` (Eq. 5).
    Hard,
    /// Soft prompt `f_pro^s` (Eq. 6–7).
    Soft,
}

impl PromptKind {
    pub fn label(&self) -> &'static str {
        match self {
            PromptKind::Baseline => "baseline",
            PromptKind::Hard => "hard",
            PromptKind::Soft => "soft",
        }
    }
}

/// Which graph aggregator backs the soft prompt (the paper uses GNN for
/// CUB/SUN and GraphSAGE for the FB15K-derived graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftBackend {
    Gnn,
    GraphSage,
}

/// Which text-side parameters prompt tuning updates. `Head` (projection
/// head + input embeddings) is the safer default for the unsupervised
/// objective: the pre-trained tower body stays frozen, matching prompt
/// tuning's "quick adaptation, low overfitting risk" framing (Sec. II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneScope {
    /// Tune the full text tower (fine-tuning-like).
    Full,
    /// Tune only the projection head and input embeddings.
    Head,
}

/// Divergence-guard policy: after every optimisation step the trainer
/// checks loss/gradient finiteness (and optionally a loss-spike EWMA);
/// a tripped guard skips the poisoned step, rolls parameters and optimiser
/// state back to the last good snapshot, and halves the learning rate,
/// with a bounded retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Master switch. When off, batches are applied unconditionally
    /// (pre-guard behaviour).
    pub enabled: bool,
    /// Trip when `loss > spike_factor × EWMA(loss)`. Values ≤ 1.0 disable
    /// spike detection; non-finite checks stay active. Off by default so
    /// noisy-but-healthy runs reproduce the recorded seed results.
    pub spike_factor: f32,
    /// EWMA smoothing weight for the running loss (weight of the newest
    /// observation).
    pub ewma_alpha: f32,
    /// Healthy batches to observe before spike detection arms.
    pub warmup_batches: usize,
    /// Rollbacks allowed per run before the trainer gives up and reports
    /// the run as diverged.
    pub max_retries: usize,
    /// Multiplier applied to the learning rate on each rollback.
    pub lr_backoff: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: true,
            spike_factor: 0.0,
            ewma_alpha: 0.2,
            warmup_batches: 8,
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

impl GuardConfig {
    /// Guard tuned for fault drills: spike detection armed.
    pub fn strict() -> Self {
        GuardConfig { spike_factor: 8.0, ..GuardConfig::default() }
    }

    pub fn disabled() -> Self {
        GuardConfig { enabled: false, ..GuardConfig::default() }
    }

    pub fn validate(&self) {
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "guard ewma_alpha must be in (0,1]"
        );
        assert!(
            self.lr_backoff > 0.0 && self.lr_backoff <= 1.0,
            "guard lr_backoff must be in (0,1]"
        );
        assert!(
            !self.spike_factor.is_nan(),
            "guard spike_factor must not be NaN"
        );
    }
}

/// Training hyper-parameters shared by CrossEM and CrossEM⁺.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub prompt: PromptKind,
    /// Neighbourhood radius `d` for structure-aware prompts.
    pub hops: usize,
    /// Cap on hard-prompt neighbouring sub-prompts. Star-shaped attribute
    /// graphs tolerate many; KG-shaped graphs (whose neighbours are whole
    /// entities) pollute the prompt quickly, so FB harnesses set this low.
    pub max_subprompts: usize,
    /// Entities per mini-batch (`N1`).
    pub batch_vertices: usize,
    /// Images per mini-batch (`N2`).
    pub batch_images: usize,
    pub epochs: usize,
    pub lr: f32,
    /// Gradient clipping (global L2 norm).
    pub clip_norm: f32,
    /// Soft prompt aggregation weight α (Eq. 6).
    pub alpha: f32,
    /// Loss mixing weight β (Eq. 10); 1.0 disables the orthogonal
    /// constraint entirely.
    pub beta: f32,
    /// Soft prompt aggregator.
    pub soft_backend: SoftBackend,
    /// Prepend `"a photo of"` to textual prompts (matches the pre-training
    /// caption distribution).
    pub photo_prefix: bool,
    /// Maximum token length for textual prompts. Stock CLIP is 77; the
    /// paper extends to 512 during prompt learning.
    pub max_prompt_len: usize,
    /// Which text-side parameters to tune (the image tower and temperature
    /// are always frozen per Sec. II-C).
    pub tune_scope: TuneScope,
    /// Weight of the frozen zero-shot prior added to live scores when
    /// mining pseudo-positives. High values anchor mining to the
    /// pre-trained model (right when names are informative, e.g. FB);
    /// low values let structure-aware prompts override it (right when
    /// names are opaque, e.g. SUN).
    pub mining_prior_weight: f32,
    /// Divergence detection + rollback policy.
    pub guard: GuardConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            prompt: PromptKind::Hard,
            hops: 2,
            max_subprompts: 12,
            batch_vertices: 8,
            batch_images: 32,
            epochs: 3,
            lr: 5e-4,
            clip_norm: 5.0,
            alpha: 0.5,
            beta: 0.8,
            soft_backend: SoftBackend::Gnn,
            photo_prefix: true,
            max_prompt_len: 77,
            tune_scope: TuneScope::Head,
            mining_prior_weight: 0.5,
            guard: GuardConfig::default(),
        }
    }
}

impl TrainConfig {
    pub fn with_prompt(mut self, prompt: PromptKind) -> Self {
        self.prompt = prompt;
        self
    }

    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    pub fn validate(&self) {
        assert!(self.batch_vertices >= 1, "batch_vertices must be positive");
        assert!(self.batch_images >= 2, "need at least 2 images per batch for negatives");
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&self.beta), "beta must be in [0,1]");
        assert!(self.max_prompt_len >= 4, "prompt budget too small");
        self.guard.validate();
    }
}

/// CrossEM⁺ optimisation parameters (Sec. IV).
#[derive(Debug, Clone, Copy)]
pub struct PlusConfig {
    /// Enable PCP mini-batch generation (MBG).
    pub minibatch_generation: bool,
    /// Enable property-based negative sampling (NS).
    pub negative_sampling: bool,
    /// Enable the orthogonal prompt constraint (OPC; only affects the soft
    /// prompt).
    pub orthogonal_constraint: bool,
    /// Number of vertex subsets `k1` (Alg. 2).
    pub vertex_subsets: usize,
    /// Number of image clusters `k2` per vertex subset (Alg. 2).
    pub image_clusters: usize,
    /// Fraction of lowest-proximity images pruned per vertex subset
    /// (the threshold θ of Alg. 2 line 14, expressed as a quantile).
    pub prune_quantile: f32,
    /// Top-k pool for hard negative sampling (Alg. 3 line 9 draws a random
    /// k; this is its upper bound).
    pub negative_top_k: usize,
}

impl Default for PlusConfig {
    fn default() -> Self {
        PlusConfig {
            minibatch_generation: true,
            negative_sampling: true,
            orthogonal_constraint: true,
            vertex_subsets: 4,
            image_clusters: 4,
            prune_quantile: 0.3,
            negative_top_k: 8,
        }
    }
}

impl PlusConfig {
    pub fn without_mbg(mut self) -> Self {
        self.minibatch_generation = false;
        self
    }

    pub fn without_ns(mut self) -> Self {
        self.negative_sampling = false;
        self
    }

    pub fn without_opc(mut self) -> Self {
        self.orthogonal_constraint = false;
        self
    }

    pub fn validate(&self) {
        assert!(self.vertex_subsets >= 1, "need at least one vertex subset");
        assert!(self.image_clusters >= 1, "need at least one image cluster");
        assert!((0.0..1.0).contains(&self.prune_quantile), "prune_quantile in [0,1)");
        assert!(self.negative_top_k >= 1, "negative_top_k must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        TrainConfig::default().validate();
        PlusConfig::default().validate();
    }

    #[test]
    fn builders_set_fields() {
        let c = TrainConfig::default().with_prompt(PromptKind::Soft).with_epochs(9);
        assert_eq!(c.prompt, PromptKind::Soft);
        assert_eq!(c.epochs, 9);
    }

    #[test]
    fn ablation_toggles() {
        let p = PlusConfig::default().without_mbg().without_ns().without_opc();
        assert!(!p.minibatch_generation);
        assert!(!p.negative_sampling);
        assert!(!p.orthogonal_constraint);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let c = TrainConfig { alpha: 1.5, ..TrainConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least 2 images")]
    fn single_image_batch_rejected() {
        let c = TrainConfig { batch_images: 1, ..TrainConfig::default() };
        c.validate();
    }
}
