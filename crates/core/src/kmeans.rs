//! K-means clustering, used by PCP's cluster-based data partition (paper
//! Alg. 2 phase 3).
//!
//! The assignment step (each point independently finds its nearest
//! centroid) is partitioned over the scoped thread pool for large inputs;
//! per-point nearest-centroid search is order-identical to the serial code,
//! so results are bit-identical at every thread count. The centroid update
//! stays serial: it accumulates sums across points, and splitting that
//! would change the f32 summation order.

use cem_tensor::par;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// Cluster centroids, row-major `[k][dim]`.
    pub centroids: Vec<Vec<f32>>,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's algorithm with k-means++-style seeding. `points` are rows of
/// equal dimension. `k` is clamped to the number of points. Deterministic
/// given the RNG.
pub fn kmeans<R: Rng>(points: &[Vec<f32>], k: usize, max_iters: usize, rng: &mut R) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans: no points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "kmeans: ragged points");
    let k = k.min(points.len()).max(1);

    // k-means++ seeding: first centroid uniform, others proportional to
    // squared distance from the nearest chosen centroid.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f32> = points
            .iter()
            .map(|p| centroids.iter().map(|c| sq_dist(p, c)).fold(f32::INFINITY, f32::min))
            .collect();
        let total: f32 = dists.iter().sum();
        if total <= f32::EPSILON {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f32>() * total;
        let mut chosen = points.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            if target <= *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut next = vec![0usize; points.len()];
    let mut iterations = 0usize;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign: each point's nearest centroid is independent, so the
        // assignment scratch is row-partitioned over the thread pool.
        {
            let centroids = &centroids;
            par::par_chunks_mut(
                &mut next,
                1,
                par::auto_threads(points.len() * dim.max(1)),
                |start, block| {
                    for (i, slot) in block.iter_mut().enumerate() {
                        let p = &points[start + i];
                        let mut best = 0usize;
                        let mut best_d = f32::INFINITY;
                        for (c, centroid) in centroids.iter().enumerate() {
                            let d = sq_dist(p, centroid);
                            if d < best_d {
                                best_d = d;
                                best = c;
                            }
                        }
                        *slot = best;
                    }
                },
            );
        }
        let changed = assignments != next;
        assignments.copy_from_slice(&next);
        if !changed && iter > 0 {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                for (dst, s) in centroids[c].iter_mut().zip(sum) {
                    *dst = s / count as f32;
                }
            }
        }
    }

    cem_obs::counter_add!("kmeans.iterations", iterations as u64);
    cem_obs::emit(|| {
        cem_obs::Event::new("kmeans")
            .field("points", points.len() as f64)
            .field("k", k as f64)
            .field("iterations", iterations as f64)
    });
    KMeansResult { assignments, centroids, iterations }
}

/// Group point indices by cluster (clusters may be empty).
pub fn clusters_of(result: &KMeansResult, k: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); k.max(result.centroids.len())];
    for (i, &a) in result.assignments.iter().enumerate() {
        groups[a].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f32, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![10.0 + 0.01 * i as f32, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let pts = two_blobs();
        let result = kmeans(&pts, 2, 50, &mut rng);
        let first = result.assignments[0];
        assert!(result.assignments[..10].iter().all(|&a| a == first));
        assert!(result.assignments[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_clamped_to_point_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = vec![vec![1.0], vec![2.0]];
        let result = kmeans(&pts, 10, 10, &mut rng);
        assert!(result.centroids.len() <= 2);
    }

    #[test]
    fn identical_points_terminate() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = vec![vec![3.0, 3.0]; 8];
        let result = kmeans(&pts, 3, 25, &mut rng);
        assert_eq!(result.assignments.len(), 8);
        assert!(result.iterations <= 25);
    }

    #[test]
    fn clusters_of_partitions_all_points() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = two_blobs();
        let result = kmeans(&pts, 2, 50, &mut rng);
        let groups = clusters_of(&result, 2);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn centroids_land_near_blob_means() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = two_blobs();
        let result = kmeans(&pts, 2, 50, &mut rng);
        let mut xs: Vec<f32> = result.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.045).abs() < 0.5);
        assert!((xs[1] - 10.045).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_input_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        kmeans(&[], 2, 10, &mut rng);
    }
}
