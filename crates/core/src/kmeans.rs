//! K-means clustering, used by PCP's cluster-based data partition (paper
//! Alg. 2 phase 3) and by the serving shard builder (`cem-serve::shard`),
//! which runs it at 100k+ points.
//!
//! The compute core is [`kmeans_flat`], operating on a flat row-major point
//! slice so large callers never materialise `Vec<Vec<f32>>`;
//! [`kmeans`] is a thin compatibility wrapper with the identical arithmetic
//! and RNG call sequence.
//!
//! The assignment step (each point independently finds its nearest
//! centroid) is partitioned over the scoped thread pool for large inputs;
//! per-point nearest-centroid search is order-identical to the serial code,
//! so results are bit-identical at every thread count. The centroid update
//! stays serial: it accumulates sums across points, and splitting that
//! would change the f32 summation order.
//!
//! Two scalability fixes over the original implementation, both exact:
//!
//! * **Incremental k-means++ seeding.** Each seeding round used to
//!   recompute every point's distance to *all* chosen centroids —
//!   O(k²·n·dim) total, prohibitive at shard-builder scale. The per-point
//!   minimum is now maintained incrementally (`min(old, dist-to-newest)`),
//!   which is the same fold over the same `sq_dist` values, so the sampled
//!   seeds are bit-identical while seeding drops to O(k·n·dim).
//! * **Hoisted update buffers.** The per-iteration centroid sum/count
//!   scratch is allocated once and zero-filled per iteration instead of
//!   reallocated inside the loop.

use cem_tensor::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// Cluster centroids, row-major `[k][dim]`.
    pub centroids: Vec<Vec<f32>>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Result of a flat k-means run ([`kmeans_flat`]).
#[derive(Debug, Clone)]
pub struct KMeansFlat {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// Cluster centroids, row-major `[k × dim]`.
    pub centroids: Vec<f32>,
    /// Number of centroids (`k`, after clamping to the point count).
    pub k: usize,
    /// Point dimensionality.
    pub dim: usize,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the centroid nearest to `p` under squared Euclidean distance,
/// scanning centroids in ascending index order with a strict `<` update —
/// ties keep the lowest index. This is the exact assignment rule of the
/// Lloyd iteration, exposed so incremental callers (the serving shard
/// index assigning newly added images) reproduce it bit-for-bit.
pub fn nearest_centroid(p: &[f32], centroids: &[f32], k: usize, dim: usize) -> usize {
    debug_assert_eq!(centroids.len(), k * dim);
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let d = sq_dist(p, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Install `points[idx]` as seeding centroid `slot` and fold it into the
/// per-point min-distance buffer. The fold order (per point, newest
/// centroid last) matches a from-scratch `min` fold over all chosen
/// centroids, so incremental maintenance is bit-identical to recomputing.
fn push_seed(
    points: &[f32],
    dim: usize,
    centroids: &mut [f32],
    dists: &mut [f32],
    slot: usize,
    idx: usize,
) {
    let src = &points[idx * dim..(idx + 1) * dim];
    centroids[slot * dim..(slot + 1) * dim].copy_from_slice(src);
    for (i, d) in dists.iter_mut().enumerate() {
        *d = d.min(sq_dist(&points[i * dim..(i + 1) * dim], src));
    }
}

/// Lloyd's algorithm with k-means++-style seeding over flat row-major
/// points (`points.len() == n · dim`). `k` is clamped to `n`. Deterministic
/// given the RNG; bit-identical at every thread count.
pub fn kmeans_flat<R: Rng>(
    points: &[f32],
    n: usize,
    dim: usize,
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> KMeansFlat {
    assert!(n > 0, "kmeans: no points");
    assert!(dim > 0, "kmeans: zero-dimensional points");
    assert_eq!(points.len(), n * dim, "kmeans: points length != n * dim");
    let k = k.min(n).max(1);
    let row = |i: usize| &points[i * dim..(i + 1) * dim];

    // k-means++ seeding: first centroid uniform, others proportional to
    // squared distance from the nearest chosen centroid. `dists` holds each
    // point's min squared distance to the centroids chosen so far and is
    // folded incrementally as centroids land (same `f32::min` fold, in the
    // same order, as recomputing from scratch each round).
    let mut centroids = vec![0.0f32; k * dim];
    let mut chosen_count = 0usize;
    let mut dists = vec![f32::INFINITY; n];
    let first = rng.gen_range(0..n);
    push_seed(points, dim, &mut centroids, &mut dists, chosen_count, first);
    chosen_count += 1;
    while chosen_count < k {
        let total: f32 = dists.iter().sum();
        if total <= f32::EPSILON {
            // All points coincide with existing centroids; duplicate one.
            let idx = rng.gen_range(0..n);
            push_seed(points, dim, &mut centroids, &mut dists, chosen_count, idx);
            chosen_count += 1;
            continue;
        }
        let mut target = rng.gen::<f32>() * total;
        let mut chosen = n - 1;
        for (i, d) in dists.iter().enumerate() {
            if target <= *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        push_seed(points, dim, &mut centroids, &mut dists, chosen_count, chosen);
        chosen_count += 1;
    }
    drop(dists);

    let mut assignments = vec![0usize; n];
    let mut next = vec![0usize; n];
    let mut sums = vec![0.0f32; k * dim];
    let mut counts = vec![0usize; k];
    let mut iterations = 0usize;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign: each point's nearest centroid is independent, so the
        // assignment scratch is row-partitioned over the thread pool.
        {
            let centroids = &centroids;
            par::par_chunks_mut(&mut next, 1, par::auto_threads(n * dim), |start, block| {
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = nearest_centroid(row(start + i), centroids, k, dim);
                }
            });
        }
        let changed = assignments != next;
        assignments.copy_from_slice(&next);
        if !changed && iter > 0 {
            break;
        }
        // Update (serial; summation order is part of the determinism
        // contract). Scratch is hoisted out of the loop and zeroed here.
        sums.fill(0.0);
        counts.fill(0);
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            for (s, v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(row(i)) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let sum = &sums[c * dim..(c + 1) * dim];
                for (dst, s) in centroids[c * dim..(c + 1) * dim].iter_mut().zip(sum) {
                    *dst = s / count as f32;
                }
            }
        }
    }

    cem_obs::counter_add!("kmeans.iterations", iterations as u64);
    cem_obs::emit(|| {
        cem_obs::Event::new("kmeans")
            .field("points", n as f64)
            .field("k", k as f64)
            .field("iterations", iterations as f64)
    });
    KMeansFlat { assignments, centroids, k, dim, iterations }
}

/// [`kmeans_flat`] seeded from a `u64` via the standard generator, for
/// callers (the serving shard builder) that hold a seed rather than an RNG.
pub fn kmeans_flat_seeded(
    points: &[f32],
    n: usize,
    dim: usize,
    k: usize,
    max_iters: usize,
    seed: u64,
) -> KMeansFlat {
    let mut rng = StdRng::seed_from_u64(seed);
    kmeans_flat(points, n, dim, k, max_iters, &mut rng)
}

/// Lloyd's algorithm with k-means++-style seeding. `points` are rows of
/// equal dimension. `k` is clamped to the number of points. Deterministic
/// given the RNG. Compatibility wrapper over [`kmeans_flat`] — identical
/// arithmetic and RNG call sequence.
pub fn kmeans<R: Rng>(points: &[Vec<f32>], k: usize, max_iters: usize, rng: &mut R) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans: no points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "kmeans: ragged points");
    let mut flat = Vec::with_capacity(points.len() * dim);
    for p in points {
        flat.extend_from_slice(p);
    }
    let result = kmeans_flat(&flat, points.len(), dim, k, max_iters, rng);
    let centroids = (0..result.k).map(|c| result.centroids[c * dim..(c + 1) * dim].to_vec()).collect();
    KMeansResult { assignments: result.assignments, centroids, iterations: result.iterations }
}

/// Group point indices by cluster (clusters may be empty).
pub fn clusters_of(result: &KMeansResult, k: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); k.max(result.centroids.len())];
    for (i, &a) in result.assignments.iter().enumerate() {
        groups[a].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f32, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![10.0 + 0.01 * i as f32, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let pts = two_blobs();
        let result = kmeans(&pts, 2, 50, &mut rng);
        let first = result.assignments[0];
        assert!(result.assignments[..10].iter().all(|&a| a == first));
        assert!(result.assignments[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_clamped_to_point_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = vec![vec![1.0], vec![2.0]];
        let result = kmeans(&pts, 10, 10, &mut rng);
        assert!(result.centroids.len() <= 2);
    }

    #[test]
    fn identical_points_terminate() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = vec![vec![3.0, 3.0]; 8];
        let result = kmeans(&pts, 3, 25, &mut rng);
        assert_eq!(result.assignments.len(), 8);
        assert!(result.iterations <= 25);
    }

    #[test]
    fn clusters_of_partitions_all_points() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = two_blobs();
        let result = kmeans(&pts, 2, 50, &mut rng);
        let groups = clusters_of(&result, 2);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn centroids_land_near_blob_means() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = two_blobs();
        let result = kmeans(&pts, 2, 50, &mut rng);
        let mut xs: Vec<f32> = result.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.045).abs() < 0.5);
        assert!((xs[1] - 10.045).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_input_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        kmeans(&[], 2, 10, &mut rng);
    }

    /// The flat core and the wrapper consume the RNG identically and agree
    /// bit-for-bit — the wrapper is pure plumbing.
    #[test]
    fn flat_and_nested_agree_bitwise() {
        let pts = two_blobs();
        let dim = pts[0].len();
        let flat: Vec<f32> = pts.iter().flat_map(|p| p.iter().copied()).collect();
        for seed in [0u64, 7, 42] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let nested = kmeans(&pts, 3, 25, &mut rng_a);
            let f = kmeans_flat(&flat, pts.len(), dim, 3, 25, &mut rng_b);
            assert_eq!(nested.assignments, f.assignments, "seed {seed}");
            assert_eq!(nested.iterations, f.iterations, "seed {seed}");
            let nested_flat: Vec<u32> =
                nested.centroids.iter().flatten().map(|v| v.to_bits()).collect();
            let flat_bits: Vec<u32> = f.centroids.iter().map(|v| v.to_bits()).collect();
            assert_eq!(nested_flat, flat_bits, "seed {seed}");
        }
    }

    /// Degenerate seeding (all points identical) exercises the
    /// duplicate-centroid branch through the incremental distance fold.
    #[test]
    fn flat_handles_coincident_points() {
        let flat = vec![3.0f32; 8 * 2];
        let result = kmeans_flat_seeded(&flat, 8, 2, 3, 25, 2);
        assert_eq!(result.assignments.len(), 8);
        assert!(result.k <= 3);
    }

    #[test]
    fn nearest_centroid_breaks_ties_low() {
        // Two identical centroids: the strict `<` scan keeps index 0.
        let centroids = vec![1.0f32, 1.0, 1.0, 1.0];
        assert_eq!(nearest_centroid(&[0.0, 0.0], &centroids, 2, 2), 0);
    }

    #[test]
    fn flat_assignments_thread_invariant() {
        let flat: Vec<f32> = (0..64 * 3).map(|i| ((i * 37) % 101) as f32 * 0.1).collect();
        let base = {
            let _g = par::ThreadsGuard::new(1);
            kmeans_flat_seeded(&flat, 64, 3, 5, 20, 9)
        };
        for threads in [2usize, 4] {
            let _g = par::ThreadsGuard::new(threads);
            let got = kmeans_flat_seeded(&flat, 64, 3, 5, 20, 9);
            assert_eq!(base.assignments, got.assignments, "threads={threads}");
            let a: Vec<u32> = base.centroids.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = got.centroids.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }
}
