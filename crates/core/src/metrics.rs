//! Evaluation metrics: Hits@k and Mean Reciprocal Rank over ranked image
//! lists (paper Sec. V-A: "Hits@k (k=1,3,5) and MRR are employed for the
//! accuracy evaluation").

/// Accuracy metrics over a set of queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub hits_at_1: f32,
    pub hits_at_3: f32,
    pub hits_at_5: f32,
    pub mrr: f32,
    pub queries: usize,
}

impl Metrics {
    /// Hits@k for the three standard cutoffs; `None` for any other `k`
    /// (only k ∈ {1,3,5} are tracked).
    pub fn hits(&self, k: usize) -> Option<f32> {
        match k {
            1 => Some(self.hits_at_1),
            3 => Some(self.hits_at_3),
            5 => Some(self.hits_at_5),
            _ => None,
        }
    }

    /// Render as a paper-style table row (percentages + MRR).
    pub fn row(&self) -> String {
        format!(
            "H@1 {:5.2}  H@3 {:5.2}  H@5 {:5.2}  MRR {:.2}",
            self.hits_at_1 * 100.0,
            self.hits_at_3 * 100.0,
            self.hits_at_5 * 100.0,
            self.mrr
        )
    }
}

/// Evaluate ranked image lists against gold sets.
///
/// `rankings[q]` is the list of image indices for query `q`, best first
/// (it may be a truncated top-k list, as long as it is at least 5 deep or
/// exhausts the repository). `is_gold(q, image)` defines relevance. The rank
/// of the *first* relevant image drives both metrics, the standard protocol
/// when an entity has several gold images.
pub fn evaluate_rankings(
    rankings: &[Vec<usize>],
    mut is_gold: impl FnMut(usize, usize) -> bool,
) -> Metrics {
    assert!(!rankings.is_empty(), "no queries to evaluate");
    let mut h1 = 0usize;
    let mut h3 = 0usize;
    let mut h5 = 0usize;
    let mut rr_sum = 0.0f64;
    for (q, ranking) in rankings.iter().enumerate() {
        let first_hit = ranking.iter().position(|&img| is_gold(q, img));
        if let Some(rank0) = first_hit {
            let rank = rank0 + 1;
            if rank <= 1 {
                h1 += 1;
            }
            if rank <= 3 {
                h3 += 1;
            }
            if rank <= 5 {
                h5 += 1;
            }
            rr_sum += 1.0 / rank as f64;
        }
    }
    let n = rankings.len() as f32;
    Metrics {
        hits_at_1: h1 as f32 / n,
        hits_at_3: h3 as f32 / n,
        hits_at_5: h5 as f32 / n,
        mrr: (rr_sum / rankings.len() as f64) as f32,
        queries: rankings.len(),
    }
}

/// A bootstrap confidence interval for MRR over queries.
#[derive(Debug, Clone, Copy)]
pub struct ConfidenceInterval {
    pub mean: f32,
    pub lo: f32,
    pub hi: f32,
    pub resamples: usize,
}

/// Percentile-bootstrap CI of the MRR. Resamples queries with replacement
/// `resamples` times; `level` is the two-sided confidence level (e.g. 0.95).
/// Useful because the harness scales are small enough that single-run
/// differences of a few points can be noise — the harness can report the CI
/// alongside the point estimate.
pub fn bootstrap_mrr_ci<R: rand::Rng>(
    rankings: &[Vec<usize>],
    mut is_gold: impl FnMut(usize, usize) -> bool,
    resamples: usize,
    level: f32,
    rng: &mut R,
) -> ConfidenceInterval {
    assert!(!rankings.is_empty(), "no queries");
    assert!((0.0..1.0).contains(&level) || level == 0.0 || level < 1.0, "level in (0,1)");
    assert!(resamples >= 10, "too few resamples for a CI");
    // Per-query reciprocal ranks, computed once.
    let rr: Vec<f32> = rankings
        .iter()
        .enumerate()
        .map(|(q, ranking)| {
            ranking
                .iter()
                .position(|&img| is_gold(q, img))
                .map(|r| 1.0 / (r + 1) as f32)
                .unwrap_or(0.0)
        })
        .collect();
    let n = rr.len();
    let mean = rr.iter().sum::<f32>() / n as f32;
    let mut means: Vec<f32> = (0..resamples)
        .map(|_| {
            let mut total = 0.0f32;
            for _ in 0..n {
                total += rr[rng.gen_range(0..n)];
            }
            total / n as f32
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f32) * alpha) as usize;
    let hi_idx = (((resamples as f32) * (1.0 - alpha)) as usize).min(resamples - 1);
    ConfidenceInterval { mean, lo: means[lo_idx], hi: means[hi_idx], resamples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_rankings() {
        let rankings = vec![vec![0, 1, 2], vec![1, 0, 2]];
        let m = evaluate_rankings(&rankings, |q, img| (q == 0 && img == 0) || (q == 1 && img == 1));
        assert_eq!(m.hits_at_1, 1.0);
        assert_eq!(m.hits_at_3, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.queries, 2);
    }

    #[test]
    fn rank_three_hit() {
        let rankings = vec![vec![5, 6, 7, 8, 9]];
        let m = evaluate_rankings(&rankings, |_, img| img == 7);
        assert_eq!(m.hits_at_1, 0.0);
        assert_eq!(m.hits_at_3, 1.0);
        assert_eq!(m.hits_at_5, 1.0);
        assert!((m.mrr - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn miss_contributes_zero() {
        let rankings = vec![vec![1, 2], vec![3, 4]];
        let m = evaluate_rankings(&rankings, |q, img| q == 0 && img == 1);
        assert_eq!(m.hits_at_1, 0.5);
        assert_eq!(m.mrr, 0.5);
    }

    #[test]
    fn first_relevant_drives_metrics_with_multiple_golds() {
        let rankings = vec![vec![9, 4, 7]];
        // Both 4 and 7 are gold; rank of first (2) counts.
        let m = evaluate_rankings(&rankings, |_, img| img == 4 || img == 7);
        assert!((m.mrr - 0.5).abs() < 1e-6);
        assert_eq!(m.hits_at_3, 1.0);
    }

    #[test]
    fn hits_covers_tracked_cutoffs_only() {
        let m = Metrics { hits_at_1: 0.1, hits_at_3: 0.3, hits_at_5: 0.5, mrr: 0.2, queries: 10 };
        assert_eq!(m.hits(1), Some(0.1));
        assert_eq!(m.hits(3), Some(0.3));
        assert_eq!(m.hits(5), Some(0.5));
        assert_eq!(m.hits(2), None);
        assert_eq!(m.hits(10), None);
    }

    #[test]
    fn row_renders_percentages() {
        let m = Metrics { hits_at_1: 0.82, hits_at_3: 0.94, hits_at_5: 0.96, mrr: 0.86, queries: 50 };
        let row = m.row();
        assert!(row.contains("82.00"));
        assert!(row.contains("0.86"));
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_rankings_panic() {
        evaluate_rankings(&[], |_, _| false);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let rankings: Vec<Vec<usize>> = (0..20).map(|_| (0..10).collect()).collect();
        // Half the queries hit at rank 1, half at rank 2.
        let mut rng = StdRng::seed_from_u64(0);
        let ci = bootstrap_mrr_ci(&rankings, |q, img| img == (q % 2), 500, 0.95, &mut rng);
        assert!((ci.mean - 0.75).abs() < 1e-5);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.hi - ci.lo < 0.3, "CI implausibly wide: {ci:?}");
        assert_eq!(ci.resamples, 500);
    }

    #[test]
    fn bootstrap_ci_degenerate_when_all_queries_identical() {
        let rankings: Vec<Vec<usize>> = (0..8).map(|_| vec![0, 1]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let ci = bootstrap_mrr_ci(&rankings, |_, img| img == 0, 100, 0.9, &mut rng);
        assert_eq!(ci.mean, 1.0);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }
}
