//! Durable training state: rotating atomic checkpoints and bit-faithful
//! resume.
//!
//! A checkpoint captures everything Algorithm 1/2/3 need to continue as if
//! the process had never died: the trainable parameter values, the AdamW
//! first/second moments and step count, the number of completed epochs,
//! the run seed that derives each epoch's shuffling RNG, and a fingerprint
//! of the training configuration (so a checkpoint is never silently
//! applied to a different run shape).
//!
//! [`CheckpointManager`] keeps a rotating `latest`/`prev` pair in one
//! directory. Saves go through the CEMT v2 atomic write path (temp file +
//! fsync + rename), and the previous checkpoint is only displaced *after*
//! the new one is durable — a crash at any instant leaves at least one
//! loadable checkpoint on disk. Loads verify CRCs and fall back from a
//! damaged `latest` to `prev` automatically.

use std::fmt;
use std::path::{Path, PathBuf};

use cem_tensor::io::{CheckpointError, StateDict};
use cem_tensor::optim::AdamW;
use cem_tensor::Tensor;

use crate::config::{PlusConfig, TrainConfig};

/// Schema version of the training-state layout inside the CEMT container.
pub const TRAIN_STATE_SCHEMA: u64 = 1;

/// Why a checkpoint could not be applied to a live trainer.
#[derive(Debug)]
pub enum ResumeError {
    /// The container itself failed to read or write.
    Checkpoint(CheckpointError),
    /// The checkpoint was produced by a different training configuration.
    FingerprintMismatch { expected: u64, found: u64 },
    /// The checkpoint lacks a required entry or metadata key.
    MissingEntry(String),
    /// The checkpoint stores a different number of trainable parameters.
    ParamCount { expected: usize, found: usize },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "{e}"),
            ResumeError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint config fingerprint {found:#018x} does not match this run ({expected:#018x})"
            ),
            ResumeError::MissingEntry(name) => {
                write!(f, "checkpoint is missing required entry {name:?}")
            }
            ResumeError::ParamCount { expected, found } => write!(
                f,
                "checkpoint stores {found} trainable parameters, this run has {expected}"
            ),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// FNV-1a over the debug rendering of the training configuration. Stable
/// within a build, cheap, and sensitive to every field — good enough to
/// stop a checkpoint from one run shape being applied to another.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fingerprint for a plain CrossEM run.
pub fn config_fingerprint(config: &TrainConfig) -> u64 {
    fingerprint_bytes(format!("{config:?}").as_bytes())
}

/// Fingerprint for a CrossEM⁺ run (covers both config halves).
pub fn plus_fingerprint(config: &TrainConfig, plus: &PlusConfig) -> u64 {
    fingerprint_bytes(format!("{config:?}|{plus:?}").as_bytes())
}

/// Which of the rotating pair a resume came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeSource {
    Latest,
    Previous,
}

/// Rotating `latest`/`prev` checkpoint pair in one directory.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
}

impl CheckpointManager {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointManager { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("ckpt-latest.cemt")
    }

    pub fn prev_path(&self) -> PathBuf {
        self.dir.join("ckpt-prev.cemt")
    }

    /// Durably store `dict` as the new `latest`, demoting the current
    /// `latest` to `prev`. Ordering guarantees a crash anywhere in this
    /// sequence leaves at least one complete, loadable checkpoint:
    /// the incoming file becomes durable (fsync) before any rename, and
    /// the old `latest` is preserved as `prev` before being displaced.
    pub fn save(&self, dict: &StateDict) -> Result<(), CheckpointError> {
        cem_obs::span!("checkpoint.save");
        let incoming = self.dir.join("ckpt-incoming.cemt");
        dict.save(&incoming)?; // temp file + fsync + atomic rename inside
        let latest = self.latest_path();
        if latest.exists() {
            std::fs::rename(&latest, self.prev_path())?;
        }
        std::fs::rename(&incoming, &latest)?;
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        cem_obs::emit(|| {
            cem_obs::Event::new("checkpoint_save")
                .field("path", self.latest_path().display().to_string())
        });
        Ok(())
    }

    /// Load the freshest intact checkpoint. Returns `Ok(None)` when the
    /// directory holds no checkpoint at all (fresh start); falls back from
    /// a corrupt/truncated `latest` to `prev`; only errors when every
    /// candidate on disk is damaged — never panics on bad bytes.
    pub fn load(&self) -> Result<Option<(StateDict, ResumeSource)>, CheckpointError> {
        cem_obs::span!("checkpoint.load");
        let mut first_error: Option<CheckpointError> = None;
        for (path, source) in
            [(self.latest_path(), ResumeSource::Latest), (self.prev_path(), ResumeSource::Previous)]
        {
            if !path.exists() {
                continue;
            }
            match StateDict::load(&path) {
                Ok(dict) => {
                    cem_obs::emit(|| {
                        cem_obs::Event::new("checkpoint_load")
                            .field("path", path.display().to_string())
                            .field("source", format!("{source:?}").to_ascii_lowercase())
                    });
                    return Ok(Some((dict, source)));
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Load exactly one of the rotating pair, with **no** fallback: a
    /// damaged file is an error even when its sibling is intact. Generation
    /// hot-swap uses this to distinguish "the incoming generation is
    /// corrupt" (reject, keep serving the old one) from "fall back to
    /// whatever loads" (the resume path above).
    pub fn load_source(
        &self,
        source: ResumeSource,
    ) -> Result<Option<StateDict>, CheckpointError> {
        let path = match source {
            ResumeSource::Latest => self.latest_path(),
            ResumeSource::Previous => self.prev_path(),
        };
        if !path.exists() {
            return Ok(None);
        }
        StateDict::load(&path).map(Some)
    }
}

/// Metadata key under which rotating artefact stores (checkpoints, serving
/// indexes) record their monotonic generation number.
pub const GENERATION_KEY: &str = "generation";

/// Stamp `dict` with a monotonic generation number. Consumers that rotate
/// artefacts through a [`CheckpointManager`] use this to tell a freshly
/// promoted generation from the one it displaced.
pub fn stamp_generation(dict: &mut StateDict, generation: u64) {
    dict.insert_meta(GENERATION_KEY, generation);
}

/// The generation number stamped on `dict`, if any.
pub fn generation_of(dict: &StateDict) -> Option<u64> {
    dict.meta(GENERATION_KEY)
}

/// Metadata key under which a checkpoint that carries serving-shard
/// sections records the shard layout schema version. Absence means the
/// checkpoint has no shard sections (pre-shard generations stay loadable).
pub const SHARD_SCHEMA_KEY: &str = "shard.schema";

/// Entry/meta key for field `field` of shard `shard` inside a CEMT
/// checkpoint — the one naming rule shared by the shard writer
/// (`cem-serve::shard`) and any tooling that inspects shard sections.
pub fn shard_entry_key(shard: usize, field: &str) -> String {
    format!("shard.{shard}.{field}")
}

/// Stamp `dict` as carrying shard sections of layout version `schema`.
pub fn stamp_shard_schema(dict: &mut StateDict, schema: u64) {
    dict.insert_meta(SHARD_SCHEMA_KEY, schema);
}

/// The shard layout schema version of `dict`, if it carries shard sections.
pub fn shard_schema_of(dict: &StateDict) -> Option<u64> {
    dict.meta(SHARD_SCHEMA_KEY)
}

/// Resume cursor decoded from a checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct ResumeState {
    /// Epochs fully completed before the snapshot (training continues at
    /// this epoch index).
    pub epochs_done: usize,
    /// The run seed that derives every epoch's shuffling RNG.
    pub seed: u64,
}

/// Encode the full training state into one [`StateDict`]: parameters as
/// `param.{i}`, optimiser state under `optim.`, bookkeeping in metadata.
pub fn encode_train_state(
    params: &[Tensor],
    opt: &AdamW,
    epochs_done: usize,
    seed: u64,
    fingerprint: u64,
) -> StateDict {
    let mut dict = StateDict::new();
    for (i, p) in params.iter().enumerate() {
        dict.insert(format!("param.{i}"), p.detach());
    }
    let opt_state = opt.state_dict();
    for (name, tensor) in opt_state.iter() {
        dict.insert(format!("optim.{name}"), tensor.clone());
    }
    for (name, value) in opt_state.meta_iter() {
        dict.insert_meta(format!("optim.{name}"), value);
    }
    dict.insert_meta("schema", TRAIN_STATE_SCHEMA);
    dict.insert_meta("param_count", params.len() as u64);
    dict.insert_meta("epochs_done", epochs_done as u64);
    dict.insert_meta("seed", seed);
    dict.insert_meta("fingerprint", fingerprint);
    dict
}

/// Apply a checkpoint produced by [`encode_train_state`] onto live
/// parameters and optimiser, verifying the config fingerprint and every
/// shape. Returns the resume cursor.
pub fn apply_train_state(
    dict: &StateDict,
    params: &[Tensor],
    opt: &mut AdamW,
    fingerprint: u64,
) -> Result<ResumeState, ResumeError> {
    let meta = |name: &str| dict.meta(name).ok_or_else(|| ResumeError::MissingEntry(name.into()));
    let found_fp = meta("fingerprint")?;
    if found_fp != fingerprint {
        return Err(ResumeError::FingerprintMismatch { expected: fingerprint, found: found_fp });
    }
    let stored_params = meta("param_count")? as usize;
    if stored_params != params.len() {
        return Err(ResumeError::ParamCount { expected: params.len(), found: stored_params });
    }
    for (i, p) in params.iter().enumerate() {
        let key = format!("param.{i}");
        let saved = dict.get(&key).ok_or_else(|| ResumeError::MissingEntry(key.clone()))?;
        if saved.numel() != p.numel() {
            return Err(ResumeError::Checkpoint(CheckpointError::ShapeMismatch {
                name: key,
                expected: p.dims().to_vec(),
                found: saved.dims().to_vec(),
            }));
        }
        p.copy_from_slice(&saved.to_vec());
    }
    let mut opt_state = StateDict::new();
    for (name, tensor) in dict.iter() {
        if let Some(stripped) = name.strip_prefix("optim.") {
            opt_state.insert(stripped, tensor.clone());
        }
    }
    for (name, value) in dict.meta_iter() {
        if let Some(stripped) = name.strip_prefix("optim.") {
            opt_state.insert_meta(stripped, value);
        }
    }
    opt.load_state_dict(&opt_state)?;
    Ok(ResumeState { epochs_done: meta("epochs_done")? as usize, seed: meta("seed")? })
}

/// SplitMix64 — derives statistically independent per-epoch seeds from one
/// run seed so a resumed run replays exactly the shuffles the uninterrupted
/// run would have used, without serialising RNG internals.
pub fn derive_seed(run_seed: u64, stream: u64) -> u64 {
    let mut z = run_seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cem_tensor::optim::Optimizer;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cem_ckpt_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn step_once(opt: &mut AdamW, params: &[Tensor]) {
        opt.zero_grad();
        let loss = params[0].add_scalar(-1.0).square().sum();
        loss.backward();
        opt.step();
    }

    #[test]
    fn rotation_keeps_latest_and_prev() {
        let dir = tmp_dir("rotate");
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load().unwrap().is_none());

        let mut a = StateDict::new();
        a.insert_meta("gen", 1);
        mgr.save(&a).unwrap();
        let mut b = StateDict::new();
        b.insert_meta("gen", 2);
        mgr.save(&b).unwrap();

        let (latest, source) = mgr.load().unwrap().unwrap();
        assert_eq!(source, ResumeSource::Latest);
        assert_eq!(latest.meta("gen"), Some(2));
        let prev = StateDict::load(mgr.prev_path()).unwrap();
        assert_eq!(prev.meta("gen"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_falls_back_to_prev() {
        let dir = tmp_dir("fallback");
        let mgr = CheckpointManager::new(&dir).unwrap();
        let mut a = StateDict::new();
        a.insert_meta("gen", 1);
        mgr.save(&a).unwrap();
        let mut b = StateDict::new();
        b.insert_meta("gen", 2);
        mgr.save(&b).unwrap();

        // Simulate a torn write: truncate the latest checkpoint.
        let bytes = std::fs::read(mgr.latest_path()).unwrap();
        std::fs::write(mgr.latest_path(), &bytes[..bytes.len() / 2]).unwrap();

        let (dict, source) = mgr.load().unwrap().unwrap();
        assert_eq!(source, ResumeSource::Previous);
        assert_eq!(dict.meta("gen"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_source_is_strict_about_its_file() {
        let dir = tmp_dir("strict");
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load_source(ResumeSource::Latest).unwrap().is_none());

        let mut a = StateDict::new();
        stamp_generation(&mut a, 1);
        mgr.save(&a).unwrap();
        let mut b = StateDict::new();
        stamp_generation(&mut b, 2);
        mgr.save(&b).unwrap();

        let latest = mgr.load_source(ResumeSource::Latest).unwrap().unwrap();
        assert_eq!(generation_of(&latest), Some(2));
        let prev = mgr.load_source(ResumeSource::Previous).unwrap().unwrap();
        assert_eq!(generation_of(&prev), Some(1));

        // Unlike load(), a damaged latest is an error — never a silent
        // fallback to prev.
        let bytes = std::fs::read(mgr.latest_path()).unwrap();
        std::fs::write(mgr.latest_path(), &bytes[..bytes.len() / 2]).unwrap();
        assert!(mgr.load_source(ResumeSource::Latest).is_err());
        assert!(mgr.load_source(ResumeSource::Previous).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn both_damaged_is_a_typed_error() {
        let dir = tmp_dir("bothbad");
        let mgr = CheckpointManager::new(&dir).unwrap();
        let mut a = StateDict::new();
        a.insert_meta("gen", 1);
        mgr.save(&a).unwrap();
        mgr.save(&a).unwrap();
        std::fs::write(mgr.latest_path(), b"CEMTgarbage").unwrap();
        std::fs::write(mgr.prev_path(), b"not even magic").unwrap();
        assert!(mgr.load().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_state_roundtrip_restores_everything() {
        let p = Tensor::from_vec(vec![0.0, 0.0], &[2]).requires_grad();
        let params = vec![p.clone()];
        let mut opt = AdamW::new(params.clone(), 0.05);
        for _ in 0..7 {
            step_once(&mut opt, &params);
        }
        let fp = config_fingerprint(&TrainConfig::default());
        let dict = encode_train_state(&params, &opt, 3, 42, fp);

        let q = Tensor::from_vec(vec![9.0, 9.0], &[2]).requires_grad();
        let params2 = vec![q.clone()];
        let mut opt2 = AdamW::new(params2.clone(), 0.05);
        let resume = apply_train_state(&dict, &params2, &mut opt2, fp).unwrap();
        assert_eq!(resume.epochs_done, 3);
        assert_eq!(resume.seed, 42);
        assert_eq!(q.to_vec(), p.to_vec());

        // Continuing both optimisers stays in lockstep (moments restored).
        step_once(&mut opt, &params);
        step_once(&mut opt2, &params2);
        assert_eq!(p.to_vec(), q.to_vec());
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let p = Tensor::zeros(&[1]).requires_grad();
        let params = vec![p.clone()];
        let mut opt = AdamW::new(params.clone(), 0.05);
        let dict = encode_train_state(&params, &opt, 0, 0, 1);
        let err = apply_train_state(&dict, &params, &mut opt, 2).unwrap_err();
        assert!(matches!(err, ResumeError::FingerprintMismatch { .. }), "{err}");
    }

    #[test]
    fn fingerprints_differ_across_configs() {
        let a = TrainConfig::default();
        let b = TrainConfig { lr: 1e-3, ..TrainConfig::default() };
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let s = 0xDEADBEEF;
        let seeds: Vec<u64> = (0..32).map(|e| derive_seed(s, e)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
