//! # crossem
//!
//! The paper's primary contribution: **CrossEM**, a prompt-tuning framework
//! for cross-modal entity matching, and **CrossEM⁺**, its improved matching
//! framework for large heterogeneous data.
//!
//! Given a graph `G = (V, E, L)` (obtained from a data lake by the mapping
//! in [`cem_graph`]) and an image repository `I`, the task is to find
//! matching pairs between vertices and images (paper Def. 2). CrossEM
//! addresses it by prompt-tuning a pre-trained CLIP-style dual encoder in an
//! unsupervised manner:
//!
//! * [`prompt::baseline`] — the naive `"a photo of [MASK]"` prompt
//!   (Sec. II-B baseline).
//! * [`prompt::hard`] — discrete hard-encoding prompts `f_pro^h` (Eq. 5):
//!   d-hop subgraph serialised through a concatenation template.
//! * [`prompt::soft`] — continuous soft prompts `f_pro^s` (Eq. 6–7):
//!   GNN/GraphSAGE-aggregated structural features spliced into the text
//!   encoder input.
//! * [`loss`] — the unsupervised contrastive objective (Eq. 2–3) and the
//!   orthogonal prompt constraint (Eq. 9–10).
//! * [`matcher`] — matching probabilities (Eq. 4), ranking, and the
//!   matching-set extraction.
//! * [`trainer`] — Algorithm 1 (CrossEM training loop).
//! * [`plus`] — CrossEM⁺: PCP mini-batch generation (Alg. 2),
//!   property-based negative sampling (Alg. 3), and the orthogonal prompt
//!   constraint wired into training.
//! * [`metrics`] — Hits@k and MRR evaluation.

pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod guard;
pub mod kmeans;
pub mod loss;
pub mod matcher;
pub mod metrics;
pub mod plus;
pub mod prompt;
pub mod trainer;

pub use cache::FeatureCache;
pub use checkpoint::{
    generation_of, stamp_generation, CheckpointManager, ResumeError, ResumeSource,
};
pub use config::{GuardConfig, PromptKind, TrainConfig};
pub use guard::{DivergenceGuard, EpochAction, FaultInjector, GuardVerdict};
pub use matcher::{rank_images, rank_row, score_cmp, MatchingSet};
pub use metrics::{evaluate_rankings, Metrics};
pub use trainer::{CrossEm, EpochStats, TrainOptions, TrainReport};
