//! Training objectives.
//!
//! * [`unsupervised_contrastive_loss`] — the paper's Eq. 2–3. Cross-modal
//!   EM has no labels, so the positive set `X_p` is "collected from the
//!   pairs with top similarity" (Sec. II-B): for every vertex the current
//!   best-matching image in the batch acts as its positive, and vice versa
//!   (symmetric InfoNCE with self-generated targets). Prompt structure makes
//!   those pseudo-positives better than the raw baseline's, which is what
//!   lets tuning improve on zero-shot CLIP.
//! * [`orthogonal_loss`] — the orthogonal prompt constraint of Eq. 9.
//! * [`combined_loss`] — Eq. 10: `β·L_con + (1−β)·L_o`.

use cem_tensor::{no_grad, Tensor};

/// Symmetric contrastive loss over a batch similarity matrix
/// (`logits = τ·cos(text, image)`, shape `[N1, N2]`) with *given*
/// vertex-side pseudo-positive targets (mined globally by the trainer —
/// the "pairs with top similarity" of Sec. II-B). The image-side direction
/// uses in-batch top-similarity targets, computed without gradient.
pub fn unsupervised_contrastive_loss(logits: &Tensor, vertex_targets: &[usize]) -> Tensor {
    let (n1, n2) = logits.shape().as_matrix();
    assert!(n1 >= 1 && n2 >= 2, "contrastive batch needs at least 2 images");
    assert_eq!(vertex_targets.len(), n1, "one pseudo-positive per vertex expected");
    let targets_i = no_grad(|| logits.transpose().argmax_rows());
    let loss_v = logits.cross_entropy_rows(vertex_targets);
    let loss_i = logits.transpose().cross_entropy_rows(&targets_i);
    loss_v.add(&loss_i).mul_scalar(0.5)
}

/// Batch-local variant (both directions use in-batch argmax targets) —
/// retained for components without access to global image embeddings.
pub fn batch_local_contrastive_loss(logits: &Tensor) -> Tensor {
    let targets_v = no_grad(|| logits.argmax_rows());
    unsupervised_contrastive_loss(logits, &targets_v)
}

/// Supervised variant used by baselines with labels (e.g. GPPT): targets
/// are given.
pub fn supervised_contrastive_loss(logits: &Tensor, targets: &[usize]) -> Tensor {
    logits.cross_entropy_rows(targets)
}

/// Eq. 9: `‖F·Fᵀ − I‖_F1` over a stacked prompt matrix `F ∈ [B, d]`.
/// Rows are L2-normalised first so the diagonal is exactly 1 and the
/// constraint purely penalises cross-prompt alignment.
pub fn orthogonal_loss(prompts: &Tensor) -> Tensor {
    let (b, _) = prompts.shape().as_matrix();
    let normed = prompts.l2_normalize_rows();
    let gram = normed.matmul_nt(&normed); // [B, B]
    gram.sub(&Tensor::eye(b)).abs().sum().mul_scalar(1.0 / (b * b) as f32)
}

/// Eq. 10: `β·L_con + (1−β)·L_o`. Pass `None` for `l_o` when the prompt
/// kind has no constraint (hard/baseline) — then `L = L_con` regardless of β.
pub fn combined_loss(l_con: Tensor, l_o: Option<Tensor>, beta: f32) -> Tensor {
    match l_o {
        Some(lo) => l_con.mul_scalar(beta).add(&lo.mul_scalar(1.0 - beta)),
        None => l_con,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrastive_sharpens_confident_matches() {
        // Logits where vertex 0 prefers image 1, vertex 1 prefers image 0.
        let logits = Tensor::from_vec(vec![0.1, 2.0, 0.0, 3.0, 0.2, 0.1], &[2, 3]).requires_grad();
        let loss = batch_local_contrastive_loss(&logits);
        assert!(loss.item() > 0.0);
        loss.backward();
        let g = logits.grad().unwrap();
        // Gradient pushes the chosen entries up (negative gradient).
        assert!(g[1] < 0.0, "pseudo-positive (0,1) should be reinforced");
        assert!(g[3] < 0.0, "pseudo-positive (1,0) should be reinforced");
    }

    #[test]
    fn contrastive_loss_shrinks_with_confidence() {
        let soft = Tensor::from_vec(vec![0.1, 0.2, 0.2, 0.1], &[2, 2]);
        let sharp = Tensor::from_vec(vec![5.0, -5.0, -5.0, 5.0], &[2, 2]);
        assert!(
            batch_local_contrastive_loss(&sharp).item()
                < batch_local_contrastive_loss(&soft).item()
        );
    }

    #[test]
    fn supervised_variant_uses_given_targets() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let right = supervised_contrastive_loss(&logits, &[0, 1]).item();
        let wrong = supervised_contrastive_loss(&logits, &[1, 0]).item();
        assert!(right < wrong);
    }

    #[test]
    fn orthogonal_loss_zero_for_orthonormal_rows() {
        let prompts = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert!(orthogonal_loss(&prompts).item() < 1e-5);
    }

    #[test]
    fn orthogonal_loss_penalises_aligned_rows() {
        let aligned = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let orthogonal = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert!(orthogonal_loss(&aligned).item() > orthogonal_loss(&orthogonal).item());
    }

    #[test]
    fn orthogonal_loss_is_scale_invariant_via_normalisation() {
        let a = Tensor::from_vec(vec![1.0, 0.2, 0.2, 1.0], &[2, 2]);
        let b = a.mul_scalar(10.0);
        assert!((orthogonal_loss(&a).item() - orthogonal_loss(&b).item()).abs() < 1e-5);
    }

    #[test]
    fn combined_loss_mixes_by_beta() {
        let lc = Tensor::scalar(2.0);
        let lo = Tensor::scalar(4.0);
        let mixed = combined_loss(lc.clone(), Some(lo), 0.75).item();
        assert!((mixed - (0.75 * 2.0 + 0.25 * 4.0)).abs() < 1e-6);
        let without = combined_loss(lc, None, 0.75).item();
        assert!((without - 2.0).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_loss_gradient_flows() {
        let prompts =
            Tensor::from_vec(vec![1.0, 0.5, 0.8, 0.7, 0.2, 0.9], &[2, 3]).requires_grad();
        orthogonal_loss(&prompts).backward();
        assert!(prompts.grad().is_some());
    }
}
