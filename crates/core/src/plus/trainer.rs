//! The CrossEM⁺ training loop: Algorithm 1 with PCP partitions, hard
//! negative sampling, and the orthogonal prompt constraint.

use std::rc::Rc;
use std::time::Instant;

use cem_clip::{Clip, Tokenizer};
use cem_data::EmDataset;
use cem_obs::{cem_debug, cem_info, Event};
use cem_tensor::memory;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cache::FeatureCache;
use crate::checkpoint::{derive_seed, encode_train_state, plus_fingerprint, ResumeError};
use crate::config::{PlusConfig, TrainConfig};
use crate::guard::EpochAction;
use crate::metrics::Metrics;
use crate::plus::minibatch::{partition_by_proximity, random_partitions, Partition};
use crate::plus::negsample::negative_sampling;
use crate::trainer::{
    epoch_end_event, reset_identity, CrossEm, EpochStats, TrainEngine, TrainOptions, TrainReport,
};

/// RNG stream index reserved for partition preparation; epoch shuffles use
/// the epoch number, which never reaches `u64::MAX`.
const PREP_STREAM: u64 = u64::MAX;

/// Training outcome including the one-time preprocessing cost.
#[derive(Debug, Clone)]
pub struct PlusReport {
    pub train: TrainReport,
    /// Seconds spent in mini-batch generation + negative sampling.
    pub prep_seconds: f64,
    /// Candidate pairs per epoch after pruning (vs. `|V|·|I|` for plain
    /// CrossEM) — the quantity behind the paper's complexity claim.
    pub pairs_per_epoch: usize,
    pub partitions: usize,
}

/// CrossEM⁺: wraps the base matcher with the Sec. IV optimisations.
pub struct CrossEmPlus<'a> {
    base: CrossEm<'a>,
    plus: PlusConfig,
    /// Frozen-feature/proximity cache: partition preparation reads from it
    /// instead of re-encoding every vertex and patch on each call. Shareable
    /// across trainers over the same pre-trained model (see
    /// [`FeatureCache`]).
    cache: Rc<FeatureCache>,
}

impl<'a> CrossEmPlus<'a> {
    pub fn new<R: Rng>(
        clip: &'a Clip,
        tokenizer: &'a Tokenizer,
        dataset: &'a EmDataset,
        config: TrainConfig,
        plus: PlusConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_feature_cache(
            clip,
            tokenizer,
            dataset,
            config,
            plus,
            Rc::new(FeatureCache::new()),
            rng,
        )
    }

    /// Like [`CrossEmPlus::new`] but reusing an external feature cache, so
    /// repeated runs (epoch restarts, ablation sweeps over the same frozen
    /// model) skip the phase-1 encoder passes entirely.
    pub fn with_feature_cache<R: Rng>(
        clip: &'a Clip,
        tokenizer: &'a Tokenizer,
        dataset: &'a EmDataset,
        config: TrainConfig,
        plus: PlusConfig,
        cache: Rc<FeatureCache>,
        rng: &mut R,
    ) -> Self {
        plus.validate();
        let mut base = CrossEm::new(clip, tokenizer, dataset, config, rng);
        base.orthogonal = plus.orthogonal_constraint;
        CrossEmPlus { base, plus, cache }
    }

    pub fn base(&self) -> &CrossEm<'a> {
        &self.base
    }

    pub fn plus_config(&self) -> &PlusConfig {
        &self.plus
    }

    /// The feature cache backing partition preparation.
    pub fn feature_cache(&self) -> &Rc<FeatureCache> {
        &self.cache
    }

    /// Build the training partitions according to the enabled
    /// optimisations. Returns the partitions and the proximity matrix (if
    /// it was needed).
    fn prepare_partitions<R: Rng>(&self, rng: &mut R) -> Vec<Partition> {
        let dataset = self.base.dataset();
        let needs_proximity = self.plus.minibatch_generation || self.plus.negative_sampling;
        let proximity = if needs_proximity {
            cem_obs::span!("prep.proximity");
            Some(self.cache.proximity(
                self.base.clip(),
                self.base.tokenizer(),
                dataset,
                self.base.config().hops,
            ))
        } else {
            None
        };

        let mut partitions = {
            cem_obs::span!("prep.partition");
            if self.plus.minibatch_generation {
                partition_by_proximity(proximity.as_ref().unwrap(), &self.plus, rng).partitions
            } else {
                random_partitions(dataset.entity_count(), dataset.image_count(), &self.plus, rng)
            }
        };

        if self.plus.negative_sampling {
            cem_obs::span!("prep.negsample");
            negative_sampling(
                &mut partitions,
                proximity.as_ref().unwrap(),
                self.base.config().batch_images,
                self.plus.negative_top_k,
                rng,
            );
        }
        partitions
    }

    /// Run the CrossEM⁺ training loop.
    pub fn train<R: Rng>(&self, rng: &mut R) -> PlusReport {
        self.train_with_options(rng, TrainOptions::default())
            .expect("training without checkpoints has no resume path to fail")
    }

    /// Algorithm 2/3 training with the resilience layer (see
    /// [`CrossEm::train_with_options`]). When checkpointing is on, both the
    /// one-time partition preparation and the per-epoch partition order are
    /// derived from the stored run seed, so a resumed run sees exactly the
    /// mini-batches the uninterrupted run would have.
    pub fn train_with_options<R: Rng>(
        &self,
        rng: &mut R,
        mut options: TrainOptions<'_>,
    ) -> Result<PlusReport, ResumeError> {
        let _threads = options.threads.map(cem_tensor::par::ThreadsGuard::new);
        let config = *self.base.config();
        let mut engine = TrainEngine::new(self.base.trainable_params(), &config);
        let fingerprint = plus_fingerprint(&config, &self.plus);
        let mut train = TrainReport::default();
        let mut start_epoch = 0usize;

        // Partition preparation computes proximity from the *pristine*
        // pre-trained weights, so it must run before the checkpoint's
        // trained parameters are applied — otherwise a resumed run would
        // build different partitions than the uninterrupted run did. Only
        // the run seed is read from the checkpoint up front.
        let loaded = match options.checkpoints {
            None => None,
            Some(manager) => manager.load()?,
        };
        let run_seed: Option<u64> = match (options.checkpoints, &loaded) {
            (None, _) => None,
            (Some(_), Some((dict, _source))) => Some(
                dict.meta("seed")
                    .ok_or_else(|| ResumeError::MissingEntry("seed".into()))?,
            ),
            (Some(_), None) => Some(rng.gen::<u64>()),
        };

        let prep_start = Instant::now();
        let partitions = match run_seed {
            None => self.prepare_partitions(rng),
            Some(seed) => {
                let mut prep_rng = StdRng::seed_from_u64(derive_seed(seed, PREP_STREAM));
                self.prepare_partitions(&mut prep_rng)
            }
        };
        let prep_seconds = prep_start.elapsed().as_secs_f64();

        if let Some((dict, _source)) = &loaded {
            let state = engine.resume_from(dict, fingerprint)?;
            start_epoch = state.epochs_done.min(config.epochs);
            train.resumed_from = Some(state.epochs_done);
            cem_info!("resuming CrossEM+ run at epoch {}", state.epochs_done);
        }
        let pairs_per_epoch: usize = partitions.iter().map(Partition::pair_count).sum();
        if let Some(session) = options.obs {
            session.emit(
                Event::new("prep_end")
                    .field("seconds", prep_seconds)
                    .field("partitions", partitions.len() as f64)
                    .field("pairs_per_epoch", pairs_per_epoch as f64),
            );
        }
        cem_info!(
            "CrossEM+ prep: {} partitions, {} pairs/epoch ({:.2}s)",
            partitions.len(),
            pairs_per_epoch,
            prep_seconds
        );

        let mut order: Vec<usize> = (0..partitions.len()).collect();

        'epochs: for epoch in start_epoch..config.epochs {
            memory::reset_peak();
            let start = Instant::now();
            match run_seed {
                // Legacy stream: cumulative shuffles (shuffling the index
                // vector draws the same random numbers as shuffling the
                // partitions themselves used to).
                None => order.shuffle(rng),
                // Resumable stream: order depends only on (run_seed, epoch).
                Some(seed) => {
                    let mut epoch_rng = StdRng::seed_from_u64(derive_seed(seed, epoch as u64));
                    reset_identity(&mut order);
                    order.shuffle(&mut epoch_rng);
                }
            }
            if let Some(session) = options.obs {
                session.emit(Event::new("epoch_start").field("epoch", epoch as f64));
            }
            engine.begin_epoch();
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            let mut batch_idx = 0usize;
            'batches: for &pi in &order {
                let partition = &partitions[pi];
                for vertex_chunk in partition.vertices.chunks(config.batch_vertices) {
                    for image_chunk in partition.images.chunks(config.batch_images) {
                        if image_chunk.len() < 2 {
                            continue;
                        }
                        let loss = self.base.batch_loss(vertex_chunk, image_chunk);
                        let applied = engine.apply(loss, options.injector.as_deref_mut());
                        if let Some(session) = options.obs {
                            session.emit(
                                Event::new("batch")
                                    .field("epoch", epoch as f64)
                                    .field("batch", batch_idx as f64)
                                    .field("loss", applied.map_or(f64::NAN, |v| v as f64))
                                    .field("healthy", applied.is_some()),
                            );
                        }
                        if let Some(value) = applied {
                            cem_debug!("epoch {epoch} batch {batch_idx}: loss={value}");
                            loss_sum += value;
                            batches += 1;
                        }
                        batch_idx += 1;
                        if engine.diverged() {
                            break 'batches;
                        }
                    }
                }
            }
            let stats = EpochStats {
                seconds: start.elapsed().as_secs_f64(),
                peak_bytes: memory::peak_bytes(),
                mean_loss: if batches > 0 { loss_sum / batches as f32 } else { f32::NAN },
                batches,
                nan_batches: engine.nan_batches(),
                rollbacks: engine.rollbacks(),
            };
            if let Some(session) = options.obs {
                session.emit(epoch_end_event(epoch, &stats));
            }
            cem_info!(
                "epoch {epoch}: mean_loss={} batches={} ({:.2}s)",
                stats.mean_loss,
                stats.batches,
                stats.seconds
            );
            train.epochs.push(stats);
            if engine.diverged() {
                train.diverged = true;
                break 'epochs;
            }
            engine.take_snapshot();
            if let (Some(manager), Some(seed)) = (options.checkpoints, run_seed) {
                let dict =
                    encode_train_state(engine.params(), &engine.opt, epoch + 1, seed, fingerprint);
                manager.save(&dict)?;
            }
            if let Some(inj) = options.injector.as_deref_mut() {
                if inj.after_epoch(epoch) == EpochAction::Abort {
                    break 'epochs;
                }
            }
        }

        Ok(PlusReport { train, prep_seconds, pairs_per_epoch, partitions: partitions.len() })
    }

    /// Evaluate with the tuned prompts (same protocol as CrossEM).
    pub fn evaluate(&self) -> Metrics {
        self.base.evaluate()
    }

    /// Full matching-probability matrix (Eq. 4).
    pub fn matching_matrix(&self) -> cem_tensor::Tensor {
        self.base.matching_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PromptKind;
    use cem_clip::ClipConfig;
    use cem_data::AttributePool;
    use cem_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn micro() -> (Clip, Tokenizer, EmDataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut graph = Graph::new();
        let mut entities = Vec::new();
        let mut classes = Vec::new();
        for (name, attr) in
            [("white bird", "white"), ("black bird", "black"), ("grey bird", "grey")]
        {
            let v = graph.add_vertex(name);
            let a = graph.add_vertex(attr);
            graph.add_edge(v, a, "has color");
            entities.push(v);
            classes.push(cem_data::ClassSpec {
                name: name.into(),
                signature: vec![("color".into(), attr.into())],
                name_reveals: 1,
            });
        }
        let tokenizer =
            Tokenizer::build(["a photo of white black grey bird has color in and"]);
        let mk_img = |seed: f32| {
            cem_clip::Image::from_patches(vec![vec![seed; 6], vec![-seed * 0.3; 6]])
        };
        let images: Vec<cem_clip::Image> =
            (0..9).map(|i| mk_img((i as f32 - 4.0) * 0.5)).collect();
        let image_gold = (0..9).map(|i| i % 3).collect();
        let dataset = EmDataset {
            name: "micro+".into(),
            graph,
            entities,
            classes,
            images,
            image_gold,
            pool: AttributePool::synthesize(2, 2),
        };
        dataset.validate();
        let clip = Clip::new(ClipConfig::tiny(tokenizer.vocab_size(), 6), &mut rng);
        (clip, tokenizer, dataset, rng)
    }

    fn train_config() -> TrainConfig {
        TrainConfig {
            prompt: PromptKind::Soft,
            epochs: 1,
            batch_vertices: 2,
            batch_images: 4,
            ..TrainConfig::default()
        }
    }

    fn plus_config() -> PlusConfig {
        PlusConfig {
            vertex_subsets: 2,
            image_clusters: 2,
            prune_quantile: 0.2,
            negative_top_k: 3,
            ..PlusConfig::default()
        }
    }

    #[test]
    fn full_plus_pipeline_runs() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let plus =
            CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus_config(), &mut rng);
        let report = plus.train(&mut rng);
        assert_eq!(report.train.epochs.len(), 1);
        assert!(report.partitions > 0);
        assert!(report.pairs_per_epoch > 0);
        assert!(report.prep_seconds >= 0.0);
        let metrics = plus.evaluate();
        assert_eq!(metrics.queries, 3);
    }

    #[test]
    fn mbg_prunes_candidate_pairs() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let with_mbg =
            CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus_config(), &mut rng);
        let report_mbg = with_mbg.train(&mut rng);

        let without = CrossEmPlus::new(
            &clip,
            &tokenizer,
            &dataset,
            train_config(),
            plus_config().without_mbg().without_ns(),
            &mut rng,
        );
        let report_rand = without.train(&mut rng);
        // Random partitioning covers every pair; MBG must not exceed it
        // (NS padding can add a few back, hence <=).
        assert!(report_mbg.pairs_per_epoch <= report_rand.pairs_per_epoch + 9);
        assert_eq!(report_rand.pairs_per_epoch, 3 * 9);
    }

    #[test]
    fn ablations_all_run() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        for plus in [
            plus_config().without_mbg(),
            plus_config().without_ns(),
            plus_config().without_opc(),
        ] {
            let trainer =
                CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus, &mut rng);
            let report = trainer.train(&mut rng);
            assert!(report.train.final_loss().expect("epochs ran").is_finite());
        }
    }

    #[test]
    fn opc_flag_propagates_to_base() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let with = CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus_config(), &mut rng);
        assert!(with.base().orthogonal);
        let without = CrossEmPlus::new(
            &clip,
            &tokenizer,
            &dataset,
            train_config(),
            plus_config().without_opc(),
            &mut rng,
        );
        assert!(!without.base().orthogonal);
    }
}
