//! The CrossEM⁺ training loop: Algorithm 1 with PCP partitions, hard
//! negative sampling, and the orthogonal prompt constraint.

use std::time::Instant;

use cem_clip::{Clip, Tokenizer};
use cem_data::EmDataset;
use cem_tensor::memory;
use cem_tensor::optim::AdamW;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::{PlusConfig, TrainConfig};
use crate::metrics::Metrics;
use crate::plus::minibatch::{
    pairwise_proximity, partition_by_proximity, random_partitions,
    Partition,
};
use crate::plus::negsample::negative_sampling;
use crate::trainer::{CrossEm, EpochStats, TrainReport};

/// Training outcome including the one-time preprocessing cost.
#[derive(Debug, Clone)]
pub struct PlusReport {
    pub train: TrainReport,
    /// Seconds spent in mini-batch generation + negative sampling.
    pub prep_seconds: f64,
    /// Candidate pairs per epoch after pruning (vs. `|V|·|I|` for plain
    /// CrossEM) — the quantity behind the paper's complexity claim.
    pub pairs_per_epoch: usize,
    pub partitions: usize,
}

/// CrossEM⁺: wraps the base matcher with the Sec. IV optimisations.
pub struct CrossEmPlus<'a> {
    base: CrossEm<'a>,
    plus: PlusConfig,
}

impl<'a> CrossEmPlus<'a> {
    pub fn new<R: Rng>(
        clip: &'a Clip,
        tokenizer: &'a Tokenizer,
        dataset: &'a EmDataset,
        config: TrainConfig,
        plus: PlusConfig,
        rng: &mut R,
    ) -> Self {
        plus.validate();
        let mut base = CrossEm::new(clip, tokenizer, dataset, config, rng);
        base.orthogonal = plus.orthogonal_constraint;
        CrossEmPlus { base, plus }
    }

    pub fn base(&self) -> &CrossEm<'a> {
        &self.base
    }

    pub fn plus_config(&self) -> &PlusConfig {
        &self.plus
    }

    /// Build the training partitions according to the enabled
    /// optimisations. Returns the partitions and the proximity matrix (if
    /// it was needed).
    fn prepare_partitions<R: Rng>(&self, rng: &mut R) -> Vec<Partition> {
        let dataset = self.base.dataset();
        let needs_proximity = self.plus.minibatch_generation || self.plus.negative_sampling;
        let proximity = if needs_proximity {
            Some(pairwise_proximity(
                self.base.clip(),
                self.base.tokenizer(),
                dataset,
                self.base.config().hops,
            ))
        } else {
            None
        };

        let mut partitions = if self.plus.minibatch_generation {
            partition_by_proximity(proximity.as_ref().unwrap(), &self.plus, rng).partitions
        } else {
            random_partitions(dataset.entity_count(), dataset.image_count(), &self.plus, rng)
        };

        if self.plus.negative_sampling {
            negative_sampling(
                &mut partitions,
                proximity.as_ref().unwrap(),
                self.base.config().batch_images,
                self.plus.negative_top_k,
                rng,
            );
        }
        partitions
    }

    /// Run the CrossEM⁺ training loop.
    pub fn train<R: Rng>(&self, rng: &mut R) -> PlusReport {
        let prep_start = Instant::now();
        let mut partitions = self.prepare_partitions(rng);
        let prep_seconds = prep_start.elapsed().as_secs_f64();
        let pairs_per_epoch: usize = partitions.iter().map(Partition::pair_count).sum();

        let config = *self.base.config();
        let mut opt = AdamW::new(self.base.trainable_params(), config.lr);
        let mut train = TrainReport::default();

        for _epoch in 0..config.epochs {
            memory::reset_peak();
            let start = Instant::now();
            partitions.shuffle(rng);
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            for partition in &partitions {
                for vertex_chunk in partition.vertices.chunks(config.batch_vertices) {
                    for image_chunk in partition.images.chunks(config.batch_images) {
                        if image_chunk.len() < 2 {
                            continue;
                        }
                        loss_sum += self.base.train_step(&mut opt, vertex_chunk, image_chunk);
                        batches += 1;
                    }
                }
            }
            train.epochs.push(EpochStats {
                seconds: start.elapsed().as_secs_f64(),
                peak_bytes: memory::peak_bytes(),
                mean_loss: if batches > 0 { loss_sum / batches as f32 } else { f32::NAN },
                batches,
            });
        }

        PlusReport { train, prep_seconds, pairs_per_epoch, partitions: partitions.len() }
    }

    /// Evaluate with the tuned prompts (same protocol as CrossEM).
    pub fn evaluate(&self) -> Metrics {
        self.base.evaluate()
    }

    /// Full matching-probability matrix (Eq. 4).
    pub fn matching_matrix(&self) -> cem_tensor::Tensor {
        self.base.matching_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PromptKind;
    use cem_clip::ClipConfig;
    use cem_data::AttributePool;
    use cem_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn micro() -> (Clip, Tokenizer, EmDataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut graph = Graph::new();
        let mut entities = Vec::new();
        let mut classes = Vec::new();
        for (name, attr) in
            [("white bird", "white"), ("black bird", "black"), ("grey bird", "grey")]
        {
            let v = graph.add_vertex(name);
            let a = graph.add_vertex(attr);
            graph.add_edge(v, a, "has color");
            entities.push(v);
            classes.push(cem_data::ClassSpec {
                name: name.into(),
                signature: vec![("color".into(), attr.into())],
                name_reveals: 1,
            });
        }
        let tokenizer =
            Tokenizer::build(["a photo of white black grey bird has color in and"]);
        let mk_img = |seed: f32| {
            cem_clip::Image::from_patches(vec![vec![seed; 6], vec![-seed * 0.3; 6]])
        };
        let images: Vec<cem_clip::Image> =
            (0..9).map(|i| mk_img((i as f32 - 4.0) * 0.5)).collect();
        let image_gold = (0..9).map(|i| i % 3).collect();
        let dataset = EmDataset {
            name: "micro+".into(),
            graph,
            entities,
            classes,
            images,
            image_gold,
            pool: AttributePool::synthesize(2, 2),
        };
        dataset.validate();
        let clip = Clip::new(ClipConfig::tiny(tokenizer.vocab_size(), 6), &mut rng);
        (clip, tokenizer, dataset, rng)
    }

    fn train_config() -> TrainConfig {
        TrainConfig {
            prompt: PromptKind::Soft,
            epochs: 1,
            batch_vertices: 2,
            batch_images: 4,
            ..TrainConfig::default()
        }
    }

    fn plus_config() -> PlusConfig {
        PlusConfig {
            vertex_subsets: 2,
            image_clusters: 2,
            prune_quantile: 0.2,
            negative_top_k: 3,
            ..PlusConfig::default()
        }
    }

    #[test]
    fn full_plus_pipeline_runs() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let plus =
            CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus_config(), &mut rng);
        let report = plus.train(&mut rng);
        assert_eq!(report.train.epochs.len(), 1);
        assert!(report.partitions > 0);
        assert!(report.pairs_per_epoch > 0);
        assert!(report.prep_seconds >= 0.0);
        let metrics = plus.evaluate();
        assert_eq!(metrics.queries, 3);
    }

    #[test]
    fn mbg_prunes_candidate_pairs() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let with_mbg =
            CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus_config(), &mut rng);
        let report_mbg = with_mbg.train(&mut rng);

        let without = CrossEmPlus::new(
            &clip,
            &tokenizer,
            &dataset,
            train_config(),
            plus_config().without_mbg().without_ns(),
            &mut rng,
        );
        let report_rand = without.train(&mut rng);
        // Random partitioning covers every pair; MBG must not exceed it
        // (NS padding can add a few back, hence <=).
        assert!(report_mbg.pairs_per_epoch <= report_rand.pairs_per_epoch + 9);
        assert_eq!(report_rand.pairs_per_epoch, 3 * 9);
    }

    #[test]
    fn ablations_all_run() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        for plus in [
            plus_config().without_mbg(),
            plus_config().without_ns(),
            plus_config().without_opc(),
        ] {
            let trainer =
                CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus, &mut rng);
            let report = trainer.train(&mut rng);
            assert!(report.train.final_loss().is_finite());
        }
    }

    #[test]
    fn opc_flag_propagates_to_base() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let with = CrossEmPlus::new(&clip, &tokenizer, &dataset, train_config(), plus_config(), &mut rng);
        assert!(with.base().orthogonal);
        let without = CrossEmPlus::new(
            &clip,
            &tokenizer,
            &dataset,
            train_config(),
            plus_config().without_opc(),
            &mut rng,
        );
        assert!(!without.base().orthogonal);
    }
}
