//! PCP — property-based closeness partition (paper Alg. 2, Fig. 7).
//!
//! Phase 1 extracts *property* features: one vector per graph vertex (from
//! the pre-trained text tower) and one per image patch (from the frozen
//! image tower), giving the property-closeness matrix `S_c = A × Cᵀ`.
//! Phase 2 folds `S_c` into a pairwise proximity `S(v, I)` (Eq. 8): each
//! neighbour of `v` contributes its best-matching patch of `I`. Phase 3
//! randomly splits vertices into `k1` subsets, prunes images with low
//! proximity to the subset, and k-means-clusters the survivors by their
//! proximity distribution so images with similar matching behaviour share a
//! mini-batch.
//!
//! Performance: phase 1 runs through the (non-`Sync`) tensor graph and stays
//! serial, but its output is plain `Vec<f32>` feature rows. Phase 2 only
//! reads those rows, so its proximity rows are fanned out over the scoped
//! thread pool ([`cem_tensor::par`]) — each worker owns a disjoint block of
//! entity rows and the result is bit-identical at every thread count. The
//! phase-1 features are also the unit of reuse for
//! [`crate::cache::FeatureCache`], which computes them exactly once per
//! (model, dataset) pair.

use std::rc::Rc;

use cem_clip::{Clip, Image, Tokenizer};
use cem_data::EmDataset;
use cem_graph::d_hop_subgraph;
use cem_tensor::kernels::dot;
use cem_tensor::{no_grad, par};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::PlusConfig;
use crate::kmeans::{clusters_of, kmeans};

/// One mini-batch partition `(V_i, I_j)`, holding entity indices and image
/// indices into the dataset.
#[derive(Debug, Clone)]
pub struct Partition {
    pub vertices: Vec<usize>,
    pub images: Vec<usize>,
}

impl Partition {
    pub fn pair_count(&self) -> usize {
        self.vertices.len() * self.images.len()
    }
}

/// Pairwise proximity `S(v, I)` (Eq. 8) as a flat row-major `[entities ×
/// images]` matrix — one allocation instead of one `Vec` per entity, and a
/// layout the row-partitioned parallel builder can split with
/// [`par::par_chunks_mut`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityMatrix {
    entities: usize,
    images: usize,
    data: Vec<f32>,
}

impl ProximityMatrix {
    /// All-zero matrix of the given dimensions.
    pub fn zeros(entities: usize, images: usize) -> Self {
        ProximityMatrix { entities, images, data: vec![0.0; entities * images] }
    }

    /// Build from per-entity rows (each of the same length).
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        let entities = rows.len();
        let images = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == images), "ragged proximity rows");
        let mut data = Vec::with_capacity(entities * images);
        for row in rows {
            data.extend_from_slice(&row);
        }
        ProximityMatrix { entities, images, data }
    }

    pub fn entities(&self) -> usize {
        self.entities
    }

    pub fn images(&self) -> usize {
        self.images
    }

    /// Proximity row of entity `v`: `S(v, ·)` over all images.
    pub fn row(&self, v: usize) -> &[f32] {
        &self.data[v * self.images..(v + 1) * self.images]
    }

    /// Single entry `S(v, i)`.
    pub fn at(&self, v: usize, i: usize) -> f32 {
        self.data[v * self.images + i]
    }

    /// The flat row-major backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Output of mini-batch generation.
#[derive(Debug, Clone)]
pub struct Pcp {
    pub partitions: Vec<Partition>,
    /// Pairwise proximity `S[entity][image]` (Eq. 8) — reused by negative
    /// sampling. Shared, not copied: the matrix can be large and is
    /// read-only after construction.
    pub proximity: Rc<ProximityMatrix>,
    /// Candidate pairs surviving the pruning, for complexity accounting.
    pub surviving_pairs: usize,
}

/// Phase 1 output: the frozen property features proximity is computed from.
/// Plain `Vec<f32>` rows (no tensors), so they are `Sync` and cacheable.
#[derive(Debug, Clone)]
pub struct FrozenFeatures {
    /// Normalised label feature per *graph vertex* (matrix `A`).
    pub label_features: Vec<Vec<f32>>,
    /// Normalised feature per image patch (matrix `C`), `[image][patch]`.
    pub patch_features: Vec<Vec<Vec<f32>>>,
}

/// Phase 1: encode every vertex label and every image patch with the frozen
/// towers. Serial — the tensor graph is single-threaded by design — but run
/// exactly once per (model, dataset) when routed through
/// [`crate::cache::FeatureCache`].
pub fn frozen_features(clip: &Clip, tokenizer: &Tokenizer, dataset: &EmDataset) -> FrozenFeatures {
    no_grad(|| {
        let label_features: Vec<Vec<f32>> = dataset
            .graph
            .vertices()
            .map(|v| {
                let (ids, _) = tokenizer.encode(dataset.graph.vertex_label(v), 16);
                clip.text.encode_ids(&ids).l2_normalize_rows().to_vec()
            })
            .collect();

        let patch_features: Vec<Vec<Vec<f32>>> = dataset
            .images
            .iter()
            .map(|image| {
                (0..image.n_patches())
                    .map(|p| {
                        let single = Image::from_patches(vec![image.patch(p).to_vec()]);
                        clip.image.encode(&single).l2_normalize_rows().to_vec()
                    })
                    .collect()
            })
            .collect();

        FrozenFeatures { label_features, patch_features }
    })
}

/// Phase 2 over precomputed features:
/// `S(v, I) = Σ_{v_j ∈ N(v)} max_{c_k ∈ P(I)} <A[v_j], C[c_k]>`.
///
/// Entity rows are independent, so they are partitioned over the thread
/// pool; every row is produced by the same serial per-row code regardless
/// of the thread count.
pub fn proximity_from_features(
    features: &FrozenFeatures,
    dataset: &EmDataset,
    hops: usize,
) -> ProximityMatrix {
    let n_entities = dataset.entities.len();
    let n_images = features.patch_features.len();
    let mut matrix = ProximityMatrix::zeros(n_entities, n_images);
    if n_entities == 0 || n_images == 0 {
        return matrix;
    }

    // Neighbourhood features per entity, resolved up front so the parallel
    // stage touches only plain slices.
    let neighborhoods: Vec<Vec<&[f32]>> = dataset
        .entities
        .iter()
        .map(|&v| {
            let sub = d_hop_subgraph(&dataset.graph, v, hops);
            sub.vertices.iter().map(|u| features.label_features[u.0].as_slice()).collect()
        })
        .collect();
    let patch_features = &features.patch_features;

    // A row's cost is proportional to its neighbourhood size (hub entities
    // have d-hop subgraphs orders of magnitude larger than leaves), so a
    // uniform row split can leave one worker dragging the scope join while
    // the rest idle. Weight the contiguous partition by neighbourhood size;
    // boundaries depend only on the weights and thread budget, so results
    // stay bit-identical at every thread count.
    let weights: Vec<u64> = neighborhoods.iter().map(|nb| nb.len().max(1) as u64).collect();
    // Gate the thread budget on actual work (Σ neighbourhood · images): tiny
    // problems stay serial instead of paying spawn overhead per epoch.
    let total_work =
        weights.iter().sum::<u64>() as usize * n_images * patch_features[0].len().max(1);
    let threads = if total_work < par::PAR_ELEMWISE_THRESHOLD { 1 } else { par::max_threads() };

    par::par_chunks_mut_weighted(&mut matrix.data, n_images, &weights, threads, |first_row, block| {
        for (r, row) in block.chunks_exact_mut(n_images).enumerate() {
            let neighborhood = &neighborhoods[first_row + r];
            for (dst, patches) in row.iter_mut().zip(patch_features) {
                *dst = neighborhood
                    .iter()
                    .map(|feat| {
                        patches.iter().map(|p| dot(feat, p)).fold(f32::NEG_INFINITY, f32::max)
                    })
                    .sum();
            }
        }
    });
    matrix
}

/// Phase 1+2: the pairwise proximity matrix `S(v, I)` for all entities and
/// images. Exposed separately because negative sampling needs it even when
/// MBG itself is ablated (`CrossEM⁺ w/o MBG`).
pub fn pairwise_proximity(
    clip: &Clip,
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    hops: usize,
) -> ProximityMatrix {
    let features = frozen_features(clip, tokenizer, dataset);
    proximity_from_features(&features, dataset, hops)
}

/// Phase 3 over a precomputed proximity matrix: random vertex subsets,
/// image pruning at the `prune_quantile`, and k-means over proximity
/// distributions.
pub fn partition_by_proximity<R: Rng>(
    proximity: &Rc<ProximityMatrix>,
    config: &PlusConfig,
    rng: &mut R,
) -> Pcp {
    config.validate();
    let n_entities = proximity.entities();
    assert!(n_entities > 0, "no entities to partition");
    let n_images = proximity.images();

    let mut entity_order: Vec<usize> = (0..n_entities).collect();
    entity_order.shuffle(rng);
    let subset_size = n_entities.div_ceil(config.vertex_subsets);

    let mut partitions = Vec::new();
    let mut surviving_pairs = 0usize;
    for subset in entity_order.chunks(subset_size) {
        // Image score w.r.t. this subset: best proximity to any member.
        let mut scored: Vec<(usize, f32)> = (0..n_images)
            .map(|i| {
                let s = subset
                    .iter()
                    .map(|&v| proximity.at(v, i))
                    .fold(f32::NEG_INFINITY, f32::max);
                (i, s)
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let prune = ((n_images as f32) * config.prune_quantile) as usize;
        let survivors: Vec<usize> = scored[prune.min(n_images.saturating_sub(1))..]
            .iter()
            .map(|&(i, _)| i)
            .collect();
        if survivors.is_empty() {
            continue;
        }

        // Proximity distribution per surviving image (normalised over the
        // subset's vertices).
        let distributions: Vec<Vec<f32>> = survivors
            .iter()
            .map(|&i| {
                let raw: Vec<f32> = subset.iter().map(|&v| proximity.at(v, i)).collect();
                let min = raw.iter().copied().fold(f32::INFINITY, f32::min);
                let shifted: Vec<f32> = raw.iter().map(|x| x - min + 1e-6).collect();
                let total: f32 = shifted.iter().sum();
                shifted.iter().map(|x| x / total).collect()
            })
            .collect();

        let result = kmeans(&distributions, config.image_clusters, 25, rng);
        let mut clusters = clusters_of(&result, config.image_clusters);
        clusters.shuffle(rng);
        for cluster in clusters {
            if cluster.is_empty() {
                continue;
            }
            let images: Vec<usize> = cluster.iter().map(|&c| survivors[c]).collect();
            surviving_pairs += subset.len() * images.len();
            partitions.push(Partition { vertices: subset.to_vec(), images });
        }
    }
    partitions.shuffle(rng);
    Pcp { partitions, proximity: Rc::clone(proximity), surviving_pairs }
}

/// Full Alg. 2: phases 1–3.
pub fn minibatch_generation<R: Rng>(
    clip: &Clip,
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    hops: usize,
    config: &PlusConfig,
    rng: &mut R,
) -> Pcp {
    let proximity = Rc::new(pairwise_proximity(clip, tokenizer, dataset, hops));
    partition_by_proximity(&proximity, config, rng)
}

/// The ablation control (`CrossEM⁺ w/o MBG`): random partitions of the same
/// granularity, no pruning, no locality.
pub fn random_partitions<R: Rng>(
    n_entities: usize,
    n_images: usize,
    config: &PlusConfig,
    rng: &mut R,
) -> Vec<Partition> {
    let mut entity_order: Vec<usize> = (0..n_entities).collect();
    let mut image_order: Vec<usize> = (0..n_images).collect();
    entity_order.shuffle(rng);
    image_order.shuffle(rng);
    let subset_size = n_entities.div_ceil(config.vertex_subsets);
    let cluster_size = n_images.div_ceil(config.image_clusters);
    let mut partitions = Vec::new();
    for subset in entity_order.chunks(subset_size) {
        for cluster in image_order.chunks(cluster_size) {
            partitions.push(Partition { vertices: subset.to_vec(), images: cluster.to_vec() });
        }
    }
    partitions.shuffle(rng);
    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_proximity(entities: usize, images: usize) -> Rc<ProximityMatrix> {
        // Block-diagonal-ish: entity e prefers images with i % entities == e.
        Rc::new(ProximityMatrix::from_rows(
            (0..entities)
                .map(|e| {
                    (0..images)
                        .map(|i| if i % entities == e { 1.0 } else { 0.1 })
                        .collect()
                })
                .collect(),
        ))
    }

    #[test]
    fn flat_matrix_accessors_agree() {
        let m = ProximityMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.entities(), 2);
        assert_eq!(m.images(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.at(0, 2), 3.0);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = ProximityMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn partitions_cover_only_surviving_images() {
        let mut rng = StdRng::seed_from_u64(0);
        let prox = uniform_proximity(8, 40);
        let config = PlusConfig { vertex_subsets: 2, image_clusters: 3, prune_quantile: 0.25, ..PlusConfig::default() };
        let pcp = partition_by_proximity(&prox, &config, &mut rng);
        assert!(!pcp.partitions.is_empty());
        let full_pairs = 8 * 40;
        assert!(pcp.surviving_pairs < full_pairs, "pruning had no effect");
        for p in &pcp.partitions {
            assert!(!p.vertices.is_empty());
            assert!(!p.images.is_empty());
            assert_eq!(p.pair_count(), p.vertices.len() * p.images.len());
        }
    }

    #[test]
    fn every_entity_appears_in_some_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let prox = uniform_proximity(10, 30);
        let pcp = partition_by_proximity(&prox, &PlusConfig::default(), &mut rng);
        let mut seen = [false; 10];
        for p in &pcp.partitions {
            for &v in &p.vertices {
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "entity lost by partitioning");
    }

    #[test]
    fn high_proximity_images_survive_pruning() {
        let mut rng = StdRng::seed_from_u64(2);
        // Image 0 is loved by everyone; image 1 by no one.
        let prox = Rc::new(ProximityMatrix::from_rows(
            (0..4)
                .map(|_| {
                    let mut row = vec![0.2; 20];
                    row[0] = 5.0;
                    row[1] = -5.0;
                    row
                })
                .collect(),
        ));
        let config = PlusConfig { vertex_subsets: 1, prune_quantile: 0.4, ..PlusConfig::default() };
        let pcp = partition_by_proximity(&prox, &config, &mut rng);
        let all_images: Vec<usize> =
            pcp.partitions.iter().flat_map(|p| p.images.clone()).collect();
        assert!(all_images.contains(&0), "best image was pruned");
        assert!(!all_images.contains(&1), "worst image survived");
    }

    #[test]
    fn random_partitions_cover_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let parts = random_partitions(7, 13, &PlusConfig::default(), &mut rng);
        let mut v_seen = [false; 7];
        let mut i_seen = [false; 13];
        for p in &parts {
            for &v in &p.vertices {
                v_seen[v] = true;
            }
            for &i in &p.images {
                i_seen[i] = true;
            }
        }
        assert!(v_seen.iter().all(|&s| s));
        assert!(i_seen.iter().all(|&s| s));
        // Random partitioning prunes nothing.
        let pairs: usize = parts.iter().map(Partition::pair_count).sum();
        assert_eq!(pairs, 7 * 13);
    }

    #[test]
    fn clustering_groups_similarly_matched_images() {
        let mut rng = StdRng::seed_from_u64(4);
        // Two clean image populations: ones matching entity 0, others
        // matching entity 1.
        let row0: Vec<f32> = (0..20).map(|i| if i < 10 { 2.0 } else { 0.1 }).collect();
        let row1: Vec<f32> = (0..20).map(|i| if i < 10 { 0.1 } else { 2.0 }).collect();
        let prox = Rc::new(ProximityMatrix::from_rows(vec![row0, row1]));
        let config = PlusConfig {
            vertex_subsets: 1,
            image_clusters: 2,
            prune_quantile: 0.0,
            ..PlusConfig::default()
        };
        let pcp = partition_by_proximity(&prox, &config, &mut rng);
        // Each partition's images should be homogeneous (all < 10 or ≥ 10).
        for p in &pcp.partitions {
            let low = p.images.iter().filter(|&&i| i < 10).count();
            assert!(
                low == 0 || low == p.images.len(),
                "mixed cluster: {:?}",
                p.images
            );
        }
    }
}
