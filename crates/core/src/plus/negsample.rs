//! Property-based negative sampling (paper Alg. 3).
//!
//! Default contrastive training samples negatives uniformly; that wastes
//! capacity on easy negatives. This pass injects *hard* negatives into each
//! partition: images with high property proximity to the partition's
//! vertices that are nevertheless outside the partition. Batches are padded
//! to a multiple of the batch size and shuffled at every level (pairs,
//! batches, partitions) per Alg. 3 lines 3, 16, 17.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::plus::minibatch::{Partition, ProximityMatrix};

/// Enrich `partitions` with hard negative images. `proximity` is the
/// `S(v, I)` matrix from Alg. 2; `batch_images` is the batch size `N`
/// whose multiple each partition's image count is padded to; `top_k`
/// bounds the per-vertex candidate pool (Alg. 3 draws a random `k`, here
/// `1..=top_k`).
pub fn negative_sampling<R: Rng>(
    partitions: &mut [Partition],
    proximity: &ProximityMatrix,
    batch_images: usize,
    top_k: usize,
    rng: &mut R,
) {
    assert!(batch_images >= 1, "batch size must be positive");
    assert!(top_k >= 1, "top_k must be positive");
    for partition in partitions.iter_mut() {
        let have = partition.images.len();
        let target = have.div_ceil(batch_images) * batch_images;
        let mut needed = target - have;
        if needed == 0 {
            partition.images.shuffle(rng);
            continue;
        }

        let inside: std::collections::HashSet<usize> =
            partition.images.iter().copied().collect();
        // Candidate hard negatives: per vertex, its top-k' images by
        // proximity that are outside the partition.
        let mut candidates: Vec<usize> = Vec::new();
        let mut seen = inside.clone();
        for &v in &partition.vertices {
            let k = rng.gen_range(1..=top_k);
            let row = proximity.row(v);
            let mut order: Vec<usize> = (0..row.len()).collect();
            order.sort_by(|&a, &b| {
                row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal)
            });
            for i in order.into_iter().take(k) {
                if seen.insert(i) {
                    candidates.push(i);
                }
            }
        }
        candidates.shuffle(rng);
        for image in candidates {
            if needed == 0 {
                break;
            }
            partition.images.push(image);
            needed -= 1;
        }
        partition.images.shuffle(rng);
    }
    partitions.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn proximity() -> ProximityMatrix {
        // 3 entities × 12 images; entity v strongly prefers images 4v..4v+3.
        ProximityMatrix::from_rows(
            (0..3)
                .map(|v| {
                    (0..12)
                        .map(|i| if i / 4 == v { 2.0 + (i % 4) as f32 * 0.1 } else { 0.1 })
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn pads_to_multiple_of_batch_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut parts = vec![Partition { vertices: vec![0, 1], images: vec![0, 1, 2] }];
        negative_sampling(&mut parts, &proximity(), 4, 3, &mut rng);
        assert_eq!(parts[0].images.len(), 4);
    }

    #[test]
    fn exact_multiple_is_left_alone() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut parts = vec![Partition { vertices: vec![0], images: vec![0, 1, 2, 3] }];
        negative_sampling(&mut parts, &proximity(), 4, 3, &mut rng);
        assert_eq!(parts[0].images.len(), 4);
        let mut images = parts[0].images.clone();
        images.sort_unstable();
        assert_eq!(images, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sampled_negatives_are_high_proximity_outsiders() {
        let mut rng = StdRng::seed_from_u64(2);
        // Partition for entity 0 currently holds only image 8 (a low-prox
        // image); padding should pull in entity 0's top images (0..4).
        let mut parts = vec![Partition { vertices: vec![0], images: vec![8] }];
        negative_sampling(&mut parts, &proximity(), 4, 4, &mut rng);
        // Alg. 3 draws a random k ∈ 1..=top_k per vertex, so the pool may
        // run dry before reaching the padding target — but it never
        // overshoots, and everything added must be a top image of entity 0.
        assert!(parts[0].images.len() <= 4);
        assert!(parts[0].images.len() > 1, "no negatives added at all");
        let added: Vec<usize> =
            parts[0].images.iter().copied().filter(|&i| i != 8).collect();
        assert!(added.iter().all(|&i| i < 4), "added non-top negatives: {added:?}");
    }

    #[test]
    fn no_duplicate_images_after_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut parts = vec![Partition { vertices: vec![0, 1, 2], images: vec![0, 4, 8] }];
        negative_sampling(&mut parts, &proximity(), 8, 4, &mut rng);
        let mut images = parts[0].images.clone();
        let before = images.len();
        images.sort_unstable();
        images.dedup();
        assert_eq!(images.len(), before, "duplicate images injected");
    }

    #[test]
    fn candidate_exhaustion_is_not_fatal() {
        let mut rng = StdRng::seed_from_u64(4);
        // Tiny repository: padding target may exceed what exists.
        let prox = ProximityMatrix::from_rows(vec![vec![1.0, 0.5]]);
        let mut parts = vec![Partition { vertices: vec![0], images: vec![0] }];
        negative_sampling(&mut parts, &prox, 8, 2, &mut rng);
        assert!(parts[0].images.len() <= 2);
    }
}
