//! CrossEM⁺ (paper Sec. IV): three optimisations that make prompt tuning
//! tractable on large heterogeneous data —
//!
//! 1. [`minibatch`] — PCP mini-batch generation (Alg. 2): partition
//!    candidate pairs so entities and their associated images land in the
//!    same mini-batch and unrelated pairs are pruned.
//! 2. [`negsample`] — property-based negative sampling (Alg. 3): inject
//!    hard negatives (high property proximity, different entity) into each
//!    partition.
//! 3. The orthogonal prompt constraint (Eq. 9–10), wired into the training
//!    loss by [`trainer::CrossEmPlus`].

pub mod minibatch;
pub mod negsample;
pub mod trainer;

pub use minibatch::{minibatch_generation, FrozenFeatures, Partition, Pcp, ProximityMatrix};
pub use negsample::negative_sampling;
pub use trainer::{CrossEmPlus, PlusReport};
