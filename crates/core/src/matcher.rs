//! Matching probabilities (Eq. 4), image ranking, and matching-set
//! extraction (Def. 2's set `S`).

use cem_tensor::Tensor;

/// Rank image indices for every query row of a score matrix `[N, M]`,
/// best first, truncated to `top_k` (0 = keep all).
pub fn rank_images(scores: &Tensor, top_k: usize) -> Vec<Vec<usize>> {
    let (n, m) = scores.shape().as_matrix();
    let data = scores.data();
    let keep = if top_k == 0 { m } else { top_k.min(m) };
    (0..n)
        .map(|r| {
            let row = &data[r * m..(r + 1) * m];
            let mut idx: Vec<usize> = (0..m).collect();
            idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
            idx.truncate(keep);
            idx
        })
        .collect()
}

/// The extracted matching set `S = {(x_i, x_j)}` with scores.
#[derive(Debug, Clone)]
pub struct MatchingSet {
    /// `(entity index, image index, matching probability)`.
    pub pairs: Vec<(usize, usize, f32)>,
}

impl MatchingSet {
    /// Take the top-1 image per entity from a matching-probability matrix
    /// (Eq. 4 output) — the "matching pair" decision of Def. 1.
    pub fn top1(probabilities: &Tensor) -> MatchingSet {
        let (n, m) = probabilities.shape().as_matrix();
        let data = probabilities.data();
        let pairs = (0..n)
            .map(|r| {
                let row = &data[r * m..(r + 1) * m];
                let mut best = 0usize;
                for (j, v) in row.iter().enumerate() {
                    if *v > row[best] {
                        best = j;
                    }
                }
                (r, best, row[best])
            })
            .collect();
        MatchingSet { pairs }
    }

    /// Keep all pairs whose matching probability exceeds `threshold`.
    pub fn thresholded(probabilities: &Tensor, threshold: f32) -> MatchingSet {
        let (n, m) = probabilities.shape().as_matrix();
        let data = probabilities.data();
        let mut pairs = Vec::new();
        for r in 0..n {
            for j in 0..m {
                let p = data[r * m + j];
                if p > threshold {
                    pairs.push((r, j, p));
                }
            }
        }
        MatchingSet { pairs }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Precision against a gold predicate.
    pub fn precision(&self, mut is_gold: impl FnMut(usize, usize) -> bool) -> f32 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let correct = self.pairs.iter().filter(|&&(e, i, _)| is_gold(e, i)).count();
        correct as f32 / self.pairs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Tensor {
        Tensor::from_vec(vec![0.1, 0.7, 0.2, 0.5, 0.3, 0.2], &[2, 3])
    }

    #[test]
    fn ranking_orders_descending() {
        let r = rank_images(&scores(), 0);
        assert_eq!(r[0], vec![1, 2, 0]);
        assert_eq!(r[1], vec![0, 1, 2]);
    }

    #[test]
    fn ranking_truncates() {
        let r = rank_images(&scores(), 2);
        assert_eq!(r[0], vec![1, 2]);
    }

    #[test]
    fn top1_picks_row_max() {
        let s = MatchingSet::top1(&scores());
        assert_eq!(s.pairs[0].0, 0);
        assert_eq!(s.pairs[0].1, 1);
        assert_eq!(s.pairs[1].1, 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn threshold_filters_pairs() {
        let s = MatchingSet::thresholded(&scores(), 0.45);
        assert_eq!(s.len(), 2); // 0.7 and 0.5
        assert!(s.pairs.iter().all(|&(_, _, p)| p > 0.45));
    }

    #[test]
    fn precision_counts_gold() {
        let s = MatchingSet::top1(&scores());
        let p = s.precision(|e, i| e == 0 && i == 1);
        assert!((p - 0.5).abs() < 1e-6);
        assert_eq!(MatchingSet { pairs: vec![] }.precision(|_, _| true), 0.0);
    }
}
