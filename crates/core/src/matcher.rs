//! Matching probabilities (Eq. 4), image ranking, and matching-set
//! extraction (Def. 2's set `S`).

use std::cmp::Ordering;

use cem_tensor::Tensor;

/// Deterministic total order over scores: every NaN sinks below every
/// finite (and infinite) score, and finite scores compare by
/// [`f32::total_cmp`]. Ranking a poisoned score matrix therefore never
/// promotes a NaN entry and never depends on comparator call order the way
/// `partial_cmp(..).unwrap_or(Equal)` did.
pub fn score_cmp(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Rank the image indices of one score row, best first, truncated to
/// `top_k` (0 = keep all). NaN scores sort last; ties keep index order, so
/// the ranking is a deterministic permutation prefix for *any* input,
/// poisoned or not.
///
/// When `top_k` is small relative to the row (the serving path only ever
/// needs top-k of a 100k-image gallery), a bounded worst-first heap does a
/// single O(n log k) pass instead of sorting the whole row. Both paths rank
/// under the identical total order — (score desc by [`score_cmp`], then
/// index asc) — and indices are unique, so the selected prefix is exactly
/// the full-sort prefix.
pub fn rank_row(row: &[f32], top_k: usize) -> Vec<usize> {
    let keep = if top_k == 0 { row.len() } else { top_k.min(row.len()) };
    // Heap bookkeeping only pays for itself when most of the row is
    // discarded; at keep ≥ n/4 the full sort's cache-friendly sweep wins.
    if keep > 0 && keep <= row.len() / 4 {
        return rank_row_partial(row, keep);
    }
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| score_cmp(row[b], row[a]));
    idx.truncate(keep);
    idx
}

/// `a` ranks strictly ahead of `b` under the ranking order of [`rank_row`]:
/// higher score first ([`score_cmp`] total order, NaN sinking), lower index
/// first on exact ties. Indices are unique, so this is a strict total order.
#[inline]
fn outranks(row: &[f32], a: usize, b: usize) -> bool {
    match score_cmp(row[a], row[b]) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => a < b,
    }
}

/// Bounded worst-first (min-)heap select of the top `keep` indices. The
/// heap root is the worst kept candidate; a new index replaces it only when
/// it strictly outranks it. Extraction sorts the `keep` survivors best
/// first — identical output to the full-sort path of [`rank_row`].
fn rank_row_partial(row: &[f32], keep: usize) -> Vec<usize> {
    debug_assert!(keep >= 1 && keep <= row.len());
    // `heap[p]` is worse than both children ⇒ `heap[0]` is the worst kept.
    let mut heap: Vec<usize> = Vec::with_capacity(keep);
    let worse = |a: usize, b: usize| outranks(row, b, a);
    for i in 0..row.len() {
        if heap.len() < keep {
            heap.push(i);
            // Sift up.
            let mut child = heap.len() - 1;
            while child > 0 {
                let parent = (child - 1) / 2;
                if worse(heap[child], heap[parent]) {
                    heap.swap(child, parent);
                    child = parent;
                } else {
                    break;
                }
            }
        } else if outranks(row, i, heap[0]) {
            heap[0] = i;
            // Sift down.
            let mut parent = 0usize;
            loop {
                let (l, r) = (2 * parent + 1, 2 * parent + 2);
                let mut worst = parent;
                if l < keep && worse(heap[l], heap[worst]) {
                    worst = l;
                }
                if r < keep && worse(heap[r], heap[worst]) {
                    worst = r;
                }
                if worst == parent {
                    break;
                }
                heap.swap(parent, worst);
                parent = worst;
            }
        }
    }
    heap.sort_unstable_by(|&a, &b| {
        if outranks(row, a, b) {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    });
    heap
}

/// Rank image indices for every query row of a score matrix `[N, M]`,
/// best first, truncated to `top_k` (0 = keep all).
pub fn rank_images(scores: &Tensor, top_k: usize) -> Vec<Vec<usize>> {
    let (n, m) = scores.shape().as_matrix();
    let data = scores.data();
    (0..n).map(|r| rank_row(&data[r * m..(r + 1) * m], top_k)).collect()
}

/// The extracted matching set `S = {(x_i, x_j)}` with scores.
#[derive(Debug, Clone)]
pub struct MatchingSet {
    /// `(entity index, image index, matching probability)`.
    pub pairs: Vec<(usize, usize, f32)>,
}

impl MatchingSet {
    /// Take the top-1 image per entity from a matching-probability matrix
    /// (Eq. 4 output) — the "matching pair" decision of Def. 1.
    pub fn top1(probabilities: &Tensor) -> MatchingSet {
        let (n, m) = probabilities.shape().as_matrix();
        let data = probabilities.data();
        let pairs = (0..n)
            .map(|r| {
                let row = &data[r * m..(r + 1) * m];
                let mut best = 0usize;
                for (j, v) in row.iter().enumerate() {
                    if score_cmp(*v, row[best]) == Ordering::Greater {
                        best = j;
                    }
                }
                (r, best, row[best])
            })
            .collect();
        MatchingSet { pairs }
    }

    /// Keep all pairs whose matching probability exceeds `threshold`.
    pub fn thresholded(probabilities: &Tensor, threshold: f32) -> MatchingSet {
        let (n, m) = probabilities.shape().as_matrix();
        let data = probabilities.data();
        let mut pairs = Vec::new();
        for r in 0..n {
            for j in 0..m {
                let p = data[r * m + j];
                // NaN never clears a threshold under the total order.
                if score_cmp(p, threshold) == Ordering::Greater {
                    pairs.push((r, j, p));
                }
            }
        }
        MatchingSet { pairs }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Precision against a gold predicate.
    pub fn precision(&self, mut is_gold: impl FnMut(usize, usize) -> bool) -> f32 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let correct = self.pairs.iter().filter(|&&(e, i, _)| is_gold(e, i)).count();
        correct as f32 / self.pairs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Tensor {
        Tensor::from_vec(vec![0.1, 0.7, 0.2, 0.5, 0.3, 0.2], &[2, 3])
    }

    #[test]
    fn ranking_orders_descending() {
        let r = rank_images(&scores(), 0);
        assert_eq!(r[0], vec![1, 2, 0]);
        assert_eq!(r[1], vec![0, 1, 2]);
    }

    #[test]
    fn ranking_truncates() {
        let r = rank_images(&scores(), 2);
        assert_eq!(r[0], vec![1, 2]);
    }

    #[test]
    fn top1_picks_row_max() {
        let s = MatchingSet::top1(&scores());
        assert_eq!(s.pairs[0].0, 0);
        assert_eq!(s.pairs[0].1, 1);
        assert_eq!(s.pairs[1].1, 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn threshold_filters_pairs() {
        let s = MatchingSet::thresholded(&scores(), 0.45);
        assert_eq!(s.len(), 2); // 0.7 and 0.5
        assert!(s.pairs.iter().all(|&(_, _, p)| p > 0.45));
    }

    #[test]
    fn score_cmp_is_a_total_order_with_nan_at_the_bottom() {
        assert_eq!(score_cmp(f32::NAN, f32::NAN), Ordering::Equal);
        assert_eq!(score_cmp(f32::NAN, f32::NEG_INFINITY), Ordering::Less);
        assert_eq!(score_cmp(f32::INFINITY, f32::NAN), Ordering::Greater);
        assert_eq!(score_cmp(-0.0, 0.0), Ordering::Less, "total_cmp separates signed zero");
        assert_eq!(score_cmp(0.3, 0.7), Ordering::Less);
    }

    #[test]
    fn nan_poisoned_rows_rank_deterministically() {
        // Row 0: NaN in the middle must sink below every finite score.
        // Row 1: all-NaN must still yield a full, stable permutation.
        let poisoned = Tensor::from_vec(
            vec![0.1, f32::NAN, 0.2, f32::NAN, f32::NAN, f32::NAN],
            &[2, 3],
        );
        let r = rank_images(&poisoned, 0);
        assert_eq!(r[0], vec![2, 0, 1]);
        assert_eq!(r[1], vec![0, 1, 2]);

        let s = MatchingSet::top1(&poisoned);
        assert_eq!(s.pairs[0].1, 2, "top1 must never pick a NaN over a finite score");
        assert_eq!(s.pairs[1].1, 0, "all-NaN row falls back to the first index");

        let t = MatchingSet::thresholded(&poisoned, 0.0);
        assert_eq!(t.len(), 2, "NaN never clears a threshold");
    }

    #[test]
    fn rank_row_matches_rank_images_and_truncates() {
        let row = [0.5, f32::NAN, 0.9, 0.5];
        assert_eq!(rank_row(&row, 0), vec![2, 0, 3, 1]);
        assert_eq!(rank_row(&row, 2), vec![2, 0]);
    }

    /// The bounded-heap path must return exactly the full-sort prefix on
    /// adversarial rows: duplicates (index ties), NaN poison, ±0.0, and
    /// every cutoff k — including k small enough to take the heap path and
    /// k large enough to take the sort path.
    #[test]
    fn partial_select_matches_full_sort_prefix() {
        let mut rows: Vec<Vec<f32>> = vec![
            vec![0.5; 64],
            (0..64).map(|i| (i as f32 * 0.37).sin()).collect(),
            (0..64).map(|i| if i % 5 == 0 { f32::NAN } else { i as f32 % 7.0 }).collect(),
            vec![f32::NAN; 64],
        ];
        let mut zeros: Vec<f32> = (0..64).map(|i| if i % 2 == 0 { 0.0 } else { -0.0 }).collect();
        zeros[10] = f32::INFINITY;
        zeros[11] = f32::NEG_INFINITY;
        rows.push(zeros);
        for row in &rows {
            let full = {
                let mut idx: Vec<usize> = (0..row.len()).collect();
                idx.sort_by(|&a, &b| score_cmp(row[b], row[a]));
                idx
            };
            for k in 1..=row.len() {
                assert_eq!(rank_row(row, k), full[..k].to_vec(), "k={k} row={row:?}");
                assert_eq!(rank_row_partial(row, k), full[..k].to_vec(), "partial k={k}");
            }
        }
    }

    #[test]
    fn precision_counts_gold() {
        let s = MatchingSet::top1(&scores());
        let p = s.precision(|e, i| e == 0 && i == 1);
        assert!((p - 0.5).abs() < 1e-6);
        assert_eq!(MatchingSet { pairs: vec![] }.precision(|_, _| true), 0.0);
    }
}
