//! Algorithm 1: the CrossEM prompt-tuning loop.
//!
//! Entity pairs are split into random mini-batches; each batch builds
//! prompts for its vertices, encodes them with the (trainable) text tower,
//! pairs them against frozen image embeddings, and optimises the
//! unsupervised contrastive loss. The image tower and temperature are
//! frozen (Sec. II-C), so image embeddings are computed once up front —
//! exactly the optimisation the frozen tower licenses.

use std::time::Instant;

use cem_clip::{Clip, Tokenizer};
use cem_data::EmDataset;
use cem_nn::Module;
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{memory, no_grad, Tensor};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::{PromptKind, TrainConfig};
use crate::loss::{combined_loss, orthogonal_loss, unsupervised_contrastive_loss};
use crate::matcher::rank_images;
use crate::metrics::{evaluate_rankings, Metrics};
use crate::prompt::{baseline_prompt, hard_prompt, HardPromptOptions, SoftPromptGenerator};

/// Per-epoch measurements (drives the paper's Table III / Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    pub seconds: f64,
    /// Peak live tensor bytes during the epoch (the GPU-memory proxy).
    pub peak_bytes: usize,
    pub mean_loss: f32,
    pub batches: usize,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Average seconds per epoch ("T" in the paper's tables).
    pub fn avg_epoch_seconds(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.seconds).sum::<f64>() / self.epochs.len() as f64
    }

    /// Maximum peak memory across epochs ("Mem").
    pub fn peak_bytes(&self) -> usize {
        self.epochs.iter().map(|e| e.peak_bytes).max().unwrap_or(0)
    }

    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.mean_loss).unwrap_or(f32::NAN)
    }
}

/// The CrossEM matcher: prompt construction + trainable text side + frozen
/// image side.
pub struct CrossEm<'a> {
    clip: &'a Clip,
    tokenizer: &'a Tokenizer,
    dataset: &'a EmDataset,
    config: TrainConfig,
    /// Token ids per entity: full prompt for baseline/hard, bare label for
    /// soft (whose prompt is continuous).
    prompt_ids: Vec<Vec<usize>>,
    soft: Option<SoftPromptGenerator>,
    /// `[n_entities, d_model]` frozen mean label-token embeddings (Eq. 7's
    /// `h(l_v)`); populated in soft mode.
    label_means: Option<Tensor>,
    /// `[|I|, embed_dim]` precomputed normalised image embeddings.
    image_embeddings: Tensor,
    /// `[n_entities, |I|]` zero-shot similarity prior from the *pre-trained*
    /// model with the baseline prompt, frozen at construction. Pseudo-
    /// positive mining adds it to the live scores so early tuning steps
    /// (when structure-aware prompts are still off-distribution) do not
    /// lock in arbitrary matches.
    prior_logits: Tensor,
    /// Apply the orthogonal prompt constraint (CrossEM⁺'s OPC; off for
    /// plain CrossEM).
    pub(crate) orthogonal: bool,
}

impl<'a> CrossEm<'a> {
    /// Prepare a matcher: build prompts, freeze the image tower, and
    /// precompute image embeddings.
    pub fn new<R: Rng>(
        clip: &'a Clip,
        tokenizer: &'a Tokenizer,
        dataset: &'a EmDataset,
        config: TrainConfig,
        rng: &mut R,
    ) -> Self {
        config.validate();
        clip.freeze_image_tower();

        let max_len = config.max_prompt_len.min(clip.text.max_len());
        let prompt_ids: Vec<Vec<usize>> = match config.prompt {
            PromptKind::Baseline => (0..dataset.entity_count())
                .map(|e| {
                    let text = baseline_prompt(dataset.entity_label(e), config.photo_prefix);
                    tokenizer.encode(&text, max_len).0
                })
                .collect(),
            PromptKind::Hard => {
                let options = HardPromptOptions {
                    hops: config.hops,
                    photo_prefix: config.photo_prefix,
                    max_subprompts: config.max_subprompts,
                };
                dataset
                    .entities
                    .iter()
                    .map(|&v| {
                        let text = hard_prompt(&dataset.graph, v, &options);
                        tokenizer.encode(&text, max_len).0
                    })
                    .collect()
            }
            PromptKind::Soft => (0..dataset.entity_count())
                .map(|e| tokenizer.encode(dataset.entity_label(e), max_len).0)
                .collect(),
        };

        let (soft, label_means) = if config.prompt == PromptKind::Soft {
            let generator = SoftPromptGenerator::new(
                &dataset.graph,
                &clip.text,
                tokenizer,
                config.soft_backend,
                config.alpha,
                rng,
            );
            let means = no_grad(|| {
                let table = clip.text.token_embedding_table();
                let d = clip.text.d_model();
                let rows: Vec<Tensor> = (0..dataset.entity_count())
                    .map(|e| {
                        let ids = tokenizer.tokenize(dataset.entity_label(e));
                        if ids.is_empty() {
                            Tensor::zeros(&[d])
                        } else {
                            table.gather_rows(&ids).mean_axis0()
                        }
                    })
                    .collect();
                Tensor::stack_rows(&rows)
            })
            .detach();
            (Some(generator), Some(means))
        } else {
            (None, None)
        };

        let image_embeddings = no_grad(|| {
            let refs: Vec<&cem_clip::Image> = dataset.images.iter().collect();
            let mut parts = Vec::new();
            for chunk in refs.chunks(64) {
                parts.push(clip.encode_images(chunk));
            }
            Tensor::concat_rows(&parts)
        })
        .detach();

        let prior_logits = no_grad(|| {
            let prompts: Vec<Vec<usize>> = (0..dataset.entity_count())
                .map(|e| {
                    let text = baseline_prompt(dataset.entity_label(e), config.photo_prefix);
                    tokenizer.encode(&text, max_len).0
                })
                .collect();
            let mut parts = Vec::new();
            for chunk in prompts.chunks(32) {
                parts.push(clip.encode_texts(chunk));
            }
            let text_emb = Tensor::concat_rows(&parts);
            clip.similarity_logits(&text_emb, &image_embeddings)
        })
        .detach();

        CrossEm {
            clip,
            tokenizer,
            dataset,
            config,
            prompt_ids,
            soft,
            label_means,
            image_embeddings,
            prior_logits,
            orthogonal: false,
        }
    }

    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    pub(crate) fn dataset(&self) -> &EmDataset {
        self.dataset
    }

    pub(crate) fn clip(&self) -> &Clip {
        self.clip
    }

    pub(crate) fn tokenizer(&self) -> &Tokenizer {
        self.tokenizer
    }

    /// The precomputed normalised image embeddings `[|I|, embed_dim]`.
    pub fn image_embeddings(&self) -> &Tensor {
        &self.image_embeddings
    }

    /// Encode a batch of entity indices into normalised joint-space vectors
    /// `[B, embed_dim]`. For soft prompts, also returns the raw prompt
    /// matrix `[B, d_model]` the orthogonal constraint applies to.
    pub(crate) fn encode_entities(&self, batch: &[usize]) -> (Tensor, Option<Tensor>) {
        assert!(!batch.is_empty(), "empty entity batch");
        match &self.soft {
            None => {
                let rows: Vec<Tensor> =
                    batch.iter().map(|&e| self.clip.text.encode_ids(&self.prompt_ids[e])).collect();
                (Tensor::stack_rows(&rows).l2_normalize_rows(), None)
            }
            Some(generator) => {
                let vertex_ids: Vec<usize> =
                    batch.iter().map(|&e| self.dataset.entities[e].0).collect();
                let prompts = generator.prompts_for(&vertex_ids);
                let means =
                    self.label_means.as_ref().expect("soft mode has label means").gather_rows(batch);
                let injected = generator.input_tokens(&means, &prompts); // [B, d_model]
                let rows: Vec<Tensor> = batch
                    .iter()
                    .enumerate()
                    .map(|(bi, &e)| {
                        let ids = &self.prompt_ids[e];
                        let emb = self.clip.text.embed_ids(ids); // [T, d]
                        let t = emb.shape().dim(0);
                        // Splice the prompt token between [CLS] and the rest.
                        let seq = Tensor::concat_rows(&[
                            emb.slice_rows(0, 1),
                            injected.slice_rows(bi, bi + 1),
                            emb.slice_rows(1, t),
                        ]);
                        self.clip.text.forward_embeddings(&seq)
                    })
                    .collect();
                (Tensor::stack_rows(&rows).l2_normalize_rows(), Some(prompts))
            }
        }
    }

    /// Trainable parameters: the selected text-side scope plus soft-prompt
    /// state.
    pub fn trainable_params(&self) -> Vec<Tensor> {
        let mut params = Vec::new();
        match self.config.tune_scope {
            crate::config::TuneScope::Full => params.extend(self.clip.text.params()),
            crate::config::TuneScope::Head => {
                params.extend(self.clip.text.head_params());
                params.extend(self.clip.text.embedding_params());
            }
        }
        if let Some(generator) = &self.soft {
            params.extend(generator.params());
        }
        params
    }

    /// One optimisation step over an explicit `(vertices, images)`
    /// mini-batch; returns the loss value. Shared by Algorithm 1 and the
    /// CrossEM⁺ trainer.
    ///
    /// The positive set `X_p` is "collected from the pairs with top
    /// similarity" (Sec. II-B): each vertex's best-matching image over the
    /// *whole* repository (cheap — image embeddings are frozen and
    /// precomputed) is injected into the batch as its pseudo-positive; the
    /// remaining batch images act as `X_n`. Mining globally rather than
    /// within the random batch keeps self-training from reinforcing
    /// arbitrary in-batch matches.
    pub(crate) fn train_step(
        &self,
        opt: &mut AdamW,
        vertex_batch: &[usize],
        image_batch: &[usize],
    ) -> f32 {
        let (text_emb, prompts) = self.encode_entities(vertex_batch);

        // Mine global pseudo-positives with the current prompts, anchored
        // by the frozen zero-shot prior (no grad).
        let mined: Vec<usize> = no_grad(|| {
            let live = self
                .clip
                .similarity_logits(&text_emb.detach(), &self.image_embeddings);
            let prior = self
                .prior_logits
                .gather_rows(vertex_batch)
                .mul_scalar(self.config.mining_prior_weight);
            live.add(&prior).argmax_rows()
        });
        let mut images: Vec<usize> = image_batch.to_vec();
        let mut targets = Vec::with_capacity(vertex_batch.len());
        for &img in &mined {
            match images.iter().position(|&x| x == img) {
                Some(pos) => targets.push(pos),
                None => {
                    images.push(img);
                    targets.push(images.len() - 1);
                }
            }
        }

        let image_emb = self.image_embeddings.gather_rows(&images);
        let logits = self.clip.similarity_logits(&text_emb, &image_emb);
        let l_con = unsupervised_contrastive_loss(&logits, &targets);
        let loss = if self.orthogonal {
            combined_loss(l_con, prompts.as_ref().map(orthogonal_loss), self.config.beta)
        } else {
            l_con
        };
        let value = loss.item();
        opt.zero_grad();
        loss.backward();
        opt.clip_grad_norm(self.config.clip_norm);
        opt.step();
        value
    }

    /// Algorithm 1: random mini-batch prompt tuning.
    pub fn train<R: Rng>(&self, rng: &mut R) -> TrainReport {
        let mut opt = AdamW::new(self.trainable_params(), self.config.lr);
        let mut entity_order: Vec<usize> = (0..self.dataset.entity_count()).collect();
        let mut image_order: Vec<usize> = (0..self.dataset.image_count()).collect();
        let mut report = TrainReport::default();

        for _epoch in 0..self.config.epochs {
            memory::reset_peak();
            let start = Instant::now();
            entity_order.shuffle(rng);
            image_order.shuffle(rng);
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            for vertex_chunk in entity_order.chunks(self.config.batch_vertices) {
                for image_chunk in image_order.chunks(self.config.batch_images) {
                    if image_chunk.len() < 2 {
                        continue;
                    }
                    loss_sum += self.train_step(&mut opt, vertex_chunk, image_chunk);
                    batches += 1;
                }
            }
            report.epochs.push(EpochStats {
                seconds: start.elapsed().as_secs_f64(),
                peak_bytes: memory::peak_bytes(),
                mean_loss: if batches > 0 { loss_sum / batches as f32 } else { f32::NAN },
                batches,
            });
        }
        report
    }

    /// Matching probabilities (Eq. 4) for all entities against all images:
    /// `[n_entities, n_images]`.
    pub fn matching_matrix(&self) -> Tensor {
        no_grad(|| {
            let all: Vec<usize> = (0..self.dataset.entity_count()).collect();
            let mut parts = Vec::new();
            for chunk in all.chunks(self.config.batch_vertices.max(8)) {
                let (emb, _) = self.encode_entities(chunk);
                parts.push(emb);
            }
            let text_emb = Tensor::concat_rows(&parts);
            self.clip.matching_probabilities(&text_emb, &self.image_embeddings)
        })
    }

    /// Rank all images per entity and compute Hits@k / MRR against the
    /// dataset's gold pairs.
    pub fn evaluate(&self) -> Metrics {
        let probabilities = self.matching_matrix();
        let rankings = rank_images(&probabilities, 0);
        evaluate_rankings(&rankings, |entity, image| self.dataset.is_match(entity, image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cem_clip::{ClipConfig, Image};
    use cem_data::AttributePool;
    use cem_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A micro dataset (2 entities, 4 images) and an untrained tiny CLIP —
    /// enough to exercise every code path cheaply. End-to-end learning
    /// tests live in the workspace `tests/` directory.
    fn micro() -> (Clip, Tokenizer, EmDataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut graph = Graph::new();
        let a = graph.add_vertex("white bird");
        let b = graph.add_vertex("black bird");
        let white = graph.add_vertex("white");
        let black = graph.add_vertex("black");
        graph.add_edge(a, white, "has color");
        graph.add_edge(b, black, "has color");
        let tokenizer =
            Tokenizer::build(["a photo of white black bird has color in and"]);
        let mk_img = |seed: f32| {
            Image::from_patches(vec![vec![seed; 6], vec![seed * 0.5; 6], vec![-seed; 6]])
        };
        let dataset = EmDataset {
            name: "micro".into(),
            graph,
            entities: vec![a, b],
            classes: vec![
                cem_data::ClassSpec { name: "white bird".into(), signature: vec![], name_reveals: 0 },
                cem_data::ClassSpec { name: "black bird".into(), signature: vec![], name_reveals: 0 },
            ],
            images: vec![mk_img(1.0), mk_img(-1.0), mk_img(0.8), mk_img(-0.7)],
            image_gold: vec![0, 1, 0, 1],
            pool: AttributePool::synthesize(2, 2),
        };
        dataset.validate();
        let clip = Clip::new(ClipConfig::tiny(tokenizer.vocab_size(), 6), &mut rng);
        (clip, tokenizer, dataset, rng)
    }

    fn config(prompt: PromptKind) -> TrainConfig {
        TrainConfig {
            prompt,
            epochs: 1,
            batch_vertices: 2,
            batch_images: 4,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn baseline_and_hard_prompts_tokenised() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let baseline = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Baseline), &mut rng);
        let hard = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
        // Hard prompts include neighbour structure -> longer than baseline.
        assert!(hard.prompt_ids[0].len() > baseline.prompt_ids[0].len());
    }

    #[test]
    fn encode_entities_shapes() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        for kind in [PromptKind::Baseline, PromptKind::Hard, PromptKind::Soft] {
            let m = CrossEm::new(&clip, &tokenizer, &dataset, config(kind), &mut rng);
            let (emb, prompts) = m.encode_entities(&[0, 1]);
            assert_eq!(emb.dims(), &[2, clip.embed_dim()]);
            assert_eq!(prompts.is_some(), kind == PromptKind::Soft);
        }
    }

    #[test]
    fn train_runs_and_records_stats() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
        let report = m.train(&mut rng);
        assert_eq!(report.epochs.len(), 1);
        let stats = report.epochs[0];
        assert!(stats.batches >= 1);
        assert!(stats.mean_loss.is_finite());
        assert!(stats.peak_bytes > 0);
        assert!(report.avg_epoch_seconds() > 0.0);
    }

    #[test]
    fn soft_training_touches_soft_params() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Soft), &mut rng);
        let before: Vec<f32> = m.soft.as_ref().unwrap().params()[0].to_vec();
        m.train(&mut rng);
        let after: Vec<f32> = m.soft.as_ref().unwrap().params()[0].to_vec();
        assert!(before.iter().zip(&after).any(|(x, y)| (x - y).abs() > 1e-7));
    }

    #[test]
    fn matching_matrix_rows_are_distributions() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Baseline), &mut rng);
        let p = m.matching_matrix();
        assert_eq!(p.dims(), &[2, 4]);
        for r in 0..2 {
            let s: f32 = (0..4).map(|c| p.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn evaluate_produces_metrics() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Baseline), &mut rng);
        let metrics = m.evaluate();
        assert_eq!(metrics.queries, 2);
        assert!(metrics.mrr > 0.0); // ranking always finds the gold eventually
        assert!(metrics.hits_at_5 >= metrics.hits_at_3);
        assert!(metrics.hits_at_3 >= metrics.hits_at_1);
    }

    #[test]
    fn image_tower_stays_frozen_through_training() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
        let before: Vec<f32> = clip.image.params()[0].to_vec();
        m.train(&mut rng);
        let after: Vec<f32> = clip.image.params()[0].to_vec();
        assert_eq!(before, after);
    }
}
