//! Algorithm 1: the CrossEM prompt-tuning loop.
//!
//! Entity pairs are split into random mini-batches; each batch builds
//! prompts for its vertices, encodes them with the (trainable) text tower,
//! pairs them against frozen image embeddings, and optimises the
//! unsupervised contrastive loss. The image tower and temperature are
//! frozen (Sec. II-C), so image embeddings are computed once up front —
//! exactly the optimisation the frozen tower licenses.
//!
//! The loop is wrapped in a resilience layer (see DESIGN.md, "Failure
//! handling & resume"):
//!
//! * a [`DivergenceGuard`] inspects every batch's loss and pre-clip
//!   gradient norm; a tripped guard skips the poisoned step, rolls the
//!   parameters and optimiser back to the last good in-memory snapshot,
//!   and backs off the learning rate, with a bounded retry budget;
//! * [`TrainOptions::checkpoints`] turns on durable end-of-epoch
//!   checkpoints (CEMT v2, atomic rename, rotating `latest`/`prev`) that
//!   capture parameters, AdamW moments, and the run seed — a killed run
//!   resumed via [`CrossEm::train_with_options`] replays the exact epoch
//!   shuffles the uninterrupted run would have used and reaches the same
//!   parameters;
//! * [`TrainOptions::injector`] is the deterministic fault-injection seam
//!   the `cem-bench` fault drills use.

use std::time::Instant;

use cem_clip::{Clip, Tokenizer};
use cem_obs::{cem_debug, cem_info, Event, ObsSession};
use cem_data::EmDataset;
use cem_nn::Module;
use cem_tensor::io::StateDict;
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{memory, no_grad, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::checkpoint::{
    apply_train_state, config_fingerprint, derive_seed, encode_train_state, CheckpointManager,
    ResumeError,
};
use crate::config::{PromptKind, TrainConfig};
use crate::guard::{DivergenceGuard, EpochAction, FaultInjector};
use crate::loss::{combined_loss, orthogonal_loss, unsupervised_contrastive_loss};
use crate::matcher::rank_images;
use crate::metrics::{evaluate_rankings, Metrics};
use crate::prompt::{baseline_prompt, hard_prompt, HardPromptOptions, SoftPromptGenerator};

/// Per-epoch measurements (drives the paper's Table III / Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    pub seconds: f64,
    /// Peak live tensor bytes during the epoch (the GPU-memory proxy).
    pub peak_bytes: usize,
    /// Mean loss over the *healthy* batches of the epoch.
    pub mean_loss: f32,
    /// Batches whose optimisation step was applied.
    pub batches: usize,
    /// Batches skipped because loss or gradients were non-finite.
    pub nan_batches: usize,
    /// Guard-triggered rollbacks to the last good snapshot.
    pub rollbacks: usize,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    pub epochs: Vec<EpochStats>,
    /// When the run resumed from a checkpoint: the number of epochs that
    /// had already completed before this process started.
    pub resumed_from: Option<usize>,
    /// The divergence guard exhausted its retry budget and stopped the run
    /// early; parameters are rolled back to the last good snapshot.
    pub diverged: bool,
}

impl TrainReport {
    /// Average seconds per epoch ("T" in the paper's tables).
    pub fn avg_epoch_seconds(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.seconds).sum::<f64>() / self.epochs.len() as f64
    }

    /// Maximum peak memory across epochs ("Mem").
    pub fn peak_bytes(&self) -> usize {
        self.epochs.iter().map(|e| e.peak_bytes).max().unwrap_or(0)
    }

    /// Mean loss of the last epoch, or `None` for a run that recorded no
    /// epochs (distinguishable from a diverged run's NaN).
    pub fn final_loss(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.mean_loss)
    }

    /// Total batches skipped for non-finite loss/gradients.
    pub fn nan_batches(&self) -> usize {
        self.epochs.iter().map(|e| e.nan_batches).sum()
    }

    /// Total guard-triggered rollbacks.
    pub fn rollbacks(&self) -> usize {
        self.epochs.iter().map(|e| e.rollbacks).sum()
    }
}

/// Run-time knobs that don't change *what* is learned, only how the run
/// survives faults. The default (no checkpoints, no injector) trains
/// exactly like the pre-resilience loop.
#[derive(Default)]
pub struct TrainOptions<'h> {
    /// Write a rotating durable checkpoint after every epoch, and resume
    /// from the freshest intact one when the directory already holds
    /// training state for this configuration.
    pub checkpoints: Option<&'h CheckpointManager>,
    /// Deterministic fault-injection hooks (testing only).
    pub injector: Option<&'h mut dyn FaultInjector>,
    /// Kernel thread budget for this run (`None` = inherit the process
    /// default: `CEM_THREADS` or the machine's parallelism). Any value
    /// produces bit-identical training results; this knob only trades wall
    /// clock.
    pub threads: Option<usize>,
    /// Telemetry session this run publishes epoch/batch events into
    /// (`None` = no structured events). Purely observational: training
    /// results are bit-identical with or without a session.
    pub obs: Option<&'h ObsSession>,
}

/// The optimisation engine shared by CrossEM (Alg. 1) and CrossEM⁺: owns
/// the optimiser, the divergence guard, and the in-memory good-state
/// snapshot used for rollback.
pub(crate) struct TrainEngine {
    pub(crate) opt: AdamW,
    params: Vec<Tensor>,
    guard: DivergenceGuard,
    base_lr: f32,
    lr_scale: f32,
    lr_backoff: f32,
    retries_left: usize,
    clip_norm: f32,
    global_batch: usize,
    diverged: bool,
    nan_batches: usize,
    rollbacks: usize,
    snapshot_params: Vec<Vec<f32>>,
    snapshot_opt: StateDict,
}

impl TrainEngine {
    pub(crate) fn new(params: Vec<Tensor>, config: &TrainConfig) -> Self {
        let opt = AdamW::new(params.clone(), config.lr);
        let mut engine = TrainEngine {
            opt,
            params,
            guard: DivergenceGuard::new(config.guard),
            base_lr: config.lr,
            lr_scale: 1.0,
            lr_backoff: config.guard.lr_backoff,
            retries_left: config.guard.max_retries,
            clip_norm: config.clip_norm,
            global_batch: 0,
            diverged: false,
            nan_batches: 0,
            rollbacks: 0,
            snapshot_params: Vec::new(),
            snapshot_opt: StateDict::new(),
        };
        engine.take_snapshot();
        engine
    }

    pub(crate) fn params(&self) -> &[Tensor] {
        &self.params
    }

    pub(crate) fn diverged(&self) -> bool {
        self.diverged
    }

    pub(crate) fn nan_batches(&self) -> usize {
        self.nan_batches
    }

    pub(crate) fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// Restore parameters + optimiser state from a checkpoint and make the
    /// restored state the rollback target. Returns the resume cursor.
    pub(crate) fn resume_from(
        &mut self,
        dict: &StateDict,
        fingerprint: u64,
    ) -> Result<crate::checkpoint::ResumeState, ResumeError> {
        let state = apply_train_state(dict, &self.params, &mut self.opt, fingerprint)?;
        self.take_snapshot();
        Ok(state)
    }

    /// Record the current parameters + optimiser state as the rollback
    /// target. Called at run start, after a resume, and at the end of
    /// every healthy epoch.
    pub(crate) fn take_snapshot(&mut self) {
        cem_obs::span!("phase.snapshot");
        self.snapshot_params = self.params.iter().map(|p| p.to_vec()).collect();
        self.snapshot_opt = self.opt.state_dict();
    }

    /// Reset the per-epoch fault counters.
    pub(crate) fn begin_epoch(&mut self) {
        self.nan_batches = 0;
        self.rollbacks = 0;
    }

    fn rollback(&mut self) {
        for (p, saved) in self.params.iter().zip(&self.snapshot_params) {
            p.copy_from_slice(saved);
        }
        self.opt
            .load_state_dict(&self.snapshot_opt)
            .expect("in-memory snapshot always matches its own optimiser");
        self.lr_scale *= self.lr_backoff;
        self.opt.set_lr(self.base_lr * self.lr_scale);
    }

    /// Backprop `loss`, let the injector tamper, clip, and — if the guard
    /// approves — apply the optimisation step. Returns the loss value for
    /// healthy batches, `None` for skipped ones. A tripped guard restores
    /// the last good snapshot and backs off the learning rate; once the
    /// retry budget is spent it marks the run diverged instead.
    pub(crate) fn apply(
        &mut self,
        loss: Tensor,
        injector: Option<&mut (dyn FaultInjector + '_)>,
    ) -> Option<f32> {
        cem_obs::span!("phase.step");
        let value = loss.item();
        self.opt.zero_grad();
        loss.backward();
        if let Some(inj) = injector {
            inj.after_backward(self.global_batch, &self.params);
        }
        self.global_batch += 1;
        let grad_norm = self.opt.clip_grad_norm(self.clip_norm);
        let verdict = self.guard.observe(value, grad_norm);
        if verdict.is_healthy() {
            self.opt.step();
            return Some(value);
        }
        if verdict.is_non_finite() {
            self.nan_batches += 1;
        }
        self.rollbacks += 1;
        self.rollback();
        if self.retries_left == 0 {
            self.diverged = true;
        } else {
            self.retries_left -= 1;
        }
        cem_obs::counter_add!("guard.trips", 1);
        cem_obs::emit(|| {
            Event::new("guard_trip")
                .field("verdict", verdict.label())
                .field("loss", value as f64)
                .field("diverged", self.diverged)
        });
        cem_info!(
            "guard trip: verdict={} loss={value} diverged={}",
            verdict.label(),
            self.diverged
        );
        None
    }
}

/// The CrossEM matcher: prompt construction + trainable text side + frozen
/// image side.
pub struct CrossEm<'a> {
    clip: &'a Clip,
    tokenizer: &'a Tokenizer,
    dataset: &'a EmDataset,
    config: TrainConfig,
    /// Token ids per entity: full prompt for baseline/hard, bare label for
    /// soft (whose prompt is continuous).
    prompt_ids: Vec<Vec<usize>>,
    soft: Option<SoftPromptGenerator>,
    /// `[n_entities, d_model]` frozen mean label-token embeddings (Eq. 7's
    /// `h(l_v)`); populated in soft mode.
    label_means: Option<Tensor>,
    /// `[|I|, embed_dim]` precomputed normalised image embeddings.
    image_embeddings: Tensor,
    /// `[n_entities, |I|]` zero-shot similarity prior from the *pre-trained*
    /// model with the baseline prompt, frozen at construction. Pseudo-
    /// positive mining adds it to the live scores so early tuning steps
    /// (when structure-aware prompts are still off-distribution) do not
    /// lock in arbitrary matches.
    prior_logits: Tensor,
    /// Apply the orthogonal prompt constraint (CrossEM⁺'s OPC; off for
    /// plain CrossEM).
    pub(crate) orthogonal: bool,
}

impl<'a> CrossEm<'a> {
    /// Prepare a matcher: build prompts, freeze the image tower, and
    /// precompute image embeddings.
    pub fn new<R: Rng>(
        clip: &'a Clip,
        tokenizer: &'a Tokenizer,
        dataset: &'a EmDataset,
        config: TrainConfig,
        rng: &mut R,
    ) -> Self {
        config.validate();
        clip.freeze_image_tower();

        let max_len = config.max_prompt_len.min(clip.text.max_len());
        let prompt_ids: Vec<Vec<usize>> = {
            cem_obs::span!("setup.prompts");
            match config.prompt {
                PromptKind::Baseline => (0..dataset.entity_count())
                    .map(|e| {
                        let text = baseline_prompt(dataset.entity_label(e), config.photo_prefix);
                        tokenizer.encode(&text, max_len).0
                    })
                    .collect(),
                PromptKind::Hard => {
                    let options = HardPromptOptions {
                        hops: config.hops,
                        photo_prefix: config.photo_prefix,
                        max_subprompts: config.max_subprompts,
                    };
                    dataset
                        .entities
                        .iter()
                        .map(|&v| {
                            let text = hard_prompt(&dataset.graph, v, &options);
                            tokenizer.encode(&text, max_len).0
                        })
                        .collect()
                }
                PromptKind::Soft => (0..dataset.entity_count())
                    .map(|e| tokenizer.encode(dataset.entity_label(e), max_len).0)
                    .collect(),
            }
        };

        let (soft, label_means) = if config.prompt == PromptKind::Soft {
            cem_obs::span!("setup.soft");
            let generator = SoftPromptGenerator::new(
                &dataset.graph,
                &clip.text,
                tokenizer,
                config.soft_backend,
                config.alpha,
                rng,
            );
            let means = no_grad(|| {
                let table = clip.text.token_embedding_table();
                let d = clip.text.d_model();
                let rows: Vec<Tensor> = (0..dataset.entity_count())
                    .map(|e| {
                        let ids = tokenizer.tokenize(dataset.entity_label(e));
                        if ids.is_empty() {
                            Tensor::zeros(&[d])
                        } else {
                            table.gather_rows(&ids).mean_axis0()
                        }
                    })
                    .collect();
                Tensor::stack_rows(&rows)
            })
            .detach();
            (Some(generator), Some(means))
        } else {
            (None, None)
        };

        let image_embeddings = no_grad(|| {
            cem_obs::span!("setup.images");
            let refs: Vec<&cem_clip::Image> = dataset.images.iter().collect();
            let mut parts = Vec::new();
            for chunk in refs.chunks(64) {
                parts.push(clip.encode_images(chunk));
            }
            Tensor::concat_rows(&parts)
        })
        .detach();

        let prior_logits = no_grad(|| {
            cem_obs::span!("setup.prior");
            let prompts: Vec<Vec<usize>> = (0..dataset.entity_count())
                .map(|e| {
                    let text = baseline_prompt(dataset.entity_label(e), config.photo_prefix);
                    tokenizer.encode(&text, max_len).0
                })
                .collect();
            let mut parts = Vec::new();
            for chunk in prompts.chunks(32) {
                parts.push(clip.encode_texts(chunk));
            }
            let text_emb = Tensor::concat_rows(&parts);
            clip.similarity_logits(&text_emb, &image_embeddings)
        })
        .detach();

        CrossEm {
            clip,
            tokenizer,
            dataset,
            config,
            prompt_ids,
            soft,
            label_means,
            image_embeddings,
            prior_logits,
            orthogonal: false,
        }
    }

    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    pub(crate) fn dataset(&self) -> &EmDataset {
        self.dataset
    }

    pub(crate) fn clip(&self) -> &Clip {
        self.clip
    }

    pub(crate) fn tokenizer(&self) -> &Tokenizer {
        self.tokenizer
    }

    /// The precomputed normalised image embeddings `[|I|, embed_dim]`.
    pub fn image_embeddings(&self) -> &Tensor {
        &self.image_embeddings
    }

    /// Encode a batch of entity indices into normalised joint-space vectors
    /// `[B, embed_dim]`. For soft prompts, also returns the raw prompt
    /// matrix `[B, d_model]` the orthogonal constraint applies to.
    pub(crate) fn encode_entities(&self, batch: &[usize]) -> (Tensor, Option<Tensor>) {
        assert!(!batch.is_empty(), "empty entity batch");
        match &self.soft {
            None => {
                let rows: Vec<Tensor> =
                    batch.iter().map(|&e| self.clip.text.encode_ids(&self.prompt_ids[e])).collect();
                (Tensor::stack_rows(&rows).l2_normalize_rows(), None)
            }
            Some(generator) => {
                let vertex_ids: Vec<usize> =
                    batch.iter().map(|&e| self.dataset.entities[e].0).collect();
                let prompts = generator.prompts_for(&vertex_ids);
                let means =
                    self.label_means.as_ref().expect("soft mode has label means").gather_rows(batch);
                let injected = generator.input_tokens(&means, &prompts); // [B, d_model]
                let rows: Vec<Tensor> = batch
                    .iter()
                    .enumerate()
                    .map(|(bi, &e)| {
                        let ids = &self.prompt_ids[e];
                        let emb = self.clip.text.embed_ids(ids); // [T, d]
                        let t = emb.shape().dim(0);
                        // Splice the prompt token between [CLS] and the rest.
                        let seq = Tensor::concat_rows(&[
                            emb.slice_rows(0, 1),
                            injected.slice_rows(bi, bi + 1),
                            emb.slice_rows(1, t),
                        ]);
                        self.clip.text.forward_embeddings(&seq)
                    })
                    .collect();
                (Tensor::stack_rows(&rows).l2_normalize_rows(), Some(prompts))
            }
        }
    }

    /// Trainable parameters: the selected text-side scope plus soft-prompt
    /// state.
    pub fn trainable_params(&self) -> Vec<Tensor> {
        let mut params = Vec::new();
        match self.config.tune_scope {
            crate::config::TuneScope::Full => params.extend(self.clip.text.params()),
            crate::config::TuneScope::Head => {
                params.extend(self.clip.text.head_params());
                params.extend(self.clip.text.embedding_params());
            }
        }
        if let Some(generator) = &self.soft {
            params.extend(generator.params());
        }
        params
    }

    /// The loss of one explicit `(vertices, images)` mini-batch; shared by
    /// Algorithm 1 and the CrossEM⁺ trainer. The caller backprops and
    /// steps through [`TrainEngine::apply`].
    ///
    /// The positive set `X_p` is "collected from the pairs with top
    /// similarity" (Sec. II-B): each vertex's best-matching image over the
    /// *whole* repository (cheap — image embeddings are frozen and
    /// precomputed) is injected into the batch as its pseudo-positive; the
    /// remaining batch images act as `X_n`. Mining globally rather than
    /// within the random batch keeps self-training from reinforcing
    /// arbitrary in-batch matches.
    pub(crate) fn batch_loss(&self, vertex_batch: &[usize], image_batch: &[usize]) -> Tensor {
        let (text_emb, prompts) = {
            cem_obs::span!("phase.encode");
            self.encode_entities(vertex_batch)
        };

        // Mine global pseudo-positives with the current prompts, anchored
        // by the frozen zero-shot prior (no grad).
        let mined: Vec<usize> = {
            cem_obs::span!("phase.mine");
            no_grad(|| {
                let live = self
                    .clip
                    .similarity_logits(&text_emb.detach(), &self.image_embeddings);
                let prior = self
                    .prior_logits
                    .gather_rows(vertex_batch)
                    .mul_scalar(self.config.mining_prior_weight);
                live.add(&prior).argmax_rows()
            })
        };
        cem_obs::span!("phase.loss");
        let mut images: Vec<usize> = image_batch.to_vec();
        let mut targets = Vec::with_capacity(vertex_batch.len());
        for &img in &mined {
            match images.iter().position(|&x| x == img) {
                Some(pos) => targets.push(pos),
                None => {
                    images.push(img);
                    targets.push(images.len() - 1);
                }
            }
        }

        let image_emb = self.image_embeddings.gather_rows(&images);
        let logits = self.clip.similarity_logits(&text_emb, &image_emb);
        let l_con = unsupervised_contrastive_loss(&logits, &targets);
        if self.orthogonal {
            combined_loss(l_con, prompts.as_ref().map(orthogonal_loss), self.config.beta)
        } else {
            l_con
        }
    }

    /// Algorithm 1: random mini-batch prompt tuning.
    pub fn train<R: Rng>(&self, rng: &mut R) -> TrainReport {
        self.train_with_options(rng, TrainOptions::default())
            .expect("training without checkpoints has no resume path to fail")
    }

    /// Algorithm 1 with the resilience layer: optional durable end-of-epoch
    /// checkpoints (with automatic resume) and fault injection.
    ///
    /// When checkpointing is on, epoch shuffles are derived from a run seed
    /// stored in the checkpoint rather than from `rng`'s evolving stream, so
    /// a killed-and-resumed run replays exactly the batches the
    /// uninterrupted run would have seen. Without checkpoints the RNG usage
    /// is byte-identical to the original loop.
    pub fn train_with_options<R: Rng>(
        &self,
        rng: &mut R,
        mut options: TrainOptions<'_>,
    ) -> Result<TrainReport, ResumeError> {
        let _threads = options.threads.map(cem_tensor::par::ThreadsGuard::new);
        let mut engine = TrainEngine::new(self.trainable_params(), &self.config);
        let fingerprint = config_fingerprint(&self.config);
        let mut report = TrainReport::default();
        let mut start_epoch = 0usize;

        let run_seed: Option<u64> = match options.checkpoints {
            None => None,
            Some(manager) => Some(match manager.load()? {
                Some((dict, _source)) => {
                    let state = engine.resume_from(&dict, fingerprint)?;
                    start_epoch = state.epochs_done.min(self.config.epochs);
                    report.resumed_from = Some(state.epochs_done);
                    state.seed
                }
                None => rng.gen::<u64>(),
            }),
        };

        if let Some(from) = report.resumed_from {
            cem_info!("resuming CrossEM run at epoch {from}");
        }
        cem_info!(
            "CrossEM training: {} epochs, {} entities, {} images",
            self.config.epochs,
            self.dataset.entity_count(),
            self.dataset.image_count()
        );

        let mut entity_order: Vec<usize> = (0..self.dataset.entity_count()).collect();
        let mut image_order: Vec<usize> = (0..self.dataset.image_count()).collect();

        'epochs: for epoch in start_epoch..self.config.epochs {
            memory::reset_peak();
            let start = Instant::now();
            if let Some(session) = options.obs {
                session.emit(Event::new("epoch_start").field("epoch", epoch as f64));
            }
            match run_seed {
                // Legacy stream: persistent orders, cumulative shuffles.
                None => {
                    entity_order.shuffle(rng);
                    image_order.shuffle(rng);
                }
                // Resumable stream: the epoch's shuffle depends only on
                // (run_seed, epoch), never on how we got here.
                Some(seed) => {
                    let mut epoch_rng = StdRng::seed_from_u64(derive_seed(seed, epoch as u64));
                    reset_identity(&mut entity_order);
                    reset_identity(&mut image_order);
                    entity_order.shuffle(&mut epoch_rng);
                    image_order.shuffle(&mut epoch_rng);
                }
            }
            engine.begin_epoch();
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            let mut batch_idx = 0usize;
            'batches: for vertex_chunk in entity_order.chunks(self.config.batch_vertices) {
                for image_chunk in image_order.chunks(self.config.batch_images) {
                    if image_chunk.len() < 2 {
                        continue;
                    }
                    let loss = self.batch_loss(vertex_chunk, image_chunk);
                    let applied = engine.apply(loss, options.injector.as_deref_mut());
                    if let Some(session) = options.obs {
                        session.emit(
                            Event::new("batch")
                                .field("epoch", epoch as f64)
                                .field("batch", batch_idx as f64)
                                .field("loss", applied.map_or(f64::NAN, |v| v as f64))
                                .field("healthy", applied.is_some()),
                        );
                    }
                    if let Some(value) = applied {
                        cem_debug!("epoch {epoch} batch {batch_idx}: loss={value}");
                        loss_sum += value;
                        batches += 1;
                    }
                    batch_idx += 1;
                    if engine.diverged() {
                        break 'batches;
                    }
                }
            }
            let stats = EpochStats {
                seconds: start.elapsed().as_secs_f64(),
                peak_bytes: memory::peak_bytes(),
                mean_loss: if batches > 0 { loss_sum / batches as f32 } else { f32::NAN },
                batches,
                nan_batches: engine.nan_batches(),
                rollbacks: engine.rollbacks(),
            };
            if let Some(session) = options.obs {
                session.emit(epoch_end_event(epoch, &stats));
            }
            cem_info!(
                "epoch {epoch}: mean_loss={} batches={} ({:.2}s)",
                stats.mean_loss,
                stats.batches,
                stats.seconds
            );
            report.epochs.push(stats);
            if engine.diverged() {
                report.diverged = true;
                break 'epochs;
            }
            engine.take_snapshot();
            if let (Some(manager), Some(seed)) = (options.checkpoints, run_seed) {
                let dict =
                    encode_train_state(engine.params(), &engine.opt, epoch + 1, seed, fingerprint);
                manager.save(&dict)?;
            }
            if let Some(inj) = options.injector.as_deref_mut() {
                if inj.after_epoch(epoch) == EpochAction::Abort {
                    break 'epochs;
                }
            }
        }
        Ok(report)
    }

    /// Matching probabilities (Eq. 4) for all entities against all images:
    /// `[n_entities, n_images]`.
    pub fn matching_matrix(&self) -> Tensor {
        cem_obs::span!("phase.match");
        no_grad(|| {
            let all: Vec<usize> = (0..self.dataset.entity_count()).collect();
            let mut parts = Vec::new();
            for chunk in all.chunks(self.config.batch_vertices.max(8)) {
                let (emb, _) = self.encode_entities(chunk);
                parts.push(emb);
            }
            let text_emb = Tensor::concat_rows(&parts);
            self.clip.matching_probabilities(&text_emb, &self.image_embeddings)
        })
    }

    /// Rank all images per entity and compute Hits@k / MRR against the
    /// dataset's gold pairs.
    pub fn evaluate(&self) -> Metrics {
        let probabilities = self.matching_matrix();
        cem_obs::span!("phase.rank");
        let rankings = rank_images(&probabilities, 0);
        evaluate_rankings(&rankings, |entity, image| self.dataset.is_match(entity, image))
    }
}

/// Render one epoch's stats as the `epoch_end` event (shared by both
/// trainers so the schema stays in one place).
pub(crate) fn epoch_end_event(epoch: usize, stats: &EpochStats) -> Event {
    Event::new("epoch_end")
        .field("epoch", epoch as f64)
        .field("seconds", stats.seconds)
        .field("mean_loss", stats.mean_loss as f64)
        .field("batches", stats.batches as f64)
        .field("nan_batches", stats.nan_batches as f64)
        .field("rollbacks", stats.rollbacks as f64)
        .field("peak_bytes", stats.peak_bytes as f64)
}

/// Reset a permutation buffer to `0..n` in place.
pub(crate) fn reset_identity(order: &mut [usize]) {
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cem_clip::{ClipConfig, Image};
    use cem_data::AttributePool;
    use cem_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A micro dataset (2 entities, 4 images) and an untrained tiny CLIP —
    /// enough to exercise every code path cheaply. End-to-end learning
    /// tests live in the workspace `tests/` directory.
    fn micro() -> (Clip, Tokenizer, EmDataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut graph = Graph::new();
        let a = graph.add_vertex("white bird");
        let b = graph.add_vertex("black bird");
        let white = graph.add_vertex("white");
        let black = graph.add_vertex("black");
        graph.add_edge(a, white, "has color");
        graph.add_edge(b, black, "has color");
        let tokenizer =
            Tokenizer::build(["a photo of white black bird has color in and"]);
        let mk_img = |seed: f32| {
            Image::from_patches(vec![vec![seed; 6], vec![seed * 0.5; 6], vec![-seed; 6]])
        };
        let dataset = EmDataset {
            name: "micro".into(),
            graph,
            entities: vec![a, b],
            classes: vec![
                cem_data::ClassSpec { name: "white bird".into(), signature: vec![], name_reveals: 0 },
                cem_data::ClassSpec { name: "black bird".into(), signature: vec![], name_reveals: 0 },
            ],
            images: vec![mk_img(1.0), mk_img(-1.0), mk_img(0.8), mk_img(-0.7)],
            image_gold: vec![0, 1, 0, 1],
            pool: AttributePool::synthesize(2, 2),
        };
        dataset.validate();
        let clip = Clip::new(ClipConfig::tiny(tokenizer.vocab_size(), 6), &mut rng);
        (clip, tokenizer, dataset, rng)
    }

    fn config(prompt: PromptKind) -> TrainConfig {
        TrainConfig {
            prompt,
            epochs: 1,
            batch_vertices: 2,
            batch_images: 4,
            ..TrainConfig::default()
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cem_trainer_test_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn baseline_and_hard_prompts_tokenised() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let baseline = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Baseline), &mut rng);
        let hard = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
        // Hard prompts include neighbour structure -> longer than baseline.
        assert!(hard.prompt_ids[0].len() > baseline.prompt_ids[0].len());
    }

    #[test]
    fn encode_entities_shapes() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        for kind in [PromptKind::Baseline, PromptKind::Hard, PromptKind::Soft] {
            let m = CrossEm::new(&clip, &tokenizer, &dataset, config(kind), &mut rng);
            let (emb, prompts) = m.encode_entities(&[0, 1]);
            assert_eq!(emb.dims(), &[2, clip.embed_dim()]);
            assert_eq!(prompts.is_some(), kind == PromptKind::Soft);
        }
    }

    #[test]
    fn train_runs_and_records_stats() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
        let report = m.train(&mut rng);
        assert_eq!(report.epochs.len(), 1);
        let stats = report.epochs[0];
        assert!(stats.batches >= 1);
        assert!(stats.mean_loss.is_finite());
        assert!(stats.peak_bytes > 0);
        assert_eq!(stats.nan_batches, 0);
        assert_eq!(stats.rollbacks, 0);
        assert!(!report.diverged);
        assert_eq!(report.resumed_from, None);
        assert!(report.avg_epoch_seconds() > 0.0);
    }

    #[test]
    fn soft_training_touches_soft_params() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Soft), &mut rng);
        let before: Vec<f32> = m.soft.as_ref().unwrap().params()[0].to_vec();
        m.train(&mut rng);
        let after: Vec<f32> = m.soft.as_ref().unwrap().params()[0].to_vec();
        assert!(before.iter().zip(&after).any(|(x, y)| (x - y).abs() > 1e-7));
    }

    #[test]
    fn matching_matrix_rows_are_distributions() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Baseline), &mut rng);
        let p = m.matching_matrix();
        assert_eq!(p.dims(), &[2, 4]);
        for r in 0..2 {
            let s: f32 = (0..4).map(|c| p.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn evaluate_produces_metrics() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Baseline), &mut rng);
        let metrics = m.evaluate();
        assert_eq!(metrics.queries, 2);
        assert!(metrics.mrr > 0.0); // ranking always finds the gold eventually
        assert!(metrics.hits_at_5 >= metrics.hits_at_3);
        assert!(metrics.hits_at_3 >= metrics.hits_at_1);
    }

    #[test]
    fn image_tower_stays_frozen_through_training() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
        let before: Vec<f32> = clip.image.params()[0].to_vec();
        m.train(&mut rng);
        let after: Vec<f32> = clip.image.params()[0].to_vec();
        assert_eq!(before, after);
    }

    /// Poisons the gradients of one chosen batch with NaN.
    struct NanAt(usize);

    impl FaultInjector for NanAt {
        fn after_backward(&mut self, global_batch: usize, params: &[Tensor]) {
            if global_batch == self.0 {
                let p = &params[0];
                p.set_grad(&vec![f32::NAN; p.numel()]);
            }
        }
    }

    /// Simulates a crash right after epoch `k`'s checkpoint is written.
    struct CrashAfterEpoch(usize);

    impl FaultInjector for CrashAfterEpoch {
        fn after_epoch(&mut self, epoch: usize) -> EpochAction {
            if epoch == self.0 {
                EpochAction::Abort
            } else {
                EpochAction::Continue
            }
        }
    }

    #[test]
    fn nan_injection_rolls_back_and_recovers() {
        let (clip, tokenizer, dataset, mut rng) = micro();
        // Small batches -> 4 batches per epoch, so a healthy batch follows
        // the poisoned one within each epoch.
        let cfg = TrainConfig {
            epochs: 2,
            batch_vertices: 1,
            batch_images: 2,
            ..config(PromptKind::Hard)
        };
        let m = CrossEm::new(&clip, &tokenizer, &dataset, cfg, &mut rng);
        let mut injector = NanAt(1);
        let report = m
            .train_with_options(
                &mut rng,
                TrainOptions { checkpoints: None, injector: Some(&mut injector), ..Default::default() },
            )
            .unwrap();
        assert_eq!(report.nan_batches(), 1);
        assert_eq!(report.rollbacks(), 1);
        assert!(!report.diverged);
        // The run survived: the last epoch's mean loss is finite, and no
        // NaN ever reached the parameters.
        assert!(report.final_loss().unwrap().is_finite());
        for p in m.trainable_params() {
            assert!(p.to_vec().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn relentless_nans_exhaust_retries_and_mark_divergence() {
        struct AlwaysNan;
        impl FaultInjector for AlwaysNan {
            fn after_backward(&mut self, _global_batch: usize, params: &[Tensor]) {
                let p = &params[0];
                p.set_grad(&vec![f32::NAN; p.numel()]);
            }
        }
        let (clip, tokenizer, dataset, mut rng) = micro();
        // 4 batches per epoch: enough trips to exhaust the retry budget.
        let cfg = TrainConfig {
            batch_vertices: 1,
            batch_images: 2,
            ..config(PromptKind::Hard)
        };
        let m = CrossEm::new(&clip, &tokenizer, &dataset, cfg, &mut rng);
        let mut injector = AlwaysNan;
        let report = m
            .train_with_options(
                &mut rng,
                TrainOptions { checkpoints: None, injector: Some(&mut injector), ..Default::default() },
            )
            .unwrap();
        assert!(report.diverged);
        // max_retries(3) rollbacks + the final trip that exhausted them.
        assert_eq!(report.rollbacks(), m.config().guard.max_retries + 1);
        assert_eq!(report.epochs.len(), 1, "run stops at the diverged epoch");
        // Parameters are rolled back to the pristine snapshot, not NaN.
        for p in m.trainable_params() {
            assert!(p.to_vec().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn crash_and_resume_matches_uninterrupted_run() {
        let cfg = TrainConfig { epochs: 3, ..config(PromptKind::Hard) };

        // Uninterrupted run with checkpointing on.
        let dir_a = tmp_dir("uninterrupted");
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, cfg, &mut rng);
        let manager = CheckpointManager::new(&dir_a).unwrap();
        let full = m
            .train_with_options(
                &mut rng,
                TrainOptions { checkpoints: Some(&manager), injector: None, ..Default::default() },
            )
            .unwrap();
        assert_eq!(full.epochs.len(), 3);
        let want: Vec<Vec<f32>> = m.trainable_params().iter().map(|p| p.to_vec()).collect();
        drop(m);

        // Same world, killed after epoch 1's checkpoint.
        let dir_b = tmp_dir("crashed");
        let manager_b = CheckpointManager::new(&dir_b).unwrap();
        {
            let (clip, tokenizer, dataset, mut rng) = micro();
            let m = CrossEm::new(&clip, &tokenizer, &dataset, cfg, &mut rng);
            let mut injector = CrashAfterEpoch(1);
            let partial = m
                .train_with_options(
                    &mut rng,
                    TrainOptions { checkpoints: Some(&manager_b), injector: Some(&mut injector), ..Default::default() },
                )
                .unwrap();
            assert_eq!(partial.epochs.len(), 2, "aborted after epoch index 1");
        }

        // "New process": rebuild the world from the same seed and resume.
        let (clip, tokenizer, dataset, mut rng) = micro();
        let m = CrossEm::new(&clip, &tokenizer, &dataset, cfg, &mut rng);
        let resumed = m
            .train_with_options(
                &mut rng,
                TrainOptions { checkpoints: Some(&manager_b), injector: None, ..Default::default() },
            )
            .unwrap();
        assert_eq!(resumed.resumed_from, Some(2));
        assert_eq!(resumed.epochs.len(), 1, "only the remaining epoch runs");

        let got: Vec<Vec<f32>> = m.trainable_params().iter().map(|p| p.to_vec()).collect();
        assert_eq!(want, got, "resumed run must be bit-faithful to the uninterrupted one");

        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn resume_rejects_checkpoint_from_different_config() {
        let dir = tmp_dir("fingerprint");
        let manager = CheckpointManager::new(&dir).unwrap();
        {
            let (clip, tokenizer, dataset, mut rng) = micro();
            let m = CrossEm::new(&clip, &tokenizer, &dataset, config(PromptKind::Hard), &mut rng);
            m.train_with_options(
                &mut rng,
                TrainOptions { checkpoints: Some(&manager), injector: None, ..Default::default() },
            )
            .unwrap();
        }
        let (clip, tokenizer, dataset, mut rng) = micro();
        let other = TrainConfig { lr: 1e-3, ..config(PromptKind::Hard) };
        let m = CrossEm::new(&clip, &tokenizer, &dataset, other, &mut rng);
        let err = m
            .train_with_options(
                &mut rng,
                TrainOptions { checkpoints: Some(&manager), injector: None, ..Default::default() },
            )
            .unwrap_err();
        assert!(matches!(err, ResumeError::FingerprintMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
