//! Divergence detection for the training loops.
//!
//! A single NaN batch (bad gradients from a degenerate similarity matrix,
//! an overflowing loss, a poisoned input) silently corrupts every later
//! optimisation step: AdamW moments absorb the NaN and the run never
//! recovers. The [`DivergenceGuard`] watches each batch's loss and
//! pre-clip gradient norm and trips on non-finite values or — when armed —
//! on a loss spike relative to a running EWMA. The trainers respond by
//! skipping the poisoned step, rolling back to the last good snapshot, and
//! halving the learning rate (see `TrainEngine` in [`crate::trainer`]).
//!
//! The [`FaultInjector`] trait is the deterministic testing seam the
//! `cem-bench` fault-drill harness uses to poison gradients and simulate
//! crashes at precise points without touching production code paths.

use cem_tensor::Tensor;

use crate::config::GuardConfig;

/// The guard's judgement on one observed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    Healthy,
    /// The loss itself is NaN/∞.
    NonFiniteLoss,
    /// The global gradient norm is NaN/∞ (loss may still print finite).
    NonFiniteGrad,
    /// The loss jumped more than `spike_factor` × the running EWMA.
    LossSpike { loss: f32, ewma: f32 },
}

impl GuardVerdict {
    pub fn is_healthy(&self) -> bool {
        matches!(self, GuardVerdict::Healthy)
    }

    /// Short machine-readable name used by `guard_trip` telemetry events.
    pub fn label(&self) -> &'static str {
        match self {
            GuardVerdict::Healthy => "healthy",
            GuardVerdict::NonFiniteLoss => "non_finite_loss",
            GuardVerdict::NonFiniteGrad => "non_finite_grad",
            GuardVerdict::LossSpike { .. } => "loss_spike",
        }
    }

    /// Whether this verdict indicates a non-finite (NaN/∞) batch.
    pub fn is_non_finite(&self) -> bool {
        matches!(self, GuardVerdict::NonFiniteLoss | GuardVerdict::NonFiniteGrad)
    }
}

/// Running loss statistics + trip logic. One guard instance lives for one
/// training run; it only updates its EWMA on healthy batches so a poisoned
/// batch cannot drag the baseline with it.
#[derive(Debug, Clone)]
pub struct DivergenceGuard {
    config: GuardConfig,
    ewma: Option<f32>,
    healthy_batches: usize,
}

impl DivergenceGuard {
    pub fn new(config: GuardConfig) -> Self {
        DivergenceGuard { config, ewma: None, healthy_batches: 0 }
    }

    /// The current loss EWMA, if any healthy batch has been observed.
    pub fn ewma(&self) -> Option<f32> {
        self.ewma
    }

    /// Judge one batch. Healthy observations update the EWMA.
    pub fn observe(&mut self, loss: f32, grad_norm: f32) -> GuardVerdict {
        if !self.config.enabled {
            return GuardVerdict::Healthy;
        }
        if !loss.is_finite() {
            return GuardVerdict::NonFiniteLoss;
        }
        if !grad_norm.is_finite() {
            return GuardVerdict::NonFiniteGrad;
        }
        if self.config.spike_factor > 1.0 && self.healthy_batches >= self.config.warmup_batches {
            if let Some(ewma) = self.ewma {
                // Floor the baseline so a near-zero EWMA doesn't turn
                // ordinary noise into a trip.
                let baseline = ewma.abs().max(1e-3);
                if loss > self.config.spike_factor * baseline {
                    return GuardVerdict::LossSpike { loss, ewma };
                }
            }
        }
        let alpha = self.config.ewma_alpha;
        self.ewma = Some(match self.ewma {
            None => loss,
            Some(prev) => alpha * loss + (1.0 - alpha) * prev,
        });
        self.healthy_batches += 1;
        GuardVerdict::Healthy
    }
}

/// What a fault injector tells the trainer to do at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochAction {
    Continue,
    /// Stop training now, as if the process died right after the epoch's
    /// checkpoint was written. Used to exercise crash/resume paths.
    Abort,
}

/// Deterministic fault-injection hooks, called from inside the training
/// loop. Production runs pass no injector; the `cem-bench` fault drills
/// implement this to poison a chosen batch's gradients or kill a run after
/// epoch `k`.
pub trait FaultInjector {
    /// Called after backpropagation and before gradient clipping for every
    /// batch, with a monotonically increasing global batch index.
    fn after_backward(&mut self, _global_batch: usize, _params: &[Tensor]) {}

    /// Called after each epoch completes (and after its checkpoint, if
    /// any, has been written).
    fn after_epoch(&mut self, _epoch: usize) -> EpochAction {
        EpochAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> GuardConfig {
        GuardConfig { spike_factor: 4.0, warmup_batches: 3, ..GuardConfig::default() }
    }

    #[test]
    fn finite_batches_are_healthy() {
        let mut g = DivergenceGuard::new(GuardConfig::default());
        for i in 0..20 {
            assert!(g.observe(1.0 + (i as f32) * 0.01, 0.5).is_healthy());
        }
        assert!(g.ewma().unwrap() > 1.0);
    }

    #[test]
    fn non_finite_loss_and_grad_trip() {
        let mut g = DivergenceGuard::new(GuardConfig::default());
        assert_eq!(g.observe(f32::NAN, 1.0), GuardVerdict::NonFiniteLoss);
        assert_eq!(g.observe(f32::INFINITY, 1.0), GuardVerdict::NonFiniteLoss);
        assert_eq!(g.observe(1.0, f32::NAN), GuardVerdict::NonFiniteGrad);
        assert!(g.observe(1.0, 1.0).is_healthy());
    }

    #[test]
    fn spike_requires_warmup_and_factor() {
        let mut g = DivergenceGuard::new(armed());
        // During warmup even a huge loss passes.
        assert!(g.observe(1.0, 1.0).is_healthy());
        assert!(g.observe(100.0, 1.0).is_healthy());
        assert!(g.observe(1.0, 1.0).is_healthy());
        // Armed now: settle the EWMA, then spike.
        for _ in 0..5 {
            assert!(g.observe(1.0, 1.0).is_healthy());
        }
        let verdict = g.observe(1_000.0, 1.0);
        assert!(matches!(verdict, GuardVerdict::LossSpike { .. }), "{verdict:?}");
        // The spike did not poison the EWMA.
        assert!(g.ewma().unwrap() < 50.0);
    }

    #[test]
    fn disabled_guard_accepts_nan() {
        let mut g = DivergenceGuard::new(GuardConfig::disabled());
        assert!(g.observe(f32::NAN, f32::NAN).is_healthy());
    }

    #[test]
    fn default_guard_has_spike_detection_off() {
        let mut g = DivergenceGuard::new(GuardConfig::default());
        for _ in 0..20 {
            g.observe(1.0, 1.0);
        }
        assert!(g.observe(1e9, 1.0).is_healthy(), "spike detection should be off by default");
    }
}
