//! Soft prompt `f_pro^s` (paper Eq. 6–7 and Figure 4b).
//!
//! Every graph vertex owns a trainable structural embedding, initialised
//! from the pre-trained LM's token embeddings of its label (the paper
//! initialises from BERT/RoBERTa; our stand-in is the pre-trained CLIP
//! token table). A graph aggregator (GNN or GraphSAGE, per the paper's
//! per-dataset choice) turns those into structure-aware features `h(v)`;
//! the prompt is
//!
//! `f_pro^s(v) = α·h(v) + (1−α)·Σ_{v_j ∈ N(v)} h(v_j)`           (Eq. 6)
//!
//! and enters the text encoder as an extra input token
//!
//! `h^l(v) = ReLU(W·(h(l_v) ⊕ f_pro^s(v)))`                      (Eq. 7)
//!
//! spliced between `[CLS]` and the label tokens.

use cem_clip::{TextEncoder, Tokenizer};
use cem_graph::Graph;
use cem_nn::{GnnLayer, GraphSageLayer, Linear, Module};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::config::SoftBackend;

enum Backend {
    Gnn(GnnLayer),
    Sage(GraphSageLayer),
}

/// Trainable soft prompt state over an entire graph.
pub struct SoftPromptGenerator {
    /// `[N, d_model]` trainable per-vertex base embeddings.
    base: Tensor,
    backend: Backend,
    /// Residual gate on the aggregator output: `h = base + gate·GNN(base)`.
    /// Initialised small so the prompt starts as a blend of *pre-trained*
    /// token embeddings (on-manifold for the frozen text tower) and the
    /// randomly-initialised aggregator fades in through training.
    gate: Tensor,
    /// Eq. 7's `W`: `2·d_model → d_model`.
    w: Linear,
    alpha: f32,
    adj: Vec<Vec<usize>>,
}

impl SoftPromptGenerator {
    /// Initialise from a graph and the pre-trained text tower. Every vertex
    /// base embedding is the mean of its label's token embeddings.
    pub fn new<R: Rng>(
        graph: &Graph,
        text: &TextEncoder,
        tokenizer: &Tokenizer,
        backend: SoftBackend,
        alpha: f32,
        rng: &mut R,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let d = text.d_model();
        let _n = graph.vertex_count();
        let base = no_grad(|| {
            let table = text.token_embedding_table();
            let rows: Vec<Tensor> = graph
                .vertices()
                .map(|v| {
                    let ids = tokenizer.tokenize(graph.vertex_label(v));
                    if ids.is_empty() {
                        Tensor::zeros(&[d])
                    } else {
                        table.gather_rows(&ids).mean_axis0()
                    }
                })
                .collect();
            Tensor::stack_rows(&rows)
        })
        .detach()
        .requires_grad();

        let backend = match backend {
            SoftBackend::Gnn => Backend::Gnn(GnnLayer::new(d, d, rng)),
            SoftBackend::GraphSage => Backend::Sage(GraphSageLayer::new(d, d, rng)),
        };

        // Eq. 7's W starts as [I; I]: the injected token begins as
        // `relu(h(l_v) + f_pro^s(v))` — a rectified blend of pre-trained
        // embeddings — instead of a random projection the frozen tower has
        // never seen. Training is free to move it anywhere.
        let w = Linear::new(2 * d, d, rng);
        {
            let mut data = w.weight().data_mut();
            let slice = data.as_mut_slice();
            slice.fill(0.0);
            for i in 0..d {
                slice[i * d + i] = 1.0; // top half: label mean
                slice[(d + i) * d + i] = 1.0; // bottom half: prompt
            }
        }

        SoftPromptGenerator {
            base,
            backend,
            gate: Tensor::scalar(0.05).requires_grad(),
            w,
            alpha,
            adj: graph.adjacency(),
        }
    }

    /// Structure-aware features `h` for all vertices: `[N, d_model]` —
    /// pre-trained base embeddings plus the gated aggregator residual.
    fn structural_features(&self) -> Tensor {
        let aggregated = match &self.backend {
            Backend::Gnn(layer) => layer.forward(&self.base, &self.adj),
            Backend::Sage(layer) => layer.forward(&self.base, &self.adj),
        };
        self.base.add(&aggregated.mul_scalar_tensor(&self.gate))
    }

    /// Eq. 6 for a batch of graph-vertex indices: `[B, d_model]`.
    pub fn prompts_for(&self, vertex_ids: &[usize]) -> Tensor {
        let h = self.structural_features();
        let own = h.gather_rows(vertex_ids).mul_scalar(self.alpha);
        let neigh_rows: Vec<Tensor> = vertex_ids
            .iter()
            .map(|&v| {
                let neighbors = &self.adj[v];
                if neighbors.is_empty() {
                    Tensor::zeros(&[h.shape().last_dim()])
                } else {
                    h.gather_rows(neighbors).sum_axis0()
                }
            })
            .collect();
        let neigh = Tensor::stack_rows(&neigh_rows).mul_scalar(1.0 - self.alpha);
        own.add(&neigh)
    }

    /// Eq. 7: combine the label representation with the soft prompt into
    /// the injected input token. `label_means` is `[B, d_model]` (mean label
    /// token embedding per batch element), `prompts` is `[B, d_model]`.
    pub fn input_tokens(&self, label_means: &Tensor, prompts: &Tensor) -> Tensor {
        self.w.forward(&label_means.concat_cols(prompts)).relu()
    }

    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }
}

impl Module for SoftPromptGenerator {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = vec![("base".to_string(), self.base.clone()), ("gate".to_string(), self.gate.clone())];
        match &self.backend {
            Backend::Gnn(layer) => v.extend(cem_nn::module::with_prefix("gnn", layer.named_params())),
            Backend::Sage(layer) => v.extend(cem_nn::module::with_prefix("sage", layer.named_params())),
        }
        v.extend(cem_nn::module::with_prefix("w", self.w.named_params()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cem_clip::text_encoder::TextEncoderConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(backend: SoftBackend) -> (Graph, TextEncoder, Tokenizer, SoftPromptGenerator) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        let a = g.add_vertex("white bird");
        let b = g.add_vertex("white");
        let c = g.add_vertex("long-wings");
        g.add_edge(a, b, "has color");
        g.add_edge(a, c, "has wings");
        let tokenizer = Tokenizer::build(["white bird long-wings has color wings"]);
        let text = TextEncoder::new(
            TextEncoderConfig {
                vocab_size: tokenizer.vocab_size(),
                d_model: 16,
                heads: 2,
                layers: 1,
                ffn_hidden: 32,
                max_len: 16,
                embed_dim: 8,
            },
            &mut rng,
        );
        let gen = SoftPromptGenerator::new(&g, &text, &tokenizer, backend, 0.5, &mut rng);
        (g, text, tokenizer, gen)
    }

    #[test]
    fn prompts_shape() {
        let (_, _, _, gen) = setup(SoftBackend::Gnn);
        let p = gen.prompts_for(&[0, 1]);
        assert_eq!(p.dims(), &[2, 16]);
    }

    #[test]
    fn sage_backend_also_works() {
        let (_, _, _, gen) = setup(SoftBackend::GraphSage);
        let p = gen.prompts_for(&[0, 2]);
        assert_eq!(p.dims(), &[2, 16]);
    }

    #[test]
    fn base_initialised_from_token_table() {
        let (g, text, tokenizer, gen) = setup(SoftBackend::Gnn);
        // Vertex 1 labelled "white": base row 1 = token embedding of white.
        let white_id = tokenizer.id_of("white");
        let expected = text.token_embedding_table().gather_rows(&[white_id]).to_vec();
        let base_row: Vec<f32> = (0..16).map(|j| gen.base.at2(1, j)).collect();
        for (x, y) in base_row.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-6);
        }
        let _ = g;
    }

    #[test]
    fn neighbours_influence_prompts() {
        // alpha < 1, so changing a neighbour's base changes the prompt.
        let (_, _, _, gen) = setup(SoftBackend::Gnn);
        let before = gen.prompts_for(&[0]).to_vec();
        {
            let mut data = gen.base.data_mut();
            let d = 16;
            for v in data.as_mut_slice()[d..2 * d].iter_mut() {
                *v += 1.0; // perturb vertex 1 ("white"), a neighbour of 0
            }
        }
        let after = gen.prompts_for(&[0]).to_vec();
        assert!(before.iter().zip(&after).any(|(x, y)| (x - y).abs() > 1e-5));
    }

    #[test]
    fn input_tokens_shape_and_grads() {
        let (_, _, _, gen) = setup(SoftBackend::Gnn);
        let prompts = gen.prompts_for(&[0, 1]);
        let label_means = Tensor::zeros(&[2, 16]);
        let tokens = gen.input_tokens(&label_means, &prompts);
        assert_eq!(tokens.dims(), &[2, 16]);
        tokens.sum().backward();
        for (name, p) in gen.named_params() {
            // The GNN's relu may zero some paths, but base and W must always
            // receive gradients.
            if name == "base" || name.starts_with("w.") {
                assert!(p.grad().is_some(), "no grad for {name}");
            }
        }
    }

    #[test]
    fn alpha_one_ignores_neighbour_sum() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, "e");
        let tokenizer = Tokenizer::build(["a b e"]);
        let text = TextEncoder::new(
            TextEncoderConfig {
                vocab_size: tokenizer.vocab_size(),
                d_model: 8,
                heads: 2,
                layers: 1,
                ffn_hidden: 16,
                max_len: 8,
                embed_dim: 4,
            },
            &mut rng,
        );
        let gen = SoftPromptGenerator::new(&g, &text, &tokenizer, SoftBackend::Gnn, 1.0, &mut rng);
        let h = gen.structural_features();
        let p = gen.prompts_for(&[0]);
        for j in 0..8 {
            assert!((p.at2(0, j) - h.at2(0, j)).abs() < 1e-6);
        }
    }
}
