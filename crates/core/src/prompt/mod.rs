//! Prompt generation (paper Sec. III): the baseline label prompt, the
//! discrete hard-encoding prompt, and the continuous soft prompt.

pub mod baseline;
pub mod hard;
pub mod soft;

pub use baseline::baseline_prompt;
pub use hard::{hard_prompt, HardPromptOptions};
pub use soft::SoftPromptGenerator;
