//! Hard-encoding prompt `f_pro^h` (paper Eq. 5 and Example 2).
//!
//! For a vertex `v` and its d-hop subgraph, each neighbour contributes a
//! *neighbouring sub-prompt* induced by breadth-first search:
//!
//! * depth-1 neighbour `u` reached over edge `e`: `"{L(e)} in {L(u)}"`
//!   (e.g. `"has crown color in white"`);
//! * deeper neighbour `u` reached from parent `p` over `e`:
//!   `"{L(p)} {L(e)} in {L(u)}"` (e.g. `"long-wings has wing color in
//!   grey"` — the s₄ of Figure 3).
//!
//! Sub-prompts are concatenated through the token set `T = {",", "and",
//! "in"}`, producing exactly the Example 2 string shape:
//! `"Laysan Albatross has crown color in white, …, and long-wings has wing
//! color in grey"`.

use std::collections::{HashSet, VecDeque};

use cem_graph::{Graph, VertexId};

/// Options for hard prompt construction.
#[derive(Debug, Clone, Copy)]
pub struct HardPromptOptions {
    /// Neighbourhood radius `d`.
    pub hops: usize,
    /// Prepend `"a photo of"` (aligns with the CLIP pre-training caption
    /// distribution; Example 2 omits it, so it is configurable).
    pub photo_prefix: bool,
    /// Cap on the number of sub-prompts (graph vertices can have hundreds
    /// of neighbours; the text encoder truncates anyway, this merely avoids
    /// building megabyte strings first).
    pub max_subprompts: usize,
}

impl Default for HardPromptOptions {
    fn default() -> Self {
        HardPromptOptions { hops: 2, photo_prefix: true, max_subprompts: 64 }
    }
}

/// The label of an edge between `p` and `u` in either direction (BFS runs
/// over the undirected neighbourhood).
fn connecting_edge_label(graph: &Graph, p: VertexId, u: VertexId) -> Option<String> {
    for &e in graph.out_edges(p) {
        if graph.edge_endpoints(e).1 == u {
            return Some(graph.edge_label(e).to_string());
        }
    }
    for &e in graph.in_edges(p) {
        if graph.edge_endpoints(e).0 == u {
            return Some(graph.edge_label(e).to_string());
        }
    }
    None
}

/// Build the hard-encoding prompt `f_pro^h(v)`.
pub fn hard_prompt(graph: &Graph, v: VertexId, options: &HardPromptOptions) -> String {
    // BFS with parent tracking so each sub-prompt knows its discovery edge.
    let mut subprompts: Vec<String> = Vec::new();
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
    seen.insert(v);
    queue.push_back((v, 0));
    'bfs: while let Some((current, depth)) = queue.pop_front() {
        if depth == options.hops {
            continue;
        }
        for neighbor in graph.neighbors(current) {
            if !seen.insert(neighbor) {
                continue;
            }
            let edge_label = connecting_edge_label(graph, current, neighbor)
                .unwrap_or_else(|| "related to".to_string());
            let sub = if current == v {
                format!("{edge_label} in {}", graph.vertex_label(neighbor))
            } else {
                format!(
                    "{} {edge_label} in {}",
                    graph.vertex_label(current),
                    graph.vertex_label(neighbor)
                )
            };
            subprompts.push(sub);
            if subprompts.len() == options.max_subprompts {
                break 'bfs;
            }
            queue.push_back((neighbor, depth + 1));
        }
    }

    let label = graph.vertex_label(v);
    let head = if options.photo_prefix {
        format!("a photo of {label}")
    } else {
        label.to_string()
    };
    match subprompts.len() {
        0 => head,
        1 => format!("{head} {}", subprompts[0]),
        n => {
            let body = subprompts[..n - 1].join(", ");
            format!("{head} {body}, and {}", subprompts[n - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 3 example graph.
    fn figure3() -> (Graph, VertexId) {
        let mut g = Graph::new();
        let albatross = g.add_vertex("laysan albatross");
        let white = g.add_vertex("white");
        let black = g.add_vertex("black");
        let wings = g.add_vertex("long-wings");
        let grey = g.add_vertex("grey");
        g.add_edge(albatross, white, "has crown color");
        g.add_edge(albatross, black, "has under tail color");
        g.add_edge(albatross, wings, "has wing shape");
        g.add_edge(wings, grey, "has wing color");
        (g, albatross)
    }

    #[test]
    fn reproduces_example_two_structure() {
        let (g, v) = figure3();
        let prompt =
            hard_prompt(&g, v, &HardPromptOptions { hops: 2, photo_prefix: false, max_subprompts: 64 });
        assert_eq!(
            prompt,
            "laysan albatross has crown color in white, has under tail color in black, \
             has wing shape in long-wings, and long-wings has wing color in grey"
        );
    }

    #[test]
    fn one_hop_excludes_deep_subprompts() {
        let (g, v) = figure3();
        let prompt =
            hard_prompt(&g, v, &HardPromptOptions { hops: 1, photo_prefix: false, max_subprompts: 64 });
        assert!(!prompt.contains("grey"));
        assert!(prompt.contains("white"));
    }

    #[test]
    fn photo_prefix_prepended() {
        let (g, v) = figure3();
        let prompt = hard_prompt(&g, v, &HardPromptOptions::default());
        assert!(prompt.starts_with("a photo of laysan albatross"));
    }

    #[test]
    fn isolated_vertex_is_just_its_label() {
        let mut g = Graph::new();
        let v = g.add_vertex("lonely");
        let prompt =
            hard_prompt(&g, v, &HardPromptOptions { hops: 2, photo_prefix: false, max_subprompts: 64 });
        assert_eq!(prompt, "lonely");
    }

    #[test]
    fn single_neighbour_has_no_comma() {
        let mut g = Graph::new();
        let v = g.add_vertex("bird");
        let w = g.add_vertex("white");
        g.add_edge(v, w, "has color");
        let prompt =
            hard_prompt(&g, v, &HardPromptOptions { hops: 1, photo_prefix: false, max_subprompts: 64 });
        assert_eq!(prompt, "bird has color in white");
    }

    #[test]
    fn max_subprompts_caps_length() {
        let mut g = Graph::new();
        let v = g.add_vertex("hub");
        for i in 0..100 {
            let n = g.add_vertex(format!("n{i}"));
            g.add_edge(v, n, "has part");
        }
        let prompt = hard_prompt(
            &g,
            v,
            &HardPromptOptions { hops: 1, photo_prefix: false, max_subprompts: 5 },
        );
        assert_eq!(prompt.matches(" in ").count(), 5);
    }

    #[test]
    fn incoming_edges_also_contribute() {
        let mut g = Graph::new();
        let v = g.add_vertex("white");
        let bird = g.add_vertex("albatross");
        g.add_edge(bird, v, "has crown color"); // edge points INTO v
        let prompt =
            hard_prompt(&g, v, &HardPromptOptions { hops: 1, photo_prefix: false, max_subprompts: 8 });
        assert!(prompt.contains("albatross"));
    }
}
