//! The naive prompt of Sec. II-B: a fixed text template around the vertex
//! label — `"a photo of [MASK]"` with the label substituted for `[MASK]`.

/// Build the baseline prompt for a vertex label.
pub fn baseline_prompt(label: &str, photo_prefix: bool) -> String {
    if photo_prefix {
        format!("a photo of {label}")
    } else {
        label.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_substitution() {
        assert_eq!(baseline_prompt("laysan albatross", true), "a photo of laysan albatross");
        assert_eq!(baseline_prompt("laysan albatross", false), "laysan albatross");
    }
}
