//! Frozen-feature cache for the CrossEM⁺ preprocessing pipeline.
//!
//! PCP's proximity matrix (Alg. 2 phases 1–2) is computed from the *frozen*
//! towers: label features come from the pristine pre-trained text encoder
//! (proximity is built before tuning touches it) and patch features from
//! the image tower, which stays frozen for the whole run. Nothing about
//! them changes across epochs, partitioning calls, or even across trainers
//! sharing the same pre-trained model — yet the seed implementation
//! re-encoded every vertex and every patch on each `prepare_partitions`
//! call.
//!
//! [`FeatureCache`] memoises both stages:
//!
//! * phase-1 [`FrozenFeatures`] keyed by a fingerprint of the (model,
//!   dataset) pair, and
//! * the derived [`ProximityMatrix`] keyed by (fingerprint, hops).
//!
//! The fingerprint is a CRC-64-style hash (two CRC-32 lanes over the same
//! stream) covering the dataset identity (name, counts, labels, patch
//! bytes) *and* the current bytes of every encoder parameter — so a cache
//! shared across trainers returns stale features only if the weights are
//! truly unchanged, and tuning the text tower mid-run yields a different
//! key rather than a wrong hit.
//!
//! Caching is behavioural lock-step with the seed path: the cached value is
//! the exact output of [`frozen_features`]/[`proximity_from_features`], so
//! training results are bit-identical with or without the cache.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use cem_clip::{Clip, Tokenizer};
use cem_data::EmDataset;
use cem_nn::Module;
use cem_tensor::crc::Hasher;

use crate::plus::minibatch::{
    frozen_features, proximity_from_features, FrozenFeatures, ProximityMatrix,
};

/// Memoises frozen property features and proximity matrices per (model,
/// dataset) pair. Single-threaded interior mutability (`RefCell`) — the
/// trainers drive it from the main thread; parallelism lives inside the
/// kernels the cached computation calls.
#[derive(Default)]
pub struct FeatureCache {
    features: RefCell<HashMap<u64, Rc<FrozenFeatures>>>,
    proximity: RefCell<HashMap<(u64, usize), Rc<ProximityMatrix>>>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

impl FeatureCache {
    pub fn new() -> Self {
        FeatureCache::default()
    }

    /// Phase-1 features, computed at most once per fingerprint.
    pub fn features(
        &self,
        clip: &Clip,
        tokenizer: &Tokenizer,
        dataset: &EmDataset,
    ) -> Rc<FrozenFeatures> {
        let key = fingerprint(clip, dataset);
        if let Some(found) = self.features.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            record_lookup("features", "hit");
            return Rc::clone(found);
        }
        self.misses.set(self.misses.get() + 1);
        record_lookup("features", "miss");
        let computed = Rc::new(frozen_features(clip, tokenizer, dataset));
        self.features.borrow_mut().insert(key, Rc::clone(&computed));
        computed
    }

    /// Pairwise proximity (Alg. 2 phases 1–2), computed at most once per
    /// (fingerprint, hops).
    pub fn proximity(
        &self,
        clip: &Clip,
        tokenizer: &Tokenizer,
        dataset: &EmDataset,
        hops: usize,
    ) -> Rc<ProximityMatrix> {
        let key = (fingerprint(clip, dataset), hops);
        if let Some(found) = self.proximity.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            record_lookup("proximity", "hit");
            return Rc::clone(found);
        }
        self.misses.set(self.misses.get() + 1);
        record_lookup("proximity", "miss");
        let features = self.features(clip, tokenizer, dataset);
        let computed = Rc::new(proximity_from_features(&features, dataset, hops));
        self.proximity.borrow_mut().insert(key, Rc::clone(&computed));
        computed
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.get()
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> usize {
        self.misses.get()
    }

    /// Drop every cached entry (counters are kept).
    pub fn clear(&self) {
        let evicted =
            self.features.borrow().len() as u64 + self.proximity.borrow().len() as u64;
        cem_obs::counter_add!("cache.evict", evicted);
        cem_obs::emit(|| {
            cem_obs::Event::new("cache")
                .field("stage", "all")
                .field("outcome", "evict")
                .field("entries", evicted as f64)
        });
        self.features.borrow_mut().clear();
        self.proximity.borrow_mut().clear();
    }
}

/// Publish one cache lookup into the registry + event stream. The counter
/// names are `cache.features.hit`, `cache.features.miss`,
/// `cache.proximity.hit`, `cache.proximity.miss`.
fn record_lookup(stage: &'static str, outcome: &'static str) {
    if !cem_obs::enabled() {
        return;
    }
    match (stage, outcome) {
        ("features", "hit") => cem_obs::counter_add!("cache.features.hit", 1),
        ("features", "miss") => cem_obs::counter_add!("cache.features.miss", 1),
        ("proximity", "hit") => cem_obs::counter_add!("cache.proximity.hit", 1),
        _ => cem_obs::counter_add!("cache.proximity.miss", 1),
    }
    cem_obs::emit(|| {
        cem_obs::Event::new("cache").field("stage", stage).field("outcome", outcome)
    });
}

/// Hash the (model, dataset) identity the frozen features depend on.
fn fingerprint(clip: &Clip, dataset: &EmDataset) -> u64 {
    let mut lo = Hasher::new();
    let mut hi = Hasher::new();
    let mut feed = |bytes: &[u8]| {
        lo.update(bytes);
        hi.update(&bytes.iter().rev().copied().collect::<Vec<u8>>());
    };

    feed(dataset.name.as_bytes());
    feed(&(dataset.entity_count() as u64).to_le_bytes());
    feed(&(dataset.image_count() as u64).to_le_bytes());
    for v in dataset.graph.vertices() {
        feed(dataset.graph.vertex_label(v).as_bytes());
    }
    for image in &dataset.images {
        for p in 0..image.n_patches() {
            for value in image.patch(p) {
                feed(&value.to_le_bytes());
            }
        }
    }
    // Encoder weights: frozen features depend on the *current* parameter
    // values, so mutated weights miss rather than alias a stale entry.
    for params in [clip.text.params(), clip.image.params()] {
        for p in params {
            for value in p.to_vec() {
                feed(&value.to_le_bytes());
            }
        }
    }
    ((hi.finalize() as u64) << 32) | lo.finalize() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cem_clip::ClipConfig;
    use cem_data::{generate, DatasetKind, DatasetScale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (Clip, Tokenizer, EmDataset) {
        let mut rng = StdRng::seed_from_u64(7);
        let (_, dataset) = generate(
            DatasetKind::Cub,
            DatasetScale { classes: 3, images_per_class: 2 },
            &mut rng,
        );
        let mut texts: Vec<String> = dataset
            .graph
            .vertices()
            .map(|v| dataset.graph.vertex_label(v).to_string())
            .collect();
        texts.push("a photo of with and in has".into());
        let tokenizer = Tokenizer::build(texts.iter().map(String::as_str));
        let clip = Clip::new(ClipConfig::tiny(tokenizer.vocab_size(), 16), &mut rng);
        (clip, tokenizer, dataset)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_matrix() {
        let (clip, tokenizer, dataset) = world();
        let cache = FeatureCache::new();
        let first = cache.proximity(&clip, &tokenizer, &dataset, 1);
        // proximity() computes features too: two misses, no hits yet.
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        let second = cache.proximity(&clip, &tokenizer, &dataset, 1);
        assert_eq!(cache.hits(), 1);
        assert!(Rc::ptr_eq(&first, &second), "cache must share, not recompute");
    }

    #[test]
    fn cached_proximity_matches_direct_computation() {
        let (clip, tokenizer, dataset) = world();
        let cache = FeatureCache::new();
        let cached = cache.proximity(&clip, &tokenizer, &dataset, 1);
        let direct = crate::plus::minibatch::pairwise_proximity(&clip, &tokenizer, &dataset, 1);
        assert_eq!(*cached, direct, "cache changed the computed proximity");
    }

    #[test]
    fn hop_count_is_part_of_the_key() {
        let (clip, tokenizer, dataset) = world();
        let cache = FeatureCache::new();
        let one = cache.proximity(&clip, &tokenizer, &dataset, 1);
        let two = cache.proximity(&clip, &tokenizer, &dataset, 2);
        assert!(!Rc::ptr_eq(&one, &two));
        // Features are shared across hop counts: 3 misses total
        // (features, proximity@1, proximity@2), 1 feature hit.
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn weight_changes_invalidate_the_key() {
        let (clip, tokenizer, dataset) = world();
        let cache = FeatureCache::new();
        cache.proximity(&clip, &tokenizer, &dataset, 1);
        // Nudge one text-tower weight: the next lookup must miss.
        let params = clip.text.params();
        let mut values = params[0].to_vec();
        values[0] += 1.0;
        params[0].copy_from_slice(&values);
        cache.proximity(&clip, &tokenizer, &dataset, 1);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4, "expected feature+proximity misses for both keys");
    }

    #[test]
    fn clear_forces_recompute() {
        let (clip, tokenizer, dataset) = world();
        let cache = FeatureCache::new();
        cache.proximity(&clip, &tokenizer, &dataset, 1);
        cache.clear();
        cache.proximity(&clip, &tokenizer, &dataset, 1);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
    }
}
