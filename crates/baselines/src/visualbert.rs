//! VisualBERT analogue (paper's "VisualBERT [26]" row): a single-stream
//! Transformer over the concatenation of text tokens and image patch
//! tokens, with segment embeddings, scored by a classification head on the
//! `[CLS]` output. Pre-trained on the caption corpus with an image–text
//! matching objective (aligned pair vs. random mismatch), then applied
//! zero-shot to the serialised entities, as the paper does for the fusion
//! encoders.

use std::time::Instant;

use cem_clip::{Image, Tokenizer};
use cem_data::{CaptionPair, EmDataset};
use cem_nn::{Embedding, Linear, Module, TransformerEncoder};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, serialized_entity_ids, BaselineOutput};

/// Single-stream fusion scorer, shared with the MKGformer analogue.
pub struct FusionScorer {
    token_emb: Embedding,
    patch_proj: Linear,
    /// `[2, d]` segment embeddings (text / image).
    segments: Tensor,
    pos_emb: Embedding,
    encoder: TransformerEncoder,
    head: Linear,
    max_text: usize,
}

/// Sizing for the fusion models (kept small — they are baselines, and the
/// paper uses frozen pre-trained towers of their own).
#[derive(Debug, Clone, Copy)]
pub struct FusionConfig {
    pub d_model: usize,
    pub heads: usize,
    pub layers: usize,
    pub max_text: usize,
    pub max_seq: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig { d_model: 48, heads: 4, layers: 1, max_text: 16, max_seq: 32 }
    }
}

impl FusionScorer {
    pub fn new<R: Rng>(vocab: usize, patch_dim: usize, config: FusionConfig, rng: &mut R) -> Self {
        FusionScorer {
            token_emb: Embedding::new(vocab, config.d_model, rng),
            patch_proj: Linear::new(patch_dim, config.d_model, rng),
            segments: cem_tensor::init::randn(&[2, config.d_model], 0.02, rng).requires_grad(),
            pos_emb: Embedding::new(config.max_seq, config.d_model, rng),
            encoder: TransformerEncoder::new(
                config.d_model,
                config.heads,
                config.layers,
                config.d_model * 2,
                rng,
            ),
            head: Linear::new(config.d_model, 1, rng),
            max_text: config.max_text,
        }
    }

    /// Matching logit for one (token ids, image) pair.
    pub fn forward_pair(&self, ids: &[usize], image: &Image) -> Tensor {
        let t = ids.len().min(self.max_text);
        let text = self.token_emb.forward(&ids[..t]); // [t, d]
        let text = text.add_row(&self.segments.row(0));
        let patches = self.patch_proj.forward(&image.as_tensor()); // [p, d]
        let patches = patches.add_row(&self.segments.row(1));
        let seq = Tensor::concat_rows(&[text, patches]);
        let len = seq.shape().dim(0);
        let positions: Vec<usize> = (0..len).collect();
        let seq = seq.add(&self.pos_emb.forward(&positions));
        let hidden = self.encoder.forward(&seq, None);
        self.head.forward(&hidden.slice_rows(0, 1)).reshape(&[1])
    }

    /// Binary image–text-matching loss over aligned and mismatched pairs.
    pub fn itm_loss(&self, logits: &[Tensor], labels: &[f32]) -> Tensor {
        assert_eq!(logits.len(), labels.len());
        let stacked = Tensor::stack_rows(logits).reshape(&[logits.len()]);
        let p = stacked.sigmoid().clamp(1e-6, 1.0 - 1e-6);
        let y = Tensor::from_vec(labels.to_vec(), &[labels.len()]);
        // BCE: -(y ln p + (1-y) ln(1-p))
        let pos = y.mul(&p.ln());
        let neg = y.neg().add_scalar(1.0).mul(&p.neg().add_scalar(1.0).ln());
        pos.add(&neg).mean().neg()
    }

    /// Train on the caption corpus: each step sees one aligned pair and one
    /// mismatched pair.
    pub fn fit_corpus<R: Rng>(
        &self,
        corpus: &[(Vec<usize>, &Image)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) {
        assert!(corpus.len() >= 2, "fusion pre-training needs at least two pairs");
        let mut opt = AdamW::new(self.params(), lr);
        for _ in 0..epochs {
            for i in 0..corpus.len() {
                let (ids, image) = &corpus[i];
                let mut j = rng.gen_range(0..corpus.len());
                if j == i {
                    j = (j + 1) % corpus.len();
                }
                let pos = self.forward_pair(ids, image);
                let neg = self.forward_pair(ids, corpus[j].1);
                let loss = self.itm_loss(&[pos, neg], &[1.0, 0.0]);
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }

    /// Score every (entity tokens, image) pair: `[N, M]`.
    pub fn score_matrix(&self, entity_ids: &[Vec<usize>], images: &[Image]) -> Tensor {
        no_grad(|| {
            let rows: Vec<Tensor> = entity_ids
                .iter()
                .map(|ids| {
                    let scores: Vec<Tensor> =
                        images.iter().map(|img| self.forward_pair(ids, img)).collect();
                    Tensor::stack_rows(&scores).reshape(&[images.len()])
                })
                .collect();
            Tensor::stack_rows(&rows)
        })
    }
}

impl Module for FusionScorer {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("token_emb", self.token_emb.named_params());
        v.extend(cem_nn::module::with_prefix("patch_proj", self.patch_proj.named_params()));
        v.push(("segments".to_string(), self.segments.clone()));
        v.extend(cem_nn::module::with_prefix("pos_emb", self.pos_emb.named_params()));
        v.extend(cem_nn::module::with_prefix("encoder", self.encoder.named_params()));
        v.extend(cem_nn::module::with_prefix("head", self.head.named_params()));
        v
    }
}

/// Full VisualBERT baseline: pre-train on the corpus, score serialised
/// entities.
pub fn run<R: Rng>(
    corpus: &[CaptionPair],
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let patch_dim = dataset.images[0].patch_dim();
    let model = FusionScorer::new(tokenizer.vocab_size(), patch_dim, FusionConfig::default(), rng);
    let tokenised: Vec<(Vec<usize>, &Image)> = corpus
        .iter()
        .map(|pair| (tokenizer.encode(&pair.caption, 24).0, &pair.image))
        .collect();
    model.fit_corpus(&tokenised, epochs, 1e-3, rng);
    let fit_seconds = start.elapsed().as_secs_f64();

    let entity_ids = serialized_entity_ids(dataset, tokenizer, 24);
    let scores = model.score_matrix(&entity_ids, &dataset.images);
    BaselineOutput { name: "VisualBERT", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(rng: &mut StdRng) -> FusionScorer {
        FusionScorer::new(30, 4, FusionConfig { d_model: 16, heads: 2, layers: 1, max_text: 8, max_seq: 16 }, rng)
    }

    fn image(v: f32) -> Image {
        Image::from_patches(vec![vec![v; 4], vec![-v; 4]])
    }

    #[test]
    fn forward_pair_is_scalar_logit() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = model(&mut rng);
        let logit = m.forward_pair(&[1, 6, 2], &image(1.0));
        assert_eq!(logit.numel(), 1);
        assert!(logit.item().is_finite());
    }

    #[test]
    fn itm_loss_prefers_correct_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = model(&mut rng);
        let high = Tensor::scalar(4.0);
        let low = Tensor::scalar(-4.0);
        let good = m.itm_loss(&[high.clone(), low.clone()], &[1.0, 0.0]).item();
        let bad = m.itm_loss(&[high, low], &[0.0, 1.0]).item();
        assert!(good < bad);
    }

    #[test]
    fn training_separates_aligned_from_mismatched() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = model(&mut rng);
        let img_a = image(1.5);
        let img_b = image(-1.5);
        let corpus: Vec<(Vec<usize>, &Image)> = vec![
            (vec![1, 7, 2], &img_a),
            (vec![1, 8, 2], &img_b),
        ];
        m.fit_corpus(&corpus, 40, 2e-3, &mut rng);
        let aligned = m.forward_pair(&[1, 7, 2], &img_a).item();
        let mismatched = m.forward_pair(&[1, 7, 2], &img_b).item();
        assert!(aligned > mismatched, "aligned {aligned} vs mismatched {mismatched}");
    }

    #[test]
    fn score_matrix_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = model(&mut rng);
        let imgs = vec![image(1.0), image(0.5), image(-1.0)];
        let scores = m.score_matrix(&[vec![1, 5, 2], vec![1, 9, 2]], &imgs);
        assert_eq!(scores.dims(), &[2, 3]);
    }

    #[test]
    fn long_text_is_truncated() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = model(&mut rng);
        let long: Vec<usize> = (0..20).map(|i| i % 30).collect();
        let logit = m.forward_pair(&long, &image(1.0));
        assert!(logit.item().is_finite());
    }
}
