//! # cem-baselines
//!
//! The comparator systems of the paper's evaluation (Sec. V-A), implemented
//! on the same substrates as CrossEM so comparisons measure algorithms, not
//! frameworks:
//!
//! * **Dual encoders** — [`clip_zeroshot`] (the pre-trained dual encoder
//!   with the naive prompt) and [`align`] (the same architecture pre-trained
//!   on deliberately noisier caption data, per ALIGN's noisy-supervision
//!   recipe).
//! * **Fusion encoders** — [`visualbert`] (single-stream transformer over
//!   concatenated text + patch tokens), [`vilbert`] (two-stream with
//!   co-attention), [`imram`] (iterative fragment alignment with recurrent
//!   attention), [`transae`] (multi-modal autoencoder combined with TransE).
//! * **Prompt tuning** — [`gppt`] (supervised graph prompt tuning reduced
//!   to binary matching, as the paper adapts it).
//! * **KG-embedding methods for the case study** — [`kg`]: TransE substrate
//!   plus DistMult, RotatE, RSME, and an MKGformer analogue.
//!
//! Every baseline ends in a score matrix `[entities × images]` so the same
//! `crossem::metrics` evaluation applies. As in the paper, the first group
//! is evaluated zero-shot from pre-training; fusion encoders are pre-trained
//! on the caption corpus; GPPT and the KG methods receive a *seed set* of
//! labelled pairs (they are supervised methods — the paper provides GPPT
//! "feedback in a supervised manner").

pub mod align;
pub mod clip_zeroshot;
pub mod common;
pub mod gppt;
pub mod imram;
pub mod kg;
pub mod transae;
pub mod vilbert;
pub mod visualbert;

pub use common::{evaluate_scores, seed_split, BaselineOutput};
