//! CLIP zero-shot (paper's "CLIP [17]" row): the pre-trained dual encoder
//! queried with the naive `"a photo of {label}"` prompt, no tuning.

use cem_clip::{Clip, Tokenizer};
use cem_data::EmDataset;
use cem_tensor::{no_grad, Tensor};
use crossem::prompt::baseline_prompt;

use crate::common::{evaluate_scores, BaselineOutput};

/// Score all entities against all images with the frozen dual encoder.
pub fn score_matrix(clip: &Clip, tokenizer: &Tokenizer, dataset: &EmDataset) -> Tensor {
    no_grad(|| {
        let prompts: Vec<Vec<usize>> = (0..dataset.entity_count())
            .map(|e| tokenizer.encode(&baseline_prompt(dataset.entity_label(e), true), 77).0)
            .collect();
        let text = clip.encode_texts(&prompts);
        let refs: Vec<&cem_clip::Image> = dataset.images.iter().collect();
        let mut parts = Vec::new();
        for chunk in refs.chunks(64) {
            parts.push(clip.encode_images(chunk));
        }
        let images = Tensor::concat_rows(&parts);
        clip.similarity_logits(&text, &images)
    })
}

/// Full baseline run.
pub fn run(clip: &Clip, tokenizer: &Tokenizer, dataset: &EmDataset) -> BaselineOutput {
    let scores = score_matrix(clip, tokenizer, dataset);
    BaselineOutput {
        name: "CLIP",
        metrics: evaluate_scores(&scores, dataset),
        fit_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cem_data::{BundleConfig, DatasetBundle, DatasetKind};

    #[test]
    fn zero_shot_beats_chance_after_pretraining() {
        let bundle = DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub));
        let out = run(&bundle.clip, &bundle.tokenizer, &bundle.dataset);
        // 6 classes -> chance MRR ≈ 0.2 for first-relevant with 2 golds in
        // 12 images; pre-trained CLIP must do better.
        assert!(out.metrics.mrr > 0.2, "zero-shot MRR too low: {:?}", out.metrics);
        assert_eq!(out.metrics.queries, 6);
    }
}
