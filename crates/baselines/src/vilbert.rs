//! ViLBERT analogue (paper's "ViLBERT [27]" row): two separate streams —
//! one Transformer for text, one for patches — interacting through
//! co-attention layers; alignment scored from the pooled stream heads.
//! Pre-trained on the caption corpus with the same image–text-matching
//! objective as the VisualBERT analogue.

use std::time::Instant;

use cem_clip::{Image, Tokenizer};
use cem_data::{CaptionPair, EmDataset};
use cem_nn::{CrossAttention, Embedding, Linear, Module, TransformerEncoder};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, serialized_entity_ids, BaselineOutput};

/// Two-stream co-attention matcher.
pub struct ViLBert {
    token_emb: Embedding,
    text_pos: Embedding,
    text_stream: TransformerEncoder,
    patch_proj: Linear,
    image_stream: TransformerEncoder,
    /// Text attends over image, image attends over text.
    co_text: CrossAttention,
    co_image: CrossAttention,
    text_head: Linear,
    image_head: Linear,
    max_text: usize,
    d_model: usize,
}

impl ViLBert {
    pub fn new<R: Rng>(vocab: usize, patch_dim: usize, d_model: usize, rng: &mut R) -> Self {
        ViLBert {
            token_emb: Embedding::new(vocab, d_model, rng),
            text_pos: Embedding::new(32, d_model, rng),
            text_stream: TransformerEncoder::new(d_model, 4, 1, d_model * 2, rng),
            patch_proj: Linear::new(patch_dim, d_model, rng),
            image_stream: TransformerEncoder::new(d_model, 4, 1, d_model * 2, rng),
            co_text: CrossAttention::new(d_model, 4, rng),
            co_image: CrossAttention::new(d_model, 4, rng),
            text_head: Linear::new(d_model, d_model, rng),
            image_head: Linear::new(d_model, d_model, rng),
            max_text: 16,
            d_model,
        }
    }

    /// Alignment logit for one pair: dot product of the pooled co-attended
    /// streams.
    pub fn forward_pair(&self, ids: &[usize], image: &Image) -> Tensor {
        let t = ids.len().min(self.max_text);
        let positions: Vec<usize> = (0..t).collect();
        let text =
            self.token_emb.forward(&ids[..t]).add(&self.text_pos.forward(&positions));
        let text = self.text_stream.forward(&text, None);
        let patches = self.patch_proj.forward(&image.as_tensor());
        let patches = self.image_stream.forward(&patches, None);

        // One round of co-attention (the paper's model stacks several; one
        // suffices at this scale).
        let text_co = text.add(&self.co_text.forward(&text, &patches));
        let image_co = patches.add(&self.co_image.forward(&patches, &text));

        let text_pooled = self.text_head.forward(&text_co.mean_axis0().reshape(&[1, self.d_model]));
        let image_pooled =
            self.image_head.forward(&image_co.mean_axis0().reshape(&[1, self.d_model]));
        text_pooled.matmul_nt(&image_pooled).reshape(&[1]).mul_scalar(1.0 / self.d_model as f32)
    }

    fn bce(&self, logits: &[Tensor], labels: &[f32]) -> Tensor {
        let stacked = Tensor::stack_rows(logits).reshape(&[logits.len()]);
        let p = stacked.sigmoid().clamp(1e-6, 1.0 - 1e-6);
        let y = Tensor::from_vec(labels.to_vec(), &[labels.len()]);
        let pos = y.mul(&p.ln());
        let neg = y.neg().add_scalar(1.0).mul(&p.neg().add_scalar(1.0).ln());
        pos.add(&neg).mean().neg()
    }

    /// Pre-train on aligned/mismatched pairs from the corpus.
    pub fn fit_corpus<R: Rng>(
        &self,
        corpus: &[(Vec<usize>, &Image)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) {
        assert!(corpus.len() >= 2, "pre-training needs at least two pairs");
        let mut opt = AdamW::new(self.params(), lr);
        for _ in 0..epochs {
            for i in 0..corpus.len() {
                let (ids, image) = &corpus[i];
                let mut j = rng.gen_range(0..corpus.len());
                if j == i {
                    j = (j + 1) % corpus.len();
                }
                let pos = self.forward_pair(ids, image);
                let neg = self.forward_pair(ids, corpus[j].1);
                let loss = self.bce(&[pos, neg], &[1.0, 0.0]);
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }

    /// `[N, M]` score matrix.
    pub fn score_matrix(&self, entity_ids: &[Vec<usize>], images: &[Image]) -> Tensor {
        no_grad(|| {
            let rows: Vec<Tensor> = entity_ids
                .iter()
                .map(|ids| {
                    let scores: Vec<Tensor> =
                        images.iter().map(|img| self.forward_pair(ids, img)).collect();
                    Tensor::stack_rows(&scores).reshape(&[images.len()])
                })
                .collect();
            Tensor::stack_rows(&rows)
        })
    }
}

impl Module for ViLBert {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("token_emb", self.token_emb.named_params());
        v.extend(cem_nn::module::with_prefix("text_pos", self.text_pos.named_params()));
        v.extend(cem_nn::module::with_prefix("text_stream", self.text_stream.named_params()));
        v.extend(cem_nn::module::with_prefix("patch_proj", self.patch_proj.named_params()));
        v.extend(cem_nn::module::with_prefix("image_stream", self.image_stream.named_params()));
        v.extend(cem_nn::module::with_prefix("co_text", self.co_text.named_params()));
        v.extend(cem_nn::module::with_prefix("co_image", self.co_image.named_params()));
        v.extend(cem_nn::module::with_prefix("text_head", self.text_head.named_params()));
        v.extend(cem_nn::module::with_prefix("image_head", self.image_head.named_params()));
        v
    }
}

/// Full ViLBERT baseline run.
pub fn run<R: Rng>(
    corpus: &[CaptionPair],
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let patch_dim = dataset.images[0].patch_dim();
    let model = ViLBert::new(tokenizer.vocab_size(), patch_dim, 48, rng);
    let tokenised: Vec<(Vec<usize>, &Image)> = corpus
        .iter()
        .map(|pair| (tokenizer.encode(&pair.caption, 24).0, &pair.image))
        .collect();
    model.fit_corpus(&tokenised, epochs, 1e-3, rng);
    let fit_seconds = start.elapsed().as_secs_f64();

    let entity_ids = serialized_entity_ids(dataset, tokenizer, 24);
    let scores = model.score_matrix(&entity_ids, &dataset.images);
    BaselineOutput { name: "ViLBERT", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image(v: f32) -> Image {
        Image::from_patches(vec![vec![v; 4], vec![v * 0.5; 4]])
    }

    #[test]
    fn forward_pair_scalar() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = ViLBert::new(30, 4, 16, &mut rng);
        assert_eq!(m.forward_pair(&[1, 5, 2], &image(1.0)).numel(), 1);
    }

    #[test]
    fn training_improves_alignment() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = ViLBert::new(30, 4, 16, &mut rng);
        let img_a = image(1.5);
        let img_b = image(-1.5);
        let corpus: Vec<(Vec<usize>, &Image)> =
            vec![(vec![1, 7, 2], &img_a), (vec![1, 8, 2], &img_b)];
        m.fit_corpus(&corpus, 40, 2e-3, &mut rng);
        let aligned = m.forward_pair(&[1, 8, 2], &img_b).item();
        let mismatched = m.forward_pair(&[1, 8, 2], &img_a).item();
        assert!(aligned > mismatched, "aligned {aligned} vs mismatched {mismatched}");
    }

    #[test]
    fn score_matrix_dims() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = ViLBert::new(30, 4, 16, &mut rng);
        let imgs = vec![image(1.0), image(-1.0)];
        assert_eq!(m.score_matrix(&[vec![1, 2]], &imgs).dims(), &[1, 2]);
    }
}
