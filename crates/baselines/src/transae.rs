//! TransAE analogue (paper's "TransAE [43]" row): a multi-modal autoencoder
//! whose hidden layer provides entity representations for a TransE model.
//! The encoder maps `[text feature ‖ visual feature]` into a hidden space;
//! reconstruction keeps the hidden space informative, while a TransE margin
//! loss over the graph's triples shapes it relationally. At match time an
//! entity is encoded from its text side and an image from its visual side;
//! the score is the negative hidden-space distance.

use std::collections::HashMap;
use std::time::Instant;

use cem_clip::{Image, Tokenizer};
use cem_data::{CaptionPair, EmDataset};
use cem_nn::{Embedding, Linear, Module};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, BaselineOutput};

/// The multi-modal autoencoder + TransE model.
pub struct TransAe {
    word_emb: Embedding,
    encoder: Linear,
    decoder: Linear,
    relation_emb: Embedding,
    text_dim: usize,
    patch_dim: usize,
    hidden: usize,
    max_text: usize,
}

impl TransAe {
    pub fn new<R: Rng>(
        vocab: usize,
        patch_dim: usize,
        text_dim: usize,
        hidden: usize,
        n_relations: usize,
        rng: &mut R,
    ) -> Self {
        TransAe {
            word_emb: Embedding::new(vocab, text_dim, rng),
            encoder: Linear::new(text_dim + patch_dim, hidden, rng),
            decoder: Linear::new(hidden, text_dim + patch_dim, rng),
            relation_emb: Embedding::new(n_relations.max(1), hidden, rng),
            text_dim,
            patch_dim,
            hidden,
            max_text: 16,
        }
    }

    fn text_feature(&self, ids: &[usize]) -> Tensor {
        let t = ids.len().min(self.max_text).max(1);
        self.word_emb.forward(&ids[..t.min(ids.len())]).mean_axis0()
    }

    fn visual_feature(image: &Image) -> Tensor {
        Tensor::from_vec(image.mean_patch(), &[image.patch_dim()])
    }

    /// Hidden representation from both modalities (training path).
    pub fn encode_joint(&self, ids: &[usize], image: &Image) -> Tensor {
        let input = self
            .text_feature(ids)
            .reshape(&[1, self.text_dim])
            .concat_cols(&Self::visual_feature(image).reshape(&[1, self.patch_dim]));
        self.encoder.forward(&input).tanh()
    }

    /// Hidden representation from text only (entity side at match time).
    pub fn encode_text(&self, ids: &[usize]) -> Tensor {
        let input = self
            .text_feature(ids)
            .reshape(&[1, self.text_dim])
            .concat_cols(&Tensor::zeros(&[1, self.patch_dim]));
        self.encoder.forward(&input).tanh()
    }

    /// Hidden representation from an image only.
    pub fn encode_image(&self, image: &Image) -> Tensor {
        let input = Tensor::zeros(&[1, self.text_dim])
            .concat_cols(&Self::visual_feature(image).reshape(&[1, self.patch_dim]));
        self.encoder.forward(&input).tanh()
    }

    fn reconstruction_loss(&self, ids: &[usize], image: &Image) -> Tensor {
        let input = self
            .text_feature(ids)
            .reshape(&[1, self.text_dim])
            .concat_cols(&Self::visual_feature(image).reshape(&[1, self.patch_dim]));
        let hidden = self.encoder.forward(&input).tanh();
        let recon = self.decoder.forward(&hidden);
        recon.sub(&input).square().mean()
    }

    /// TransE margin loss on one triple `(h, r, t)` against a corrupted
    /// tail `t'` — entity representations come from the text encoder side,
    /// which is exactly the "hidden layer … used to be entity
    /// representations in the TransE model" coupling.
    fn transe_loss(
        &self,
        head_ids: &[usize],
        relation: usize,
        tail_ids: &[usize],
        corrupt_ids: &[usize],
        margin: f32,
    ) -> Tensor {
        let h = self.encode_text(head_ids);
        let r = self.relation_emb.forward(&[relation]);
        let t = self.encode_text(tail_ids);
        let t_bad = self.encode_text(corrupt_ids);
        let pos = h.add(&r).sub(&t).square().sum();
        let neg = h.add(&r).sub(&t_bad).square().sum();
        pos.sub(&neg).add_scalar(margin).relu()
    }

    /// Train: reconstruction on the corpus + TransE on the graph triples.
    #[allow(clippy::too_many_arguments)]
    pub fn fit<R: Rng>(
        &self,
        corpus: &[(Vec<usize>, &Image)],
        triples: &[(Vec<usize>, usize, Vec<usize>)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) {
        let mut opt = AdamW::new(self.params(), lr);
        for _ in 0..epochs {
            for (ids, image) in corpus {
                let loss = self.reconstruction_loss(ids, image);
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
            if triples.len() >= 2 {
                for i in 0..triples.len() {
                    let (h, r, t) = &triples[i];
                    let j = (i + 1 + rng.gen_range(0..triples.len() - 1)) % triples.len();
                    let corrupt = &triples[j].2;
                    let loss = self.transe_loss(h, *r, t, corrupt, 1.0);
                    opt.zero_grad();
                    loss.backward();
                    opt.clip_grad_norm(5.0);
                    opt.step();
                }
            }
        }
    }

    /// `[N, M]` score matrix: negative hidden-space distances.
    pub fn score_matrix(&self, entity_ids: &[Vec<usize>], images: &[Image]) -> Tensor {
        no_grad(|| {
            let entity_h: Vec<Tensor> = entity_ids
                .iter()
                .map(|ids| self.encode_text(ids).reshape(&[self.hidden]))
                .collect();
            let image_h: Vec<Tensor> =
                images.iter().map(|img| self.encode_image(img).reshape(&[self.hidden])).collect();
            let e = Tensor::stack_rows(&entity_h).l2_normalize_rows();
            let v = Tensor::stack_rows(&image_h).l2_normalize_rows();
            e.matmul_nt(&v)
        })
    }
}

impl Module for TransAe {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("word_emb", self.word_emb.named_params());
        v.extend(cem_nn::module::with_prefix("encoder", self.encoder.named_params()));
        v.extend(cem_nn::module::with_prefix("decoder", self.decoder.named_params()));
        v.extend(cem_nn::module::with_prefix("relation_emb", self.relation_emb.named_params()));
        v
    }
}

/// A `(head token ids, relation id, tail token ids)` triple.
pub type TokenTriple = (Vec<usize>, usize, Vec<usize>);

/// Extract `(head ids, relation id, tail ids)` triples from the dataset
/// graph, interning relation labels.
pub fn graph_triples(
    dataset: &EmDataset,
    tokenizer: &Tokenizer,
    max_triples: usize,
) -> (Vec<TokenTriple>, usize) {
    let graph = &dataset.graph;
    let mut relations: HashMap<String, usize> = HashMap::new();
    let mut triples = Vec::new();
    for e in 0..graph.edge_count().min(max_triples) {
        let edge = cem_graph::EdgeId(e);
        let (src, dst) = graph.edge_endpoints(edge);
        let next = relations.len();
        let r = *relations.entry(graph.edge_label(edge).to_string()).or_insert(next);
        triples.push((
            tokenizer.tokenize(graph.vertex_label(src)),
            r,
            tokenizer.tokenize(graph.vertex_label(dst)),
        ));
    }
    let n_rel = relations.len().max(1);
    (triples, n_rel)
}

/// Full TransAE baseline run.
pub fn run<R: Rng>(
    corpus: &[CaptionPair],
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let patch_dim = dataset.images[0].patch_dim();
    let (triples, n_rel) = graph_triples(dataset, tokenizer, 512);
    let model = TransAe::new(tokenizer.vocab_size(), patch_dim, 32, 32, n_rel, rng);
    let tokenised: Vec<(Vec<usize>, &Image)> = corpus
        .iter()
        .map(|pair| (tokenizer.tokenize(&pair.caption), &pair.image))
        .collect();
    model.fit(&tokenised, &triples, epochs, 1e-3, rng);
    let fit_seconds = start.elapsed().as_secs_f64();

    let entity_ids: Vec<Vec<usize>> = (0..dataset.entity_count())
        .map(|e| tokenizer.tokenize(dataset.entity_label(e)))
        .collect();
    let scores = model.score_matrix(&entity_ids, &dataset.images);
    BaselineOutput { name: "TransAE", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image(v: f32) -> Image {
        Image::from_patches(vec![vec![v; 4], vec![v; 4]])
    }

    #[test]
    fn encoders_produce_hidden_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = TransAe::new(30, 4, 8, 12, 2, &mut rng);
        assert_eq!(m.encode_text(&[1, 5]).dims(), &[1, 12]);
        assert_eq!(m.encode_image(&image(1.0)).dims(), &[1, 12]);
        assert_eq!(m.encode_joint(&[1, 5], &image(1.0)).dims(), &[1, 12]);
    }

    #[test]
    fn reconstruction_improves_with_training() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = TransAe::new(30, 4, 8, 12, 1, &mut rng);
        let img = image(1.0);
        let corpus: Vec<(Vec<usize>, &Image)> = vec![(vec![5, 6], &img)];
        let before = m.reconstruction_loss(&[5, 6], &img).item();
        m.fit(&corpus, &[], 30, 2e-3, &mut rng);
        let after = m.reconstruction_loss(&[5, 6], &img).item();
        assert!(after < before, "recon loss {before} -> {after}");
    }

    #[test]
    fn transe_loss_zero_when_negative_is_far() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = TransAe::new(30, 4, 8, 12, 2, &mut rng);
        // With a huge margin the hinge is active; with zero margin and
        // identical pos/neg it should be ~0.
        let loss = m.transe_loss(&[1], 0, &[2], &[2], 0.0).item();
        assert!(loss.abs() < 1e-5);
    }

    #[test]
    fn graph_triples_extracts_relations() {
        let d = crate::common::tests::micro_dataset();
        let tok = Tokenizer::build(["white black bird has color"]);
        let (triples, n_rel) = graph_triples(&d, &tok, 100);
        assert_eq!(triples.len(), 1);
        assert_eq!(n_rel, 1);
    }

    #[test]
    fn score_matrix_dims() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = TransAe::new(30, 4, 8, 12, 1, &mut rng);
        let imgs = vec![image(1.0), image(-1.0), image(0.2)];
        assert_eq!(m.score_matrix(&[vec![1], vec![2]], &imgs).dims(), &[2, 3]);
    }
}
