//! Shared baseline plumbing: score-matrix evaluation, serialisation of
//! graph entities into text (the paper "modif[ies] these model[s] by
//! serializing the graph into texts as presented in our hard prompt"), and
//! seed-pair splits for the supervised methods.

use cem_clip::Tokenizer;
use cem_data::EmDataset;
use cem_tensor::Tensor;
use crossem::metrics::{evaluate_rankings, Metrics};
use crossem::prompt::{hard_prompt, HardPromptOptions};
use rand::seq::SliceRandom;
use rand::Rng;

/// What every baseline produces.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    pub name: &'static str,
    pub metrics: Metrics,
    /// Seconds spent fitting (0 for pure zero-shot methods).
    pub fit_seconds: f64,
}

/// Rank a score matrix `[entities, images]` against the dataset's gold
/// pairs.
pub fn evaluate_scores(scores: &Tensor, dataset: &EmDataset) -> Metrics {
    let rankings = crossem::matcher::rank_images(scores, 0);
    evaluate_rankings(&rankings, |entity, image| dataset.is_match(entity, image))
}

/// Serialise every entity into text via the hard-prompt template (how the
/// paper feeds graph entities to text-consuming baselines), tokenised and
/// truncated to `max_len`.
pub fn serialized_entity_ids(
    dataset: &EmDataset,
    tokenizer: &Tokenizer,
    max_len: usize,
) -> Vec<Vec<usize>> {
    let options = HardPromptOptions { hops: 1, photo_prefix: false, max_subprompts: 16 };
    dataset
        .entities
        .iter()
        .map(|&v| {
            let text = hard_prompt(&dataset.graph, v, &options);
            tokenizer.encode(&text, max_len).0
        })
        .collect()
}

/// A supervised seed split: `fraction` of the entities (with all their gold
/// images) are made available as labelled pairs; the rest stay unseen.
/// Returns `(seed_pairs, seed_entities)` where pairs are
/// `(entity index, image index)`.
pub fn seed_split<R: Rng>(
    dataset: &EmDataset,
    fraction: f32,
    rng: &mut R,
) -> (Vec<(usize, usize)>, Vec<usize>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut entities: Vec<usize> = (0..dataset.entity_count()).collect();
    entities.shuffle(rng);
    let n_seed = ((dataset.entity_count() as f32) * fraction).round() as usize;
    let seed_entities: Vec<usize> = entities.into_iter().take(n_seed.max(1)).collect();
    let mut pairs = Vec::new();
    for &e in &seed_entities {
        for image in dataset.gold_images_of(e) {
            pairs.push((e, image));
        }
    }
    (pairs, seed_entities)
}

/// Mean patch features of every image as a `[M, patch_dim]` tensor — the
/// cheap visual descriptor several baselines consume.
pub fn mean_patch_matrix(dataset: &EmDataset) -> Tensor {
    let rows: Vec<Tensor> = dataset
        .images
        .iter()
        .map(|img| Tensor::from_vec(img.mean_patch(), &[img.patch_dim()]))
        .collect();
    Tensor::stack_rows(&rows)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cem_data::{AttributePool, ClassSpec};
    use cem_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn micro_dataset() -> EmDataset {
        let mut graph = Graph::new();
        let a = graph.add_vertex("white bird");
        let b = graph.add_vertex("black bird");
        let white = graph.add_vertex("white");
        graph.add_edge(a, white, "has color");
        let img = |v: f32| cem_clip::Image::from_patches(vec![vec![v; 4], vec![v * 0.5; 4]]);
        let d = EmDataset {
            name: "m".into(),
            graph,
            entities: vec![a, b],
            classes: vec![
                ClassSpec { name: "white bird".into(), signature: vec![], name_reveals: 0 },
                ClassSpec { name: "black bird".into(), signature: vec![], name_reveals: 0 },
            ],
            images: vec![img(1.0), img(-1.0), img(0.9), img(-0.8)],
            image_gold: vec![0, 1, 0, 1],
            pool: AttributePool::synthesize(2, 2),
        };
        d.validate();
        d
    }

    #[test]
    fn evaluate_scores_matches_manual() {
        let d = micro_dataset();
        // Perfect scores: entity 0 loves images 0,2; entity 1 loves 1,3.
        let scores = Tensor::from_vec(
            vec![0.9, 0.1, 0.8, 0.0, 0.1, 0.9, 0.0, 0.8],
            &[2, 4],
        );
        let m = evaluate_scores(&scores, &d);
        assert_eq!(m.hits_at_1, 1.0);
        assert_eq!(m.mrr, 1.0);
    }

    #[test]
    fn serialization_contains_neighbour_text() {
        let d = micro_dataset();
        let tok = Tokenizer::build(["white black bird has color in and"]);
        let ids = serialized_entity_ids(&d, &tok, 32);
        assert_eq!(ids.len(), 2);
        // Entity 0 mentions "color" (via its edge); entity 1 has no edges.
        assert!(ids[0].len() > ids[1].len());
    }

    #[test]
    fn seed_split_respects_fraction() {
        let d = micro_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let (pairs, seeds) = seed_split(&d, 0.5, &mut rng);
        assert_eq!(seeds.len(), 1);
        assert_eq!(pairs.len(), 2); // each entity has 2 gold images
        for (e, i) in pairs {
            assert!(d.is_match(e, i));
        }
    }

    #[test]
    fn mean_patch_matrix_shape() {
        let d = micro_dataset();
        let m = mean_patch_matrix(&d);
        assert_eq!(m.dims(), &[4, 4]);
        // mean of [v,..] and [0.5v,..] is 0.75v — image 0 has v=1.0.
        assert!((m.at2(0, 0) - 0.75).abs() < 1e-6);
    }
}
