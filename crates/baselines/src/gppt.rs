//! GPPT analogue (paper's "GPPT [31]" row): graph pre-training and prompt
//! tuning, adapted — as the paper does — to a *supervised* binary matching
//! objective. A GNN over the graph produces vertex embeddings; a learnable
//! task-prompt vector and a projection of the image's visual feature feed a
//! binary classifier trained on a labelled seed set. Being graph-native and
//! only shallowly visual, it transfers poorly to the cross-modal task — the
//! behaviour the paper reports.

use std::time::Instant;

use cem_clip::Tokenizer;
use cem_data::EmDataset;
use cem_nn::{GnnLayer, Linear, Module};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, mean_patch_matrix, seed_split, BaselineOutput};

/// The supervised graph-prompt matcher.
pub struct Gppt {
    /// Frozen initial vertex features (mean label-token hash features).
    vertex_features: Tensor,
    gnn: GnnLayer,
    /// Learnable task prompt appended to every vertex embedding.
    task_prompt: Tensor,
    image_proj: Linear,
    classifier: Linear,
    adj: Vec<Vec<usize>>,
    d: usize,
}

/// Cheap deterministic text features (hashed bag of words) — GPPT has no
/// language model; its vertex features come from the graph side.
fn hashed_text_features(tokenizer: &Tokenizer, text: &str, d: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; d];
    for id in tokenizer.tokenize(text) {
        v[id % d] += 1.0;
    }
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    v.iter().map(|x| x / norm).collect()
}

impl Gppt {
    pub fn new<R: Rng>(
        dataset: &EmDataset,
        tokenizer: &Tokenizer,
        d: usize,
        rng: &mut R,
    ) -> Self {
        let graph = &dataset.graph;
        let features: Vec<f32> = graph
            .vertices()
            .flat_map(|v| hashed_text_features(tokenizer, graph.vertex_label(v), d))
            .collect();
        let patch_dim = dataset.images[0].patch_dim();
        Gppt {
            vertex_features: Tensor::from_vec(features, &[graph.vertex_count(), d]),
            gnn: GnnLayer::new(d, d, rng),
            task_prompt: cem_tensor::init::randn(&[1, d], 0.05, rng).requires_grad(),
            image_proj: Linear::new(patch_dim, d, rng),
            classifier: Linear::new(2 * d, 1, rng),
            adj: graph.adjacency(),
            d,
        }
    }

    /// Vertex embeddings for entity indices, with the task prompt added.
    fn entity_embeddings(&self, dataset: &EmDataset, entities: &[usize]) -> Tensor {
        let all = self.gnn.forward(&self.vertex_features, &self.adj);
        let vertex_ids: Vec<usize> = entities.iter().map(|&e| dataset.entities[e].0).collect();
        let gathered = all.gather_rows(&vertex_ids);
        gathered.add_row(&self.task_prompt.reshape(&[self.d]))
    }

    /// Matching logits for entity×image index pairs.
    fn logits(
        &self,
        dataset: &EmDataset,
        image_features: &Tensor,
        pairs: &[(usize, usize)],
    ) -> Tensor {
        let entities: Vec<usize> = pairs.iter().map(|&(e, _)| e).collect();
        let images: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let e = self.entity_embeddings(dataset, &entities);
        let v = self.image_proj.forward(&image_features.gather_rows(&images));
        self.classifier.forward(&e.concat_cols(&v)).reshape(&[pairs.len()])
    }

    /// Supervised binary training on seed pairs + sampled negatives.
    pub fn fit<R: Rng>(
        &self,
        dataset: &EmDataset,
        image_features: &Tensor,
        seed_pairs: &[(usize, usize)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) {
        assert!(!seed_pairs.is_empty(), "GPPT is supervised — needs seed pairs");
        let mut opt = AdamW::new(self.params(), lr);
        let n_images = dataset.image_count();
        for _ in 0..epochs {
            for &(e, i) in seed_pairs {
                // One positive and one corrupted pair per step.
                let mut wrong = rng.gen_range(0..n_images);
                if dataset.is_match(e, wrong) {
                    wrong = (wrong + 1) % n_images;
                }
                let logits = self.logits(dataset, image_features, &[(e, i), (e, wrong)]);
                let p = logits.sigmoid().clamp(1e-6, 1.0 - 1e-6);
                let y = Tensor::from_vec(vec![1.0, 0.0], &[2]);
                let loss = y
                    .mul(&p.ln())
                    .add(&y.neg().add_scalar(1.0).mul(&p.neg().add_scalar(1.0).ln()))
                    .mean()
                    .neg();
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }

    /// `[N, M]` score matrix over all pairs.
    pub fn score_matrix(&self, dataset: &EmDataset, image_features: &Tensor) -> Tensor {
        no_grad(|| {
            let n = dataset.entity_count();
            let m = dataset.image_count();
            let mut rows = Vec::with_capacity(n);
            for e in 0..n {
                let pairs: Vec<(usize, usize)> = (0..m).map(|i| (e, i)).collect();
                rows.push(self.logits(dataset, image_features, &pairs));
            }
            Tensor::stack_rows(&rows)
        })
    }
}

impl Module for Gppt {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("gnn", self.gnn.named_params());
        v.push(("task_prompt".to_string(), self.task_prompt.clone()));
        v.extend(cem_nn::module::with_prefix("image_proj", self.image_proj.named_params()));
        v.extend(cem_nn::module::with_prefix("classifier", self.classifier.named_params()));
        v
    }
}

/// Full GPPT baseline run (supervised with a 25% seed split).
pub fn run<R: Rng>(
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let model = Gppt::new(dataset, tokenizer, 32, rng);
    let image_features = mean_patch_matrix(dataset);
    let (seed_pairs, _) = seed_split(dataset, 0.25, rng);
    model.fit(dataset, &image_features, &seed_pairs, epochs, 1e-3, rng);
    let fit_seconds = start.elapsed().as_secs_f64();
    let scores = model.score_matrix(dataset, &image_features);
    BaselineOutput { name: "GPPT", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hashed_features_are_unit_norm() {
        let tok = Tokenizer::build(["white bird"]);
        let f = hashed_text_features(&tok, "white bird", 8);
        let n: f32 = f.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_label_features_are_zero() {
        let tok = Tokenizer::build(["x"]);
        let f = hashed_text_features(&tok, "", 4);
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pipeline_runs_on_micro_dataset() {
        let d = crate::common::tests::micro_dataset();
        let tok = Tokenizer::build(["white black bird has color"]);
        let mut rng = StdRng::seed_from_u64(0);
        let out = run(&tok, &d, 3, &mut rng);
        assert_eq!(out.name, "GPPT");
        assert!(out.metrics.mrr.is_finite());
        assert!(out.fit_seconds > 0.0);
    }

    #[test]
    fn supervised_training_fits_seed_pairs() {
        let d = crate::common::tests::micro_dataset();
        let tok = Tokenizer::build(["white black bird has color"]);
        let mut rng = StdRng::seed_from_u64(1);
        let model = Gppt::new(&d, &tok, 16, &mut rng);
        let feats = mean_patch_matrix(&d);
        let pairs = vec![(0usize, 0usize), (1, 1)];
        model.fit(&d, &feats, &pairs, 50, 2e-3, &mut rng);
        let scores = model.score_matrix(&d, &feats);
        // Seed pair (0,0) should outscore the corrupted direction (0,1).
        assert!(scores.at2(0, 0) > scores.at2(0, 1));
    }
}
