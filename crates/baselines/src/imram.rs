//! IMRAM analogue (paper's "IMRAM [19]" row): iterative matching with
//! recurrent attention memory. Word fragments attend over patch fragments;
//! the attended context refines the query over `K` iterations (the memory
//! update), and the final score aggregates fragment-level cosine
//! alignments. Trained with a triplet hinge on the caption corpus, as in
//! the original retrieval setting.

use std::time::Instant;

use cem_clip::{Image, Tokenizer};
use cem_data::{CaptionPair, EmDataset};
use cem_nn::{Embedding, Linear, Module};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, serialized_entity_ids, BaselineOutput};

/// The iterative fragment aligner.
pub struct Imram {
    token_emb: Embedding,
    patch_proj: Linear,
    /// Memory update gate `W_m` applied to `[query ‖ context]`.
    memory: Linear,
    steps: usize,
    max_text: usize,
    d_model: usize,
}

impl Imram {
    pub fn new<R: Rng>(vocab: usize, patch_dim: usize, d_model: usize, steps: usize, rng: &mut R) -> Self {
        assert!(steps >= 1, "need at least one attention step");
        Imram {
            token_emb: Embedding::new(vocab, d_model, rng),
            patch_proj: Linear::new(patch_dim, d_model, rng),
            memory: Linear::new(2 * d_model, d_model, rng),
            steps,
            max_text: 16,
            d_model,
        }
    }

    /// Alignment score: mean over words of cos(word_K, context_K) after K
    /// recurrent attention refinements.
    pub fn score_pair(&self, ids: &[usize], image: &Image) -> Tensor {
        let t = ids.len().min(self.max_text);
        let mut words = self.token_emb.forward(&ids[..t]); // [t, d]
        let patches = self.patch_proj.forward(&image.as_tensor()); // [p, d]
        let patches_n = patches.l2_normalize_rows();
        let mut context = Tensor::zeros(&[t, self.d_model]);
        for _ in 0..self.steps {
            let attn = words
                .l2_normalize_rows()
                .matmul_nt(&patches_n)
                .mul_scalar(4.0) // temperature for sharper alignment
                .softmax_rows(); // [t, p]
            context = attn.matmul(&patches); // [t, d]
            // Recurrent memory update: refine the queries with the context.
            words = self.memory.forward(&words.concat_cols(&context)).tanh();
        }
        let cos = words
            .l2_normalize_rows()
            .mul(&context.l2_normalize_rows())
            .sum_rows(); // [t] fragment alignments
        cos.mean()
    }

    /// Triplet hinge pre-training on (caption, image) pairs.
    pub fn fit_corpus<R: Rng>(
        &self,
        corpus: &[(Vec<usize>, &Image)],
        epochs: usize,
        lr: f32,
        margin: f32,
        rng: &mut R,
    ) {
        assert!(corpus.len() >= 2, "triplet training needs at least two pairs");
        let mut opt = AdamW::new(self.params(), lr);
        for _ in 0..epochs {
            for i in 0..corpus.len() {
                let (ids, image) = &corpus[i];
                let mut j = rng.gen_range(0..corpus.len());
                if j == i {
                    j = (j + 1) % corpus.len();
                }
                let pos = self.score_pair(ids, image);
                let neg = self.score_pair(ids, corpus[j].1);
                // hinge: max(0, margin - pos + neg)
                let loss = neg.sub(&pos).add_scalar(margin).relu();
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }

    /// `[N, M]` score matrix.
    pub fn score_matrix(&self, entity_ids: &[Vec<usize>], images: &[Image]) -> Tensor {
        no_grad(|| {
            let rows: Vec<Tensor> = entity_ids
                .iter()
                .map(|ids| {
                    let scores: Vec<Tensor> =
                        images.iter().map(|img| self.score_pair(ids, img)).collect();
                    Tensor::stack_rows(&scores).reshape(&[images.len()])
                })
                .collect();
            Tensor::stack_rows(&rows)
        })
    }
}

impl Module for Imram {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("token_emb", self.token_emb.named_params());
        v.extend(cem_nn::module::with_prefix("patch_proj", self.patch_proj.named_params()));
        v.extend(cem_nn::module::with_prefix("memory", self.memory.named_params()));
        v
    }
}

/// Full IMRAM baseline run.
pub fn run<R: Rng>(
    corpus: &[CaptionPair],
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let patch_dim = dataset.images[0].patch_dim();
    let model = Imram::new(tokenizer.vocab_size(), patch_dim, 48, 2, rng);
    let tokenised: Vec<(Vec<usize>, &Image)> = corpus
        .iter()
        .map(|pair| (tokenizer.encode(&pair.caption, 24).0, &pair.image))
        .collect();
    model.fit_corpus(&tokenised, epochs, 1e-3, 0.3, rng);
    let fit_seconds = start.elapsed().as_secs_f64();

    let entity_ids = serialized_entity_ids(dataset, tokenizer, 24);
    let scores = model.score_matrix(&entity_ids, &dataset.images);
    BaselineOutput { name: "IMRAM", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image(axis: usize) -> Image {
        let mut p = vec![0.0f32; 4];
        p[axis] = 1.0;
        Image::from_patches(vec![p.clone(), p])
    }

    #[test]
    fn score_is_bounded_cosine() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Imram::new(30, 4, 16, 2, &mut rng);
        let s = m.score_pair(&[1, 5, 2], &image(0)).item();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn more_steps_changes_score() {
        let mut rng = StdRng::seed_from_u64(1);
        let m1 = Imram::new(30, 4, 16, 1, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(1);
        let m3 = Imram::new(30, 4, 16, 3, &mut rng2);
        let s1 = m1.score_pair(&[1, 5, 2], &image(1)).item();
        let s3 = m3.score_pair(&[1, 5, 2], &image(1)).item();
        assert!((s1 - s3).abs() > 1e-6, "iteration count had no effect");
    }

    #[test]
    fn triplet_training_orders_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Imram::new(30, 4, 16, 2, &mut rng);
        let img_a = image(0);
        let img_b = image(3);
        let corpus: Vec<(Vec<usize>, &Image)> =
            vec![(vec![1, 7, 2], &img_a), (vec![1, 8, 2], &img_b)];
        m.fit_corpus(&corpus, 60, 2e-3, 0.3, &mut rng);
        let pos = m.score_pair(&[1, 7, 2], &img_a).item();
        let neg = m.score_pair(&[1, 7, 2], &img_b).item();
        assert!(pos > neg, "pos {pos} vs neg {neg}");
    }

    #[test]
    fn score_matrix_dims() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Imram::new(30, 4, 16, 2, &mut rng);
        let imgs = vec![image(0), image(1), image(2)];
        assert_eq!(m.score_matrix(&[vec![1, 2], vec![1, 3]], &imgs).dims(), &[2, 3]);
    }
}
