//! ALIGN (paper's "ALIGN [18]" row): the same dual-encoder architecture as
//! CLIP, pre-trained on *noisy* caption supervision at scale. We reproduce
//! the recipe's defining property — noisy alt-text — by corrupting the
//! caption corpus (word dropout + word swaps from the vocabulary) and extra
//! image noise before contrastive pre-training, then evaluating zero-shot.

use std::time::Instant;

use cem_clip::pretrain::{pretrain, PretrainConfig};
use cem_clip::{Clip, ClipConfig, Image, Tokenizer};
use cem_data::{CaptionPair, EmDataset};
use cem_tensor::init::randn_value;
use rand::Rng;

use crate::clip_zeroshot;
use crate::common::{evaluate_scores, BaselineOutput};

/// Noise parameters for the ALIGN-style corpus corruption.
#[derive(Debug, Clone, Copy)]
pub struct AlignNoise {
    /// Probability a caption word is dropped.
    pub word_dropout: f32,
    /// Probability a caption word is replaced by a random vocabulary word.
    pub word_swap: f32,
    /// Extra Gaussian noise added to every patch value.
    pub image_noise: f32,
}

impl Default for AlignNoise {
    fn default() -> Self {
        AlignNoise { word_dropout: 0.25, word_swap: 0.15, image_noise: 0.3 }
    }
}

fn corrupt_caption<R: Rng>(
    caption: &str,
    tokenizer: &Tokenizer,
    noise: &AlignNoise,
    rng: &mut R,
) -> Vec<usize> {
    let vocab = tokenizer.vocab_size();
    let mut ids = Vec::new();
    ids.push(cem_clip::tokenizer::CLS);
    for id in tokenizer.tokenize(caption) {
        if rng.gen::<f32>() < noise.word_dropout {
            continue;
        }
        if rng.gen::<f32>() < noise.word_swap {
            ids.push(rng.gen_range(cem_clip::tokenizer::UNK + 1..vocab));
        } else {
            ids.push(id);
        }
    }
    ids.push(cem_clip::tokenizer::SEP);
    ids
}

fn corrupt_image<R: Rng>(image: &Image, noise: &AlignNoise, rng: &mut R) -> Image {
    let patches: Vec<Vec<f32>> = (0..image.n_patches())
        .map(|p| {
            image
                .patch(p)
                .iter()
                .map(|v| v + noise.image_noise * randn_value(rng))
                .collect()
        })
        .collect();
    Image::from_patches(patches)
}

/// Pre-train an ALIGN-style dual encoder on the corrupted corpus and
/// evaluate it zero-shot on the dataset.
pub fn run<R: Rng>(
    corpus: &[CaptionPair],
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    patch_dim: usize,
    pretrain_config: &PretrainConfig,
    noise: &AlignNoise,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let model = Clip::new(ClipConfig::small(tokenizer.vocab_size(), patch_dim), rng);
    let noisy_pairs: Vec<(Vec<usize>, Image)> = corpus
        .iter()
        .map(|pair| {
            (
                corrupt_caption(&pair.caption, tokenizer, noise, rng),
                corrupt_image(&pair.image, noise, rng),
            )
        })
        .collect();
    pretrain(&model, &noisy_pairs, pretrain_config, rng);
    let fit_seconds = start.elapsed().as_secs_f64();

    let scores = clip_zeroshot::score_matrix(&model, tokenizer, dataset);
    BaselineOutput { name: "ALIGN", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corruption_changes_tokens_but_keeps_frame() {
        let tokenizer = Tokenizer::build(["a photo of white bird with long wings"]);
        let mut rng = StdRng::seed_from_u64(0);
        let noise = AlignNoise { word_dropout: 0.5, word_swap: 0.3, image_noise: 0.0 };
        let ids = corrupt_caption("a photo of white bird with long wings", &tokenizer, &noise, &mut rng);
        assert_eq!(ids[0], cem_clip::tokenizer::CLS);
        assert_eq!(*ids.last().unwrap(), cem_clip::tokenizer::SEP);
        assert!(ids.len() <= 10);
    }

    #[test]
    fn zero_dropout_preserves_caption() {
        let tokenizer = Tokenizer::build(["white bird"]);
        let mut rng = StdRng::seed_from_u64(1);
        let noise = AlignNoise { word_dropout: 0.0, word_swap: 0.0, image_noise: 0.0 };
        let ids = corrupt_caption("white bird", &tokenizer, &noise, &mut rng);
        assert_eq!(ids.len(), 4); // CLS white bird SEP
    }

    #[test]
    fn corrupt_image_keeps_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let img = Image::from_patches(vec![vec![1.0; 4]; 3]);
        let noisy = corrupt_image(&img, &AlignNoise::default(), &mut rng);
        assert_eq!(noisy.n_patches(), 3);
        assert_eq!(noisy.patch_dim(), 4);
        assert!(noisy.patch(0).iter().zip(img.patch(0)).any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn align_end_to_end_on_smoke_bundle() {
        use cem_data::{BundleConfig, DatasetBundle, DatasetKind};
        let bundle = DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub));
        let mut rng = bundle.stage_rng(7);
        let corpus = cem_data::generate_corpus(
            &mut {  bundle.world },
            &bundle.dataset.pool,
            40,
            &mut rng,
        );
        let config = PretrainConfig { epochs: 2, batch_size: 16, lr: 1e-3, clip_norm: 5.0 };
        let out = run(
            &corpus,
            &bundle.tokenizer,
            &bundle.dataset,
            bundle.dataset.images[0].patch_dim(),
            &config,
            &AlignNoise::default(),
            &mut rng,
        );
        assert_eq!(out.name, "ALIGN");
        assert!(out.fit_seconds > 0.0);
        assert!(out.metrics.mrr.is_finite());
    }
}
