//! TransE (Bordes et al.) — the translational embedding substrate the other
//! KG baselines build on: `h + r ≈ t`, margin-ranking loss against
//! corrupted tails.

use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{init, Tensor};
use rand::Rng;

use crate::kg::store::TripleStore;

/// Entity + relation embedding tables.
pub struct TransE {
    pub entities: Tensor,
    pub relations: Tensor,
    pub dim: usize,
}

impl TransE {
    pub fn new<R: Rng>(store: &TripleStore, dim: usize, rng: &mut R) -> Self {
        TransE {
            entities: init::uniform(&[store.n_entities, dim], -0.5, 0.5, rng).requires_grad(),
            relations: init::uniform(&[store.n_relations, dim], -0.5, 0.5, rng).requires_grad(),
            dim,
        }
    }

    /// Squared translation distance `‖h + r − t‖²` for a batch of triples.
    pub fn distance(&self, triples: &[(usize, usize, usize)]) -> Tensor {
        let hs: Vec<usize> = triples.iter().map(|t| t.0).collect();
        let rs: Vec<usize> = triples.iter().map(|t| t.1).collect();
        let ts: Vec<usize> = triples.iter().map(|t| t.2).collect();
        let h = self.entities.gather_rows(&hs);
        let r = self.relations.gather_rows(&rs);
        let t = self.entities.gather_rows(&ts);
        h.add(&r).sub(&t).square().sum_rows()
    }

    /// Margin-ranking training epoch count over all triples.
    pub fn fit<R: Rng>(&self, store: &TripleStore, epochs: usize, lr: f32, margin: f32, rng: &mut R) {
        if store.triples.is_empty() {
            return;
        }
        let mut opt = AdamW::new(vec![self.entities.clone(), self.relations.clone()], lr);
        for _ in 0..epochs {
            for i in 0..store.triples.len() {
                let pos = store.triples[i];
                let neg = store.corrupt_tail(i, rng);
                let d_pos = self.distance(&[pos]);
                let d_neg = self.distance(&[neg]);
                let loss = d_pos.sub(&d_neg).add_scalar(margin).relu().sum();
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_store() -> TripleStore {
        // 0 -r0-> 1 -r0-> 2, 0 -r1-> 2
        TripleStore::from_triples(vec![(0, 0, 1), (1, 0, 2), (0, 1, 2)], 3, 2)
    }

    #[test]
    fn training_ranks_true_triples_closer() {
        let store = TripleStore::from_triples(vec![(0, 0, 1), (1, 0, 2), (2, 0, 3)], 5, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let model = TransE::new(&store, 8, &mut rng);
        model.fit(&store, 80, 5e-2, 1.0, &mut rng);
        let pos: f32 = model.distance(&[(0, 0, 1)]).item();
        let neg: f32 = model.distance(&[(0, 0, 4)]).item();
        assert!(pos < neg, "pos {pos} vs neg {neg}");
    }

    #[test]
    fn distance_batch_shape() {
        let store = chain_store();
        let mut rng = StdRng::seed_from_u64(1);
        let model = TransE::new(&store, 4, &mut rng);
        let d = model.distance(&store.triples);
        assert_eq!(d.dims(), &[3]);
        assert!(d.to_vec().iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn empty_store_fit_is_noop() {
        let store = TripleStore::from_triples(vec![], 2, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = TransE::new(&store, 4, &mut rng);
        model.fit(&store, 5, 1e-2, 1.0, &mut rng); // must not panic
    }
}
