//! DistMult (paper's "DistMult [44]" row): bilinear-diagonal KG embeddings
//! `s(h, r, t) = Σ_k h_k · r_k · t_k`, trained with a logistic loss against
//! corrupted tails; images aligned into entity space through the shared
//! seed-supervised projection head.

use std::time::Instant;

use cem_clip::Clip;
use cem_data::EmDataset;
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{init, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, seed_split, BaselineOutput};
use crate::kg::store::{align_and_score, clip_image_features, TripleStore};

/// DistMult embedding tables.
pub struct DistMult {
    pub entities: Tensor,
    pub relations: Tensor,
}

impl DistMult {
    pub fn new<R: Rng>(store: &TripleStore, dim: usize, rng: &mut R) -> Self {
        DistMult {
            entities: init::randn(&[store.n_entities, dim], 0.1, rng).requires_grad(),
            relations: init::randn(&[store.n_relations, dim], 0.1, rng).requires_grad(),
        }
    }

    /// Bilinear-diagonal scores for a batch of triples.
    pub fn score(&self, triples: &[(usize, usize, usize)]) -> Tensor {
        let hs: Vec<usize> = triples.iter().map(|t| t.0).collect();
        let rs: Vec<usize> = triples.iter().map(|t| t.1).collect();
        let ts: Vec<usize> = triples.iter().map(|t| t.2).collect();
        let h = self.entities.gather_rows(&hs);
        let r = self.relations.gather_rows(&rs);
        let t = self.entities.gather_rows(&ts);
        h.mul(&r).mul(&t).sum_rows()
    }

    /// Logistic training: positive triples up, corrupted tails down.
    pub fn fit<R: Rng>(&self, store: &TripleStore, epochs: usize, lr: f32, rng: &mut R) {
        if store.triples.is_empty() {
            return;
        }
        let mut opt = AdamW::new(vec![self.entities.clone(), self.relations.clone()], lr);
        for _ in 0..epochs {
            for i in 0..store.triples.len() {
                let pos = store.triples[i];
                let neg = store.corrupt_tail(i, rng);
                let scores = self.score(&[pos, neg]);
                let p = scores.sigmoid().clamp(1e-6, 1.0 - 1e-6);
                let y = Tensor::from_vec(vec![1.0, 0.0], &[2]);
                let loss = y
                    .mul(&p.ln())
                    .add(&y.neg().add_scalar(1.0).mul(&p.neg().add_scalar(1.0).ln()))
                    .mean()
                    .neg();
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }
}

/// Full DistMult baseline run for the case study.
pub fn run<R: Rng>(
    clip: &Clip,
    dataset: &EmDataset,
    kg_epochs: usize,
    align_epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let store = TripleStore::from_dataset(dataset);
    let model = DistMult::new(&store, 32, rng);
    model.fit(&store, kg_epochs, 1e-2, rng);
    let features = clip_image_features(clip, dataset);
    let (seed_pairs, _) = seed_split(dataset, 0.25, rng);
    let scores = align_and_score(
        &model.entities.detach(),
        dataset,
        &features,
        &seed_pairs,
        align_epochs,
        1e-2,
        rng,
    );
    BaselineOutput {
        name: "DistMult",
        metrics: evaluate_scores(&scores, dataset),
        fit_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_separates_true_from_corrupt() {
        let store = TripleStore::from_triples(vec![(0, 0, 1), (2, 0, 3)], 5, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let model = DistMult::new(&store, 8, &mut rng);
        model.fit(&store, 100, 2e-2, &mut rng);
        let pos = model.score(&[(0, 0, 1)]).item();
        let neg = model.score(&[(0, 0, 4)]).item();
        assert!(pos > neg, "pos {pos} vs neg {neg}");
    }

    #[test]
    fn score_is_symmetric_in_head_tail() {
        // DistMult's known property: s(h,r,t) == s(t,r,h).
        let store = TripleStore::from_triples(vec![(0, 0, 1)], 3, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = DistMult::new(&store, 8, &mut rng);
        let a = model.score(&[(0, 0, 1)]).item();
        let b = model.score(&[(1, 0, 0)]).item();
        assert!((a - b).abs() < 1e-5);
    }
}
