//! RSME analogue (paper's "RSME [46]" row): "Is Visual Context Really
//! Helpful" — relation-sensitive multi-modal embedding with a *gate* that
//! decides how much visual evidence to mix into each entity representation.
//! Entities with seed images fuse their mean visual feature through a
//! learned gate; entities without remain structure-only.

use std::time::Instant;

use cem_clip::Clip;
use cem_data::EmDataset;
use cem_nn::{Linear, Module};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, seed_split, BaselineOutput};
use crate::kg::store::{clip_image_features, TripleStore};
use crate::kg::transe::TransE;

/// Gated visual-structural fusion over a TransE backbone.
pub struct Rsme {
    pub backbone: TransE,
    /// Visual projection into entity space.
    visual_proj: Linear,
    /// Gate logits (one per embedding dimension).
    gate: Tensor,
    dim: usize,
}

impl Rsme {
    pub fn new<R: Rng>(store: &TripleStore, dim: usize, feat_dim: usize, rng: &mut R) -> Self {
        Rsme {
            backbone: TransE::new(store, dim, rng),
            visual_proj: Linear::new(feat_dim, dim, rng),
            gate: Tensor::zeros(&[dim]).requires_grad(),
            dim,
        }
    }

    /// Fused entity matrix `[n_entities_graph, dim]` given per-entity mean
    /// visual features (zero rows mean "no visual evidence" — the gate is
    /// then bypassed).
    pub fn fused_entities(&self, visual_means: &Tensor, has_visual: &[bool]) -> Tensor {
        let projected = self.visual_proj.forward(visual_means);
        let g = self.gate.sigmoid(); // [dim]
        let (n, _) = self.backbone.entities.shape().as_matrix();
        let mut mask = vec![0.0f32; n];
        for (i, &h) in has_visual.iter().enumerate() {
            mask[i] = if h { 1.0 } else { 0.0 };
        }
        let mask_t = Tensor::from_vec(mask, &[n]);
        // e' = (1 - m·(1-g))·e + m·(1-g)·Wv  — when m=0 this is e.
        let one_minus_g = g.neg().add_scalar(1.0);
        let structural = self.backbone.entities.clone();
        let keep = structural.mul_col(&mask_t.neg().add_scalar(1.0));
        let gated_e = structural.mul_row(&g).mul_col(&mask_t);
        let gated_v = projected.mul_row(&one_minus_g).mul_col(&mask_t);
        keep.add(&gated_e).add(&gated_v)
    }

    /// Train the fusion head: seed images should land near their entities.
    pub fn fit_fusion<R: Rng>(
        &self,
        dataset: &EmDataset,
        features: &Tensor,
        seed_pairs: &[(usize, usize)],
        epochs: usize,
        lr: f32,
        _rng: &mut R,
    ) {
        let mut params = self.visual_proj.params();
        params.push(self.gate.clone());
        let mut opt = AdamW::new(params, lr);
        for _ in 0..epochs {
            for &(e, i) in seed_pairs {
                let vertex = dataset.entities[e].0;
                let target = no_grad(|| self.backbone.entities.gather_rows(&[vertex]))
                    .detach()
                    .l2_normalize_rows();
                let v = self.visual_proj.forward(&features.gather_rows(&[i])).l2_normalize_rows();
                let loss = v.mul(&target).sum().neg().add_scalar(1.0);
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }

    /// Score matrix from fused entities against projected images.
    pub fn score_matrix(
        &self,
        dataset: &EmDataset,
        features: &Tensor,
        visual_means: &Tensor,
        has_visual: &[bool],
    ) -> Tensor {
        no_grad(|| {
            let fused = self.fused_entities(visual_means, has_visual);
            let rows: Vec<usize> =
                (0..dataset.entity_count()).map(|e| dataset.entities[e].0).collect();
            let e = fused.gather_rows(&rows).l2_normalize_rows();
            let v = self.visual_proj.forward(features).l2_normalize_rows();
            e.matmul_nt(&v)
        })
    }

    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Per-graph-vertex mean visual feature of the seed images (zeros without
/// seeds), plus the has-visual mask.
pub fn seed_visual_means(
    dataset: &EmDataset,
    features: &Tensor,
    seed_pairs: &[(usize, usize)],
) -> (Tensor, Vec<bool>) {
    let n = dataset.graph.vertex_count();
    let d = features.shape().last_dim();
    let mut sums = vec![0.0f32; n * d];
    let mut counts = vec![0usize; n];
    let data = features.to_vec();
    for &(e, i) in seed_pairs {
        let vertex = dataset.entities[e].0;
        counts[vertex] += 1;
        for j in 0..d {
            sums[vertex * d + j] += data[i * d + j];
        }
    }
    let mut has = vec![false; n];
    for (v, &c) in counts.iter().enumerate() {
        if c > 0 {
            has[v] = true;
            for j in 0..d {
                sums[v * d + j] /= c as f32;
            }
        }
    }
    (Tensor::from_vec(sums, &[n, d]), has)
}

/// Full RSME baseline run.
pub fn run<R: Rng>(
    clip: &Clip,
    dataset: &EmDataset,
    kg_epochs: usize,
    align_epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let store = TripleStore::from_dataset(dataset);
    let features = clip_image_features(clip, dataset);
    let model = Rsme::new(&store, 32, features.shape().last_dim(), rng);
    model.backbone.fit(&store, kg_epochs, 1e-2, 1.0, rng);
    let (seed_pairs, _) = seed_split(dataset, 0.25, rng);
    model.fit_fusion(dataset, &features, &seed_pairs, align_epochs, 1e-2, rng);
    let (visual_means, has_visual) = seed_visual_means(dataset, &features, &seed_pairs);
    let scores = model.score_matrix(dataset, &features, &visual_means, &has_visual);
    BaselineOutput {
        name: "RSME",
        metrics: evaluate_scores(&scores, dataset),
        fit_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seed_visual_means_averages_gold_features() {
        let d = crate::common::tests::micro_dataset();
        let features = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 1.0, 3.0, 0.0, 0.0, 3.0],
            &[4, 2],
        );
        let seeds = vec![(0usize, 0usize), (0, 2)];
        let (means, has) = seed_visual_means(&d, &features, &seeds);
        let v0 = d.entities[0].0;
        assert!(has[v0]);
        assert_eq!(means.at2(v0, 0), 2.0); // mean of 1.0 and 3.0
        assert!(!has[d.entities[1].0]);
    }

    #[test]
    fn entities_without_visual_stay_structural() {
        let store = TripleStore::from_triples(vec![(0, 0, 1)], 3, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Rsme::new(&store, 4, 2, &mut rng);
        let means = Tensor::zeros(&[3, 2]);
        let has = vec![false, false, false];
        let fused = model.fused_entities(&means, &has);
        let original = model.backbone.entities.to_vec();
        for (a, b) in fused.to_vec().iter().zip(&original) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn visual_evidence_changes_fused_rows() {
        let store = TripleStore::from_triples(vec![(0, 0, 1)], 3, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = Rsme::new(&store, 4, 2, &mut rng);
        let means = Tensor::from_vec(vec![5.0, -5.0, 0.0, 0.0, 0.0, 0.0], &[3, 2]);
        let fused = model.fused_entities(&means, &[true, false, false]);
        let original = model.backbone.entities.to_vec();
        let row0: Vec<f32> = (0..4).map(|j| fused.at2(0, j)).collect();
        assert!(row0.iter().zip(&original[0..4]).any(|(a, b)| (a - b).abs() > 1e-6));
        // Row 1 untouched.
        let row1: Vec<f32> = (0..4).map(|j| fused.at2(1, j)).collect();
        for (a, b) in row1.iter().zip(&original[4..8]) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
