//! RotatE (paper's "RotatE [45]" row): entities as complex vectors,
//! relations as rotations in the complex plane —
//! `s(h, r, t) = −‖h ∘ r − t‖` with `|r_k| = 1`. Embeddings store
//! interleaved (re, im) pairs; relation parameters are phases.

use std::time::Instant;

use cem_clip::Clip;
use cem_data::EmDataset;
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{init, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, seed_split, BaselineOutput};
use crate::kg::store::{align_and_score, clip_image_features, TripleStore};

/// RotatE embeddings: entities `[N, 2k]` (interleaved complex), relation
/// phases `[R, k]`.
pub struct RotatE {
    pub entities: Tensor,
    pub phases: Tensor,
    k: usize,
}

impl RotatE {
    pub fn new<R: Rng>(store: &TripleStore, k: usize, rng: &mut R) -> Self {
        RotatE {
            entities: init::randn(&[store.n_entities, 2 * k], 0.1, rng).requires_grad(),
            phases: init::uniform(&[store.n_relations, k], -std::f32::consts::PI, std::f32::consts::PI, rng)
                .requires_grad(),
            k,
        }
    }

    /// `‖h ∘ r − t‖²` per triple (lower = more plausible). The rotation is
    /// evaluated outside the autograd graph for the phase trigonometry
    /// (cos/sin of the phases enter as constants per step, with gradients
    /// flowing through the entity embeddings; phases are refreshed each
    /// step — a simplification that keeps the op set minimal while
    /// preserving the scoring geometry).
    pub fn distance(&self, triples: &[(usize, usize, usize)]) -> Tensor {
        let hs: Vec<usize> = triples.iter().map(|t| t.0).collect();
        let rs: Vec<usize> = triples.iter().map(|t| t.1).collect();
        let ts: Vec<usize> = triples.iter().map(|t| t.2).collect();
        let h = self.entities.gather_rows(&hs); // [B, 2k]
        let t = self.entities.gather_rows(&ts);
        // Build rotation factors as constant tensors from current phases.
        let phases = self.phases.gather_rows(&rs).to_vec(); // B*k values
        let b = triples.len();
        let mut cos = vec![0.0f32; b * 2 * self.k];
        let mut sin = vec![0.0f32; b * 2 * self.k];
        for bi in 0..b {
            for j in 0..self.k {
                let phi = phases[bi * self.k + j];
                cos[bi * 2 * self.k + 2 * j] = phi.cos();
                cos[bi * 2 * self.k + 2 * j + 1] = phi.cos();
                sin[bi * 2 * self.k + 2 * j] = phi.sin();
                sin[bi * 2 * self.k + 2 * j + 1] = phi.sin();
            }
        }
        let cos_t = Tensor::from_vec(cos, &[b, 2 * self.k]);
        let sin_t = Tensor::from_vec(sin, &[b, 2 * self.k]);
        // (a+bi)(cosφ+i sinφ) = (a cosφ − b sinφ) + i(a sinφ + b cosφ).
        // Interleaved swap: swapping (re,im) with sign gives the cross term.
        let h_swapped = swap_conjugate(&h, self.k);
        let rotated = h.mul(&cos_t).add(&h_swapped.mul(&sin_t));
        rotated.sub(&t).square().sum_rows()
    }

    /// Margin-ranking training.
    pub fn fit<R: Rng>(&self, store: &TripleStore, epochs: usize, lr: f32, margin: f32, rng: &mut R) {
        if store.triples.is_empty() {
            return;
        }
        let mut opt = AdamW::new(vec![self.entities.clone(), self.phases.clone()], lr);
        for _ in 0..epochs {
            for i in 0..store.triples.len() {
                let pos = store.triples[i];
                let neg = store.corrupt_tail(i, rng);
                let d = self.distance(&[pos, neg]).to_vec();
                let loss_val = (d[0] - d[1] + margin).max(0.0);
                if loss_val == 0.0 {
                    continue;
                }
                let d_t = self.distance(&[pos]);
                let d_n = self.distance(&[neg]);
                let loss = d_t.sub(&d_n).add_scalar(margin).relu().sum();
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }
}

/// For interleaved complex `[.., (re, im), ..]`, produce `(−im, re)` pairs —
/// the `i·z` needed for the rotation cross terms.
fn swap_conjugate(x: &Tensor, k: usize) -> Tensor {
    let (b, width) = x.shape().as_matrix();
    debug_assert_eq!(width, 2 * k);
    let src = x.to_vec();
    let mut out = vec![0.0f32; b * width];
    for bi in 0..b {
        for j in 0..k {
            let re = src[bi * width + 2 * j];
            let im = src[bi * width + 2 * j + 1];
            out[bi * width + 2 * j] = -im;
            out[bi * width + 2 * j + 1] = re;
        }
    }
    // Constant w.r.t. autograd: gradients flow through the cos path, which
    // is sufficient for ranking (see struct docs).
    Tensor::from_vec(out, &[b, width])
}

/// Full RotatE baseline run for the case study.
pub fn run<R: Rng>(
    clip: &Clip,
    dataset: &EmDataset,
    kg_epochs: usize,
    align_epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let store = TripleStore::from_dataset(dataset);
    let model = RotatE::new(&store, 16, rng);
    model.fit(&store, kg_epochs, 1e-2, 1.0, rng);
    let features = clip_image_features(clip, dataset);
    let (seed_pairs, _) = seed_split(dataset, 0.25, rng);
    let scores = align_and_score(
        &model.entities.detach(),
        dataset,
        &features,
        &seed_pairs,
        align_epochs,
        1e-2,
        rng,
    );
    BaselineOutput {
        name: "RotatE",
        metrics: evaluate_scores(&scores, dataset),
        fit_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_phase_rotation_is_identity() {
        let store = TripleStore::from_triples(vec![(0, 0, 0)], 2, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let model = RotatE::new(&store, 4, &mut rng);
        model.phases.copy_from_slice(&[0.0; 4]);
        // h rotated by 0 == h, so distance(h, r, h) == 0.
        let d = model.distance(&[(0, 0, 0)]).item();
        assert!(d < 1e-6, "distance {d}");
    }

    #[test]
    fn swap_conjugate_multiplies_by_i() {
        // (1 + 2i) * i = -2 + i
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let y = swap_conjugate(&x, 1);
        assert_eq!(y.to_vec(), vec![-2.0, 1.0]);
    }

    #[test]
    fn rotation_preserves_norm() {
        let store = TripleStore::from_triples(vec![(0, 0, 1)], 2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = RotatE::new(&store, 4, &mut rng);
        // distance(h, r, 0-vector) equals ||h∘r||² = ||h||² for unit rotations.
        model.entities.data_mut().as_mut_slice()[8..16].fill(0.0); // t = 0
        let h: Vec<f32> = model.entities.to_vec()[0..8].to_vec();
        let h_norm: f32 = h.iter().map(|x| x * x).sum();
        let d = model.distance(&[(0, 0, 1)]).item();
        assert!((d - h_norm).abs() < 1e-4, "{d} vs {h_norm}");
    }

    #[test]
    fn training_ranks_true_triples() {
        let store = TripleStore::from_triples(vec![(0, 0, 1), (2, 0, 3)], 5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = RotatE::new(&store, 8, &mut rng);
        model.fit(&store, 120, 2e-2, 1.0, &mut rng);
        let pos = model.distance(&[(0, 0, 1)]).item();
        let neg = model.distance(&[(0, 0, 4)]).item();
        assert!(pos < neg, "pos {pos} vs neg {neg}");
    }
}
