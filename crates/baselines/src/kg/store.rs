//! Triple store: the graph's edges as `(head, relation, tail)` id triples
//! with interned relation labels, plus shared alignment utilities for the
//! KG baselines.

use std::collections::HashMap;

use cem_clip::Clip;
use cem_data::EmDataset;
use cem_nn::{Linear, Module};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

/// Edges of a graph as id triples.
#[derive(Debug, Clone)]
pub struct TripleStore {
    pub triples: Vec<(usize, usize, usize)>,
    pub n_entities: usize,
    pub n_relations: usize,
    relation_names: Vec<String>,
}

impl TripleStore {
    pub fn from_dataset(dataset: &EmDataset) -> Self {
        let graph = &dataset.graph;
        let mut interner: HashMap<String, usize> = HashMap::new();
        let mut relation_names = Vec::new();
        let mut triples = Vec::with_capacity(graph.edge_count());
        for e in 0..graph.edge_count() {
            let edge = cem_graph::EdgeId(e);
            let (src, dst) = graph.edge_endpoints(edge);
            let label = graph.edge_label(edge);
            let r = *interner.entry(label.to_string()).or_insert_with(|| {
                relation_names.push(label.to_string());
                relation_names.len() - 1
            });
            triples.push((src.0, r, dst.0));
        }
        TripleStore {
            triples,
            n_entities: graph.vertex_count(),
            n_relations: relation_names.len().max(1),
            relation_names,
        }
    }

    /// Construct directly from id triples (tests and synthetic KGs).
    pub fn from_triples(
        triples: Vec<(usize, usize, usize)>,
        n_entities: usize,
        n_relations: usize,
    ) -> Self {
        assert!(n_relations >= 1, "need at least one relation");
        for &(h, r, t) in &triples {
            assert!(h < n_entities && t < n_entities && r < n_relations, "triple out of range");
        }
        TripleStore {
            triples,
            n_entities,
            n_relations,
            relation_names: (0..n_relations).map(|i| format!("r{i}")).collect(),
        }
    }

    pub fn relation_name(&self, r: usize) -> &str {
        &self.relation_names[r]
    }

    /// A corrupted version of triple `i` (random tail), for negative
    /// sampling during embedding training.
    pub fn corrupt_tail<R: Rng>(&self, i: usize, rng: &mut R) -> (usize, usize, usize) {
        let (h, r, t) = self.triples[i];
        let mut bad = rng.gen_range(0..self.n_entities);
        if bad == t {
            bad = (bad + 1) % self.n_entities;
        }
        (h, r, bad)
    }
}

/// Frozen CLIP image embeddings for all dataset images: `[M, D]`,
/// L2-normalised — the visual features the KG baselines consume.
pub fn clip_image_features(clip: &Clip, dataset: &EmDataset) -> Tensor {
    no_grad(|| {
        let refs: Vec<&cem_clip::Image> = dataset.images.iter().collect();
        let mut parts = Vec::new();
        for chunk in refs.chunks(64) {
            parts.push(clip.encode_images(chunk));
        }
        Tensor::concat_rows(&parts)
    })
    .detach()
}

/// Learn a linear projection from image-feature space into an entity
/// embedding space from labelled seed pairs (minimises `1 − cos`), then
/// score every entity against every image by cosine. This is the shared
/// "integration" head of the structure-only KG baselines.
pub fn align_and_score<R: Rng>(
    entity_embeddings: &Tensor, // [n_entities_graph, d] (graph-vertex indexed)
    dataset: &EmDataset,
    image_features: &Tensor, // [M, feat]
    seed_pairs: &[(usize, usize)],
    epochs: usize,
    lr: f32,
    rng: &mut R,
) -> Tensor {
    let d = entity_embeddings.shape().last_dim();
    let feat = image_features.shape().last_dim();
    let proj = Linear::new(feat, d, rng);
    let mut opt = AdamW::new(proj.params(), lr);
    let entity_rows: Vec<usize> =
        (0..dataset.entity_count()).map(|e| dataset.entities[e].0).collect();

    for _ in 0..epochs.max(1) {
        for &(e, i) in seed_pairs {
            let target = no_grad(|| entity_embeddings.gather_rows(&[entity_rows[e]]))
                .detach()
                .l2_normalize_rows();
            let projected =
                proj.forward(&image_features.gather_rows(&[i])).l2_normalize_rows();
            let loss = projected.mul(&target).sum().neg().add_scalar(1.0);
            opt.zero_grad();
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
        }
    }

    no_grad(|| {
        let e = entity_embeddings.gather_rows(&entity_rows).l2_normalize_rows();
        let v = proj.forward(image_features).l2_normalize_rows();
        e.matmul_nt(&v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn store_interns_relations() {
        let d = crate::common::tests::micro_dataset();
        let store = TripleStore::from_dataset(&d);
        assert_eq!(store.triples.len(), 1);
        assert_eq!(store.n_relations, 1);
        assert_eq!(store.relation_name(0), "has color");
        assert_eq!(store.n_entities, 3);
    }

    #[test]
    fn corrupt_tail_changes_tail() {
        let d = crate::common::tests::micro_dataset();
        let store = TripleStore::from_dataset(&d);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let (h, r, t) = store.corrupt_tail(0, &mut rng);
            let (oh, or, ot) = store.triples[0];
            assert_eq!(h, oh);
            assert_eq!(r, or);
            assert_ne!(t, ot);
        }
    }

    #[test]
    fn align_and_score_learns_seed_alignment() {
        let d = crate::common::tests::micro_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        // Hand-crafted entity embeddings: entity vertices 0 and 1 opposite.
        let emb = Tensor::from_vec(
            vec![1.0, 0.0, -1.0, 0.0, 0.0, 1.0],
            &[3, 2],
        );
        // Image features: gold images of entity 0 point one way, of 1 the other.
        let feats = Tensor::from_vec(vec![2.0, -2.0, 1.8, -1.7], &[4, 1]);
        let seed = vec![(0usize, 0usize), (1, 1)];
        let scores = align_and_score(&emb, &d, &feats, &seed, 200, 5e-2, &mut rng);
        assert_eq!(scores.dims(), &[2, 4]);
        // Entity 0 should now prefer its unseen gold image 2 over image 3.
        assert!(scores.at2(0, 2) > scores.at2(0, 3), "{scores:?}");
        assert!(scores.at2(1, 3) > scores.at2(1, 2));
    }
}
