//! Knowledge-graph embedding baselines for the case study (paper Table V):
//! DistMult, RotatE, RSME, and an MKGformer analogue, on a shared TransE
//! substrate and triple store.
//!
//! These are *supervised* multi-modal KG methods: they learn entity and
//! relation embeddings from the graph's triples and align images into the
//! entity space using a labelled seed set (the integration scenario gives
//! them existing image links to learn from). CrossEM remains unsupervised —
//! the gap between the two regimes on *unseen* entities is exactly what
//! Table V demonstrates.

pub mod distmult;
pub mod mkgformer;
pub mod rotate;
pub mod rsme;
pub mod store;
pub mod transe;

pub use store::TripleStore;
