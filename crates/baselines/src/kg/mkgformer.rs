//! MKGformer analogue (paper's "MKGformer [47]" row): a hybrid transformer
//! with multi-level fusion for multi-modal KG completion. Reuses the
//! single-stream fusion scorer as the coarse-grained prefix-guided
//! interaction and adds a fine-grained correlation term (max token↔patch
//! similarity), trained on the labelled seed pairs of the integration
//! scenario.

use std::time::Instant;

use cem_clip::{Image, Tokenizer};
use cem_data::EmDataset;
use cem_nn::{Linear, Module};
use cem_tensor::optim::{AdamW, Optimizer};
use cem_tensor::{no_grad, Tensor};
use rand::Rng;

use crate::common::{evaluate_scores, seed_split, serialized_entity_ids, BaselineOutput};
use crate::visualbert::{FusionConfig, FusionScorer};

/// MKGformer = coarse fusion transformer + fine-grained correlation head.
pub struct MkgFormer {
    fusion: FusionScorer,
    /// Token/patch projections for the correlation module.
    token_proj: Linear,
    patch_proj: Linear,
    token_table: cem_nn::Embedding,
    /// Mixing weight between coarse logit and fine correlation.
    lambda: f32,
    max_text: usize,
}

impl MkgFormer {
    pub fn new<R: Rng>(vocab: usize, patch_dim: usize, rng: &mut R) -> Self {
        let d = 32;
        MkgFormer {
            fusion: FusionScorer::new(vocab, patch_dim, FusionConfig::default(), rng),
            token_proj: Linear::new(d, d, rng),
            patch_proj: Linear::new(patch_dim, d, rng),
            token_table: cem_nn::Embedding::new(vocab, d, rng),
            lambda: 0.5,
            max_text: 16,
        }
    }

    /// Fine-grained correlation: mean over tokens of the max patch cosine.
    fn correlation(&self, ids: &[usize], image: &Image) -> Tensor {
        let t = ids.len().min(self.max_text).max(1);
        let tokens = self
            .token_proj
            .forward(&self.token_table.forward(&ids[..t.min(ids.len())]))
            .l2_normalize_rows();
        let patches = self.patch_proj.forward(&image.as_tensor()).l2_normalize_rows();
        let sims = tokens.matmul_nt(&patches); // [t, p]
        // Differentiable max approximation: temperature-sharpened softmax
        // pooling over patches.
        let weights = sims.mul_scalar(8.0).softmax_rows();
        weights.mul(&sims).sum_rows().mean()
    }

    /// Combined matching score.
    pub fn score_pair(&self, ids: &[usize], image: &Image) -> Tensor {
        let coarse = self.fusion.forward_pair(ids, image).reshape(&[1]);
        let fine = self.correlation(ids, image).reshape(&[1]);
        coarse.mul_scalar(1.0 - self.lambda).add(&fine.mul_scalar(self.lambda))
    }

    /// Seed-supervised training with one corrupted pair per positive.
    pub fn fit<R: Rng>(
        &self,
        entity_ids: &[Vec<usize>],
        dataset: &EmDataset,
        seed_pairs: &[(usize, usize)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) {
        assert!(!seed_pairs.is_empty(), "MKGformer training needs seed pairs");
        let mut opt = AdamW::new(self.params(), lr);
        let n_images = dataset.image_count();
        for _ in 0..epochs {
            for &(e, i) in seed_pairs {
                let mut wrong = rng.gen_range(0..n_images);
                if dataset.is_match(e, wrong) {
                    wrong = (wrong + 1) % n_images;
                }
                let pos = self.score_pair(&entity_ids[e], &dataset.images[i]);
                let neg = self.score_pair(&entity_ids[e], &dataset.images[wrong]);
                let loss = neg.sub(&pos).add_scalar(0.5).relu().sum();
                opt.zero_grad();
                loss.backward();
                opt.clip_grad_norm(5.0);
                opt.step();
            }
        }
    }

    /// `[N, M]` score matrix.
    pub fn score_matrix(&self, entity_ids: &[Vec<usize>], images: &[Image]) -> Tensor {
        no_grad(|| {
            let rows: Vec<Tensor> = entity_ids
                .iter()
                .map(|ids| {
                    let scores: Vec<Tensor> =
                        images.iter().map(|img| self.score_pair(ids, img)).collect();
                    Tensor::stack_rows(&scores).reshape(&[images.len()])
                })
                .collect();
            Tensor::stack_rows(&rows)
        })
    }
}

impl Module for MkgFormer {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("fusion", self.fusion.named_params());
        v.extend(cem_nn::module::with_prefix("token_proj", self.token_proj.named_params()));
        v.extend(cem_nn::module::with_prefix("patch_proj", self.patch_proj.named_params()));
        v.extend(cem_nn::module::with_prefix("token_table", self.token_table.named_params()));
        v
    }
}

/// Full MKGformer baseline run.
pub fn run<R: Rng>(
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    epochs: usize,
    rng: &mut R,
) -> BaselineOutput {
    let start = Instant::now();
    let patch_dim = dataset.images[0].patch_dim();
    let model = MkgFormer::new(tokenizer.vocab_size(), patch_dim, rng);
    let entity_ids = serialized_entity_ids(dataset, tokenizer, 24);
    let (seed_pairs, _) = seed_split(dataset, 0.25, rng);
    model.fit(&entity_ids, dataset, &seed_pairs, epochs, 1e-3, rng);
    let fit_seconds = start.elapsed().as_secs_f64();
    let scores = model.score_matrix(&entity_ids, &dataset.images);
    BaselineOutput { name: "MKGformer", metrics: evaluate_scores(&scores, dataset), fit_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image(v: f32) -> Image {
        Image::from_patches(vec![vec![v; 4], vec![v * 0.3; 4]])
    }

    #[test]
    fn score_pair_is_scalar() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MkgFormer::new(30, 4, &mut rng);
        let s = m.score_pair(&[1, 5, 2], &image(1.0));
        assert_eq!(s.numel(), 1);
        assert!(s.item().is_finite());
    }

    #[test]
    fn correlation_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = MkgFormer::new(30, 4, &mut rng);
        let c = m.correlation(&[1, 5, 2], &image(1.0)).item();
        assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn seed_training_improves_seed_scores() {
        let d = crate::common::tests::micro_dataset();
        let tok = Tokenizer::build(["white black bird has color in and"]);
        let mut rng = StdRng::seed_from_u64(2);
        let m = MkgFormer::new(tok.vocab_size(), 4, &mut rng);
        let ids = serialized_entity_ids(&d, &tok, 16);
        let pairs = vec![(0usize, 0usize), (1, 1)];
        m.fit(&ids, &d, &pairs, 30, 2e-3, &mut rng);
        let s = m.score_matrix(&ids, &d.images);
        assert!(s.at2(0, 0) > s.at2(0, 1), "{s:?}");
    }
}
