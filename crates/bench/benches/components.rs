//! Criterion microbenches over the CrossEM components called out in
//! DESIGN.md's ablation list: prompt generation (hard vs soft), the PCP
//! phases, negative sampling, encoder passes, BFS subgraph extraction, and
//! k-means.

use cem_clip::{Clip, ClipConfig, Tokenizer};
use cem_data::{generate, DatasetKind, DatasetScale};
use criterion::{criterion_group, criterion_main, Criterion};
use crossem::config::{PlusConfig, SoftBackend};
use crossem::kmeans::kmeans;
use crossem::plus::minibatch::{partition_by_proximity, random_partitions};
use crossem::plus::negsample::negative_sampling;
use crossem::prompt::{hard_prompt, HardPromptOptions, SoftPromptGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    dataset: cem_data::EmDataset,
    tokenizer: Tokenizer,
    clip: Clip,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(17);
    let (_, dataset) =
        generate(DatasetKind::Cub, DatasetScale { classes: 20, images_per_class: 3 }, &mut rng);
    let mut texts: Vec<String> = Vec::new();
    for v in dataset.graph.vertices() {
        texts.push(dataset.graph.vertex_label(v).to_string());
    }
    texts.push("a photo of with and in has".into());
    let tokenizer = Tokenizer::build(texts.iter().map(String::as_str));
    let clip = Clip::new(ClipConfig::small(tokenizer.vocab_size(), 16), &mut rng);
    Fixture { dataset, tokenizer, clip }
}

fn bench_prompts(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("prompts");
    let options = HardPromptOptions { hops: 1, photo_prefix: true, max_subprompts: 16 };
    group.bench_function("hard_prompt_20_entities", |b| {
        b.iter(|| {
            for &v in &f.dataset.entities {
                std::hint::black_box(hard_prompt(&f.dataset.graph, v, &options));
            }
        });
    });
    let mut rng = StdRng::seed_from_u64(3);
    let soft = SoftPromptGenerator::new(
        &f.dataset.graph,
        &f.clip.text,
        &f.tokenizer,
        SoftBackend::Gnn,
        0.5,
        &mut rng,
    );
    let batch: Vec<usize> = (0..8).map(|i| f.dataset.entities[i].0).collect();
    group.bench_function("soft_prompts_batch8", |b| {
        b.iter(|| std::hint::black_box(soft.prompts_for(&batch)));
    });
    group.finish();
}

fn bench_encoders(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("encoders");
    group.sample_size(20);
    let (ids, _) = f.tokenizer.encode("a photo of white crown albatross with long wings", 77);
    group.bench_function("text_encode_10_tokens", |b| {
        b.iter(|| cem_tensor::no_grad(|| std::hint::black_box(f.clip.text.encode_ids(&ids))));
    });
    let image = &f.dataset.images[0];
    group.bench_function("image_encode_7_patches", |b| {
        b.iter(|| cem_tensor::no_grad(|| std::hint::black_box(f.clip.image.encode(image))));
    });
    group.bench_function("text_encode_backward", |b| {
        b.iter(|| f.clip.text.encode_ids(&ids).sum().backward());
    });
    group.finish();
}

fn bench_pcp(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("pcp");
    group.sample_size(10);
    let plus = PlusConfig { vertex_subsets: 2, image_clusters: 3, ..PlusConfig::default() };
    // Proximity matrix computed once (phase 1+2 involve encoder passes and
    // are covered by `pairwise_proximity_full` below).
    group.bench_function("pairwise_proximity_full", |b| {
        b.iter(|| {
            std::hint::black_box(crossem::plus::minibatch::pairwise_proximity(
                &f.clip,
                &f.tokenizer,
                &f.dataset,
                1,
            ))
        });
    });
    let proximity = std::rc::Rc::new(crossem::plus::minibatch::pairwise_proximity(
        &f.clip,
        &f.tokenizer,
        &f.dataset,
        1,
    ));
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("partition_phase3", |b| {
        b.iter(|| std::hint::black_box(partition_by_proximity(&proximity, &plus, &mut rng)));
    });
    group.bench_function("random_partitions_control", |b| {
        b.iter(|| {
            std::hint::black_box(random_partitions(
                f.dataset.entity_count(),
                f.dataset.image_count(),
                &plus,
                &mut rng,
            ))
        });
    });
    let pcp = partition_by_proximity(&proximity, &plus, &mut rng);
    group.bench_function("negative_sampling", |b| {
        b.iter(|| {
            let mut parts = pcp.partitions.clone();
            negative_sampling(&mut parts, &proximity, 32, 6, &mut rng);
            std::hint::black_box(parts)
        });
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("substrates");
    group.bench_function("bfs_subgraph_d2", |b| {
        b.iter(|| {
            for &v in f.dataset.entities.iter().take(10) {
                std::hint::black_box(cem_graph::d_hop_subgraph(&f.dataset.graph, v, 2));
            }
        });
    });
    let mut rng = StdRng::seed_from_u64(9);
    let points: Vec<Vec<f32>> = (0..60)
        .map(|i| (0..8).map(|j| ((i * 7 + j) % 13) as f32).collect())
        .collect();
    group.bench_function("kmeans_60x8_k4", |b| {
        b.iter(|| std::hint::black_box(kmeans(&points, 4, 25, &mut rng)));
    });
    group.finish();
}

criterion_group!(components, bench_prompts, bench_encoders, bench_pcp, bench_substrates);
criterion_main!(components);
