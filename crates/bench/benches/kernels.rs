//! Criterion microbenches over the tensor kernels that dominate training:
//! matmul (forward + backward), softmax, layer norm, cross entropy, and the
//! autograd bookkeeping itself.

use cem_tensor::{init, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm_kernels(c: &mut Criterion) {
    use cem_tensor::kernels;
    let mut group = c.benchmark_group("gemm_kernels");
    let mut rng = StdRng::seed_from_u64(7);
    for &n in &[64usize, 128, 256] {
        let a = init::randn(&[n, n], 1.0, &mut rng).to_vec();
        let b = init::randn(&[n, n], 1.0, &mut rng).to_vec();
        let mut out = vec![0.0f32; n * n];
        for threads in [1usize, 4] {
            let id = BenchmarkId::new(format!("blocked_t{threads}"), n);
            group.bench_with_input(id, &n, |bench, _| {
                bench.iter(|| {
                    out.fill(0.0);
                    kernels::gemm_with_threads(&a, &b, &mut out, n, n, n, threads);
                    std::hint::black_box(&mut out);
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("blocked_nt_t1", n), &n, |bench, _| {
            bench.iter(|| {
                out.fill(0.0);
                kernels::gemm_nt_with_threads(&a, &b, &mut out, n, n, n, 1);
                std::hint::black_box(&mut out);
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked_tn_t1", n), &n, |bench, _| {
            bench.iter(|| {
                out.fill(0.0);
                kernels::gemm_tn_with_threads(&a, &b, &mut out, n, n, n, 1);
                std::hint::black_box(&mut out);
            });
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[16usize, 64, 128] {
        let a = init::randn(&[n, n], 1.0, &mut rng);
        let b = init::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
        let a_grad = init::randn(&[n, n], 1.0, &mut rng).requires_grad();
        group.bench_with_input(BenchmarkId::new("forward_backward", n), &n, |bench, _| {
            bench.iter(|| {
                a_grad.zero_grad();
                a_grad.matmul(&b).sum().backward();
            });
        });
        group.bench_with_input(BenchmarkId::new("nt_vs_t", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_rowwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowwise");
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::randn(&[256, 64], 1.0, &mut rng);
    let gamma = Tensor::ones(&[64]);
    let beta = Tensor::zeros(&[64]);
    group.bench_function("softmax_rows_256x64", |b| {
        b.iter(|| std::hint::black_box(x.softmax_rows()));
    });
    group.bench_function("log_softmax_rows_256x64", |b| {
        b.iter(|| std::hint::black_box(x.log_softmax_rows()));
    });
    group.bench_function("layer_norm_256x64", |b| {
        b.iter(|| std::hint::black_box(x.layer_norm(&gamma, &beta, 1e-5)));
    });
    group.bench_function("l2_normalize_256x64", |b| {
        b.iter(|| std::hint::black_box(x.l2_normalize_rows()));
    });
    let targets: Vec<usize> = (0..256).map(|i| i % 64).collect();
    group.bench_function("cross_entropy_256x64", |b| {
        b.iter(|| std::hint::black_box(x.cross_entropy_rows(&targets)));
    });
    group.finish();
}

fn bench_autograd_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("autograd");
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::randn(&[64, 64], 1.0, &mut rng);
    group.bench_function("chain_depth_32_no_grad", |b| {
        b.iter(|| {
            cem_tensor::no_grad(|| {
                let mut y = x.clone();
                for _ in 0..32 {
                    y = y.relu().add_scalar(0.01);
                }
                std::hint::black_box(y)
            })
        });
    });
    let xg = init::randn(&[64, 64], 1.0, &mut rng).requires_grad();
    group.bench_function("chain_depth_32_with_backward", |b| {
        b.iter(|| {
            xg.zero_grad();
            let mut y = xg.clone();
            for _ in 0..32 {
                y = y.relu().add_scalar(0.01);
            }
            y.sum().backward();
        });
    });
    group.finish();
}

criterion_group!(kernels, bench_gemm_kernels, bench_matmul, bench_rowwise, bench_autograd_overhead);
criterion_main!(kernels);
