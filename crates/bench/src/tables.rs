//! One function per paper artefact; the `src/bin/*` entry points are thin
//! wrappers so `run_all` can chain them.

use cem_data::{generate, DatasetKind, DatasetScale};
use crossem::PromptKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    default_plus, metric_cells, prepare, print_table, run_crossem, run_crossem_plus,
    HarnessConfig, MethodResult, PreparedBundle,
};

/// Table I — dataset statistics: generated (at full paper scale) vs. the
/// paper's reported numbers.
pub fn table1(_config: &HarnessConfig) {
    let mut rows = Vec::new();
    for kind in [
        DatasetKind::Cub,
        DatasetKind::Sun,
        DatasetKind::Fb2k,
        DatasetKind::Fb6k,
        DatasetKind::Fb10k,
    ] {
        let mut rng = StdRng::seed_from_u64(17);
        let (_, dataset) = generate(kind, DatasetScale::paper(kind), &mut rng);
        let ours = dataset.stats();
        let paper = kind.paper_stats();
        let fmt_tuples =
            |t: Option<usize>| t.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            kind.label().to_string(),
            format!("{} / {}", ours.vertices, paper.vertices),
            format!("{} / {}", ours.edges, paper.edges),
            format!("{} / {}", fmt_tuples(ours.tuples), fmt_tuples(paper.tuples)),
            format!("{} / {}", ours.images, paper.images),
        ]);
    }
    print_table(
        "Table I — dataset statistics (generated / paper)",
        &["Dataset", "#Vertices", "#Edges", "#Tuples", "#Images"],
        &rows,
    );
}

fn push_metric_row(rows: &mut Vec<Vec<String>>, result: &MethodResult) {
    let mut row = vec![result.name.clone()];
    row.extend(metric_cells(&result.metrics));
    rows.push(row);
}

/// Run the full Table II method roster on one prepared bundle.
pub fn accuracy_roster(prepared: &mut PreparedBundle, config: &HarnessConfig) -> Vec<MethodResult> {
    let mut results = Vec::new();
    let corpus = prepared.corpus(config.pretrain_pairs.min(400));
    let bundle = &prepared.bundle;
    let dataset = &bundle.dataset;
    let tokenizer = &bundle.tokenizer;

    // Dual encoders (zero-shot from pre-training).
    {
        let out = cem_baselines::clip_zeroshot::run(&bundle.clip, tokenizer, dataset);
        results.push(MethodResult {
            name: "CLIP".into(),
            metrics: out.metrics,
            epoch_seconds: out.fit_seconds,
            peak_bytes: 0,
        });
    }
    {
        let mut rng = bundle.stage_rng(201);
        let out = cem_baselines::align::run(
            &corpus,
            tokenizer,
            dataset,
            dataset.images[0].patch_dim(),
            &cem_clip::pretrain::PretrainConfig {
                epochs: config.pretrain_epochs / 2 + 1,
                batch_size: 32,
                lr: 5e-4,
                clip_norm: 5.0,
            },
            &cem_baselines::align::AlignNoise::default(),
            &mut rng,
        );
        results.push(MethodResult {
            name: "ALIGN".into(),
            metrics: out.metrics,
            epoch_seconds: out.fit_seconds,
            peak_bytes: 0,
        });
    }

    // Fusion encoders.
    for (name, out) in [
        ("VisualBERT", {
            let mut rng = bundle.stage_rng(202);
            cem_baselines::visualbert::run(&corpus, tokenizer, dataset, config.fusion_epochs, &mut rng)
        }),
        ("ViLBERT", {
            let mut rng = bundle.stage_rng(203);
            cem_baselines::vilbert::run(&corpus, tokenizer, dataset, config.fusion_epochs, &mut rng)
        }),
        ("TransAE", {
            let mut rng = bundle.stage_rng(204);
            cem_baselines::transae::run(&corpus, tokenizer, dataset, config.fusion_epochs, &mut rng)
        }),
        ("IMRAM", {
            let mut rng = bundle.stage_rng(205);
            cem_baselines::imram::run(&corpus, tokenizer, dataset, config.fusion_epochs, &mut rng)
        }),
    ] {
        results.push(MethodResult {
            name: name.into(),
            metrics: out.metrics,
            epoch_seconds: out.fit_seconds,
            peak_bytes: 0,
        });
    }

    // Prompt-tuning methods.
    {
        let mut rng = bundle.stage_rng(206);
        let out = cem_baselines::gppt::run(tokenizer, dataset, config.em_epochs * 2, &mut rng);
        results.push(MethodResult {
            name: "GPPT".into(),
            metrics: out.metrics,
            epoch_seconds: out.fit_seconds,
            peak_bytes: 0,
        });
    }
    results.push(run_crossem(prepared, PromptKind::Hard, config.em_epochs));
    results.push(run_crossem(prepared, PromptKind::Soft, config.em_epochs));
    results.push(run_crossem_plus(prepared, default_plus(), config.em_epochs, "CrossEM+"));
    results
}

/// Table II — overall accuracy on CUB / SUN / FB2K-IMG.
pub fn table2(config: &HarnessConfig) {
    for kind in [DatasetKind::Cub, DatasetKind::Sun, DatasetKind::Fb2k] {
        let mut prepared = prepare(kind, config);
        let results = accuracy_roster(&mut prepared, config);
        let mut rows = Vec::new();
        for r in &results {
            push_metric_row(&mut rows, r);
        }
        print_table(
            &format!("Table II — overall accuracy on {}", kind.label()),
            &["Method", "H@1", "H@3", "H@5", "MRR"],
            &rows,
        );
    }
    println!(
        "\nPaper reference (H@1): CUB: CLIP 68.0 < hard 72 < soft 78 < CrossEM+ 82;\n\
         SUN: CLIP 26.4 < hard 51.4 < soft 54.8 ≈ CrossEM+ 56.9;\n\
         FB2K: soft 53.5 < hard 60.4 ≈ CLIP 62.1 < CrossEM+ 65.2."
    );
}

/// Table III — training efficiency (per-epoch time, peak memory).
///
/// Run at 2× the accuracy-harness scale: PCP's pruning wins out over its
/// partitioning overhead only once the candidate-pair count is large
/// (exactly the paper's regime — its datasets hold 54M–755M pairs). The
/// Figure-8 harness shows the same crossover explicitly.
pub fn table3(config: &HarnessConfig) {
    for kind in [DatasetKind::Cub, DatasetKind::Sun, DatasetKind::Fb2k] {
        let mut harness = *config;
        harness.scale = cem_data::DatasetScale {
            classes: config.scale.classes * 2,
            images_per_class: config.scale.images_per_class * 2,
        };
        let prepared = prepare(kind, &harness);
        let mut rows = Vec::new();
        for result in [
            run_crossem(&prepared, PromptKind::Soft, config.em_epochs),
            run_crossem_plus(
                &prepared,
                default_plus().without_mbg().without_ns(),
                config.em_epochs,
                "CrossEM+ w/o MBG,NS",
            ),
            run_crossem_plus(&prepared, default_plus(), config.em_epochs, "CrossEM+"),
        ] {
            rows.push(vec![
                result.name.clone(),
                format!("{:.2}", result.epoch_seconds),
                format!("{:.1}", result.mem_mb()),
                format!("{:.2}", result.metrics.mrr),
            ]);
        }
        print_table(
            &format!("Table III — efficiency on {} (T = s/epoch, Mem = peak MB)", kind.label()),
            &["Method", "T (s)", "Mem (MB)", "MRR"],
            &rows,
        );
    }
    println!(
        "\nPaper reference: CrossEM+ is fastest everywhere (~22% faster than the\n\
         runner-up, ~51% faster than CrossEM w/ f_pro^s) and uses the least memory\n\
         (~7–13% less)."
    );
}

/// Figure 8 — scalability across FB2K / FB6K / FB10K.
pub fn fig8(config: &HarnessConfig) {
    let mut rows = Vec::new();
    for (kind, classes) in [
        (DatasetKind::Fb2k, config.scale.classes),
        (DatasetKind::Fb6k, config.scale.classes * 3),
        (DatasetKind::Fb10k, config.scale.classes * 5),
    ] {
        let mut harness = *config;
        harness.scale = DatasetScale { classes, images_per_class: config.scale.images_per_class };
        let prepared = prepare(kind, &harness);
        let pairs = prepared.bundle.dataset.candidate_pair_count();

        let soft = run_crossem(&prepared, PromptKind::Soft, config.em_epochs.min(2));
        let plus = run_crossem_plus(&prepared, default_plus(), config.em_epochs.min(2), "CrossEM+");
        for result in [&soft, &plus] {
            rows.push(vec![
                kind.label().to_string(),
                format!("{pairs}"),
                result.name.clone(),
                format!("{:.2}", result.metrics.mrr),
                format!("{:.2}", result.epoch_seconds),
                format!("{:.1}", result.mem_mb()),
            ]);
        }
    }
    print_table(
        "Figure 8 — scalability on FBxK-IMG (scaled-down sizes, same 1:3:5 ratio)",
        &["Dataset", "Pairs", "Method", "MRR", "T (s/epoch)", "Mem (MB)"],
        &rows,
    );
    println!(
        "\nPaper reference: CrossEM+ beats CrossEM w/ f_pro^s on MRR, time and\n\
         memory at every size, and its time/memory growth is flatter."
    );
}

/// Table IV — ablation study.
pub fn table4(config: &HarnessConfig) {
    for kind in [DatasetKind::Cub, DatasetKind::Sun, DatasetKind::Fb2k] {
        let prepared = prepare(kind, config);
        let mut rows = Vec::new();
        for result in [
            run_crossem(&prepared, PromptKind::Hard, config.em_epochs),
            run_crossem(&prepared, PromptKind::Soft, config.em_epochs),
            run_crossem_plus(&prepared, default_plus().without_mbg(), config.em_epochs, "CrossEM+ w/o MBG"),
            run_crossem_plus(&prepared, default_plus().without_ns(), config.em_epochs, "CrossEM+ w/o NS"),
            run_crossem_plus(&prepared, default_plus().without_opc(), config.em_epochs, "CrossEM+ w/o OPC"),
            run_crossem_plus(&prepared, default_plus(), config.em_epochs, "CrossEM+ (full)"),
        ] {
            rows.push(vec![
                result.name.clone(),
                format!("{:.2}", result.metrics.hits_at_1 * 100.0),
                format!("{:.2}", result.metrics.hits_at_5 * 100.0),
                format!("{:.2}", result.metrics.mrr),
                format!("{:.2}", result.epoch_seconds),
                format!("{:.1}", result.mem_mb()),
            ]);
        }
        print_table(
            &format!("Table IV — ablations on {}", kind.label()),
            &["Method", "H@1", "H@5", "MRR", "T (s)", "Mem (MB)"],
            &rows,
        );
    }
    println!(
        "\nPaper reference: MBG cuts time/memory without hurting accuracy; NS and\n\
         OPC each buy a little accuracy and efficiency; the full CrossEM+ is the\n\
         best or tied-best cell in every column."
    );
}

/// Table V — case study: multi-modal knowledge-graph integration on FB-IMG.
pub fn table5(config: &HarnessConfig) {
    let mut prepared = prepare(DatasetKind::Fb2k, config);
    let corpus = prepared.corpus(config.pretrain_pairs.min(400));
    let mut rows = Vec::new();

    {
        let bundle = &prepared.bundle;
        let dataset = &bundle.dataset;
        let tokenizer = &bundle.tokenizer;
        let kg_epochs = config.em_epochs * 4;
        let align_epochs = config.em_epochs * 4;
        let outs = vec![
            {
                let mut rng = bundle.stage_rng(301);
                cem_baselines::vilbert::run(&corpus, tokenizer, dataset, config.fusion_epochs, &mut rng)
            },
            {
                let mut rng = bundle.stage_rng(302);
                cem_baselines::transae::run(&corpus, tokenizer, dataset, config.fusion_epochs, &mut rng)
            },
            {
                let mut rng = bundle.stage_rng(303);
                cem_baselines::kg::distmult::run(&bundle.clip, dataset, kg_epochs, align_epochs, &mut rng)
            },
            {
                let mut rng = bundle.stage_rng(304);
                cem_baselines::kg::rotate::run(&bundle.clip, dataset, kg_epochs, align_epochs, &mut rng)
            },
            {
                let mut rng = bundle.stage_rng(305);
                cem_baselines::kg::rsme::run(&bundle.clip, dataset, kg_epochs, align_epochs, &mut rng)
            },
            {
                let mut rng = bundle.stage_rng(306);
                cem_baselines::kg::mkgformer::run(tokenizer, dataset, config.em_epochs * 2, &mut rng)
            },
        ];
        for out in outs {
            let mut row = vec![out.name.to_string()];
            row.extend(metric_cells(&out.metrics));
            rows.push(row);
        }
    }

    for result in [
        run_crossem(&prepared, PromptKind::Hard, config.em_epochs),
        run_crossem(&prepared, PromptKind::Soft, config.em_epochs),
        run_crossem_plus(&prepared, default_plus(), config.em_epochs, "CrossEM+"),
    ] {
        let mut row = vec![result.name.clone()];
        row.extend(metric_cells(&result.metrics));
        rows.push(row);
    }

    print_table(
        "Table V — multi-modal KG integration on FB-IMG",
        &["Method", "H@1", "H@3", "H@5", "MRR"],
        &rows,
    );
    println!(
        "\nPaper reference (H@1): KG/fusion methods cluster at 19–26; CrossEM w/\n\
         f_pro^s 53.5 < f_pro^h 60.4 < CrossEM+ 65.2."
    );
}
