//! Open-loop load generation for the serving drills (DESIGN.md §12).
//!
//! Every generator produces a sorted [`Arrival`] schedule on the virtual
//! clock, fully determined by its `(parameters, seed)` — inter-arrival
//! gaps come from a splitmix64-driven uniform stream, never from wall
//! clock or a global RNG, so a schedule replays bit-identically and two
//! runs (e.g. brownout on vs. off) can face the *same* traffic.
//!
//! Shapes:
//!
//! * [`poisson`] — a homogeneous Poisson process: exponential gaps at a
//!   constant `rate` (requests per virtual unit), the canonical open-loop
//!   arrival model.
//! * [`bursty`] — a base Poisson rate with a multiplied window
//!   ([`BurstSpec`]): the saturation drill that brownout must survive.
//! * [`diurnal`] — a sinusoidally modulated rate (period ≫ wave), the
//!   slow ramp-up/ramp-down shape of daily traffic.
//! * [`with_hot_keys`] — a post-pass that skews entity choice so a small
//!   set of hot entities absorbs most requests.

use cem_serve::{splitmix64, Arrival, MatchRequest};

/// Uniform in `(0, 1]` from the `i`-th draw of a splitmix64 stream. The
/// `+1` keeps `ln` finite.
fn uniform(seed: u64, i: u64) -> f64 {
    ((splitmix64(seed, i) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Core inhomogeneous generator: `n` arrivals whose gap at virtual time
/// `t` is exponential with rate `rate_at(t)` (requests per virtual unit).
/// Request ids are the arrival sequence `0..n`, entities round-robin, and
/// per-request seeds derive from `seed` — the same convention as
/// [`MatchRequest::stream`].
fn open_loop(
    n: usize,
    entities: usize,
    seed: u64,
    mut rate_at: impl FnMut(u64) -> f64,
) -> Vec<Arrival> {
    assert!(entities > 0, "open_loop: empty catalogue");
    let gap_seed = splitmix64(seed, 0x4_AA7);
    let mut at: u64 = 0;
    (0..n)
        .map(|i| {
            let rate = rate_at(at);
            assert!(rate > 0.0, "open_loop: non-positive rate {rate} at t={at}");
            let gap = -uniform(gap_seed, i as u64).ln() / rate;
            at = at.saturating_add(gap.round() as u64);
            Arrival {
                at,
                request: MatchRequest {
                    id: i as u64,
                    entity: i % entities,
                    seed: splitmix64(seed, i as u64),
                },
            }
        })
        .collect()
}

/// Homogeneous Poisson arrivals at `rate` requests per virtual unit.
pub fn poisson(n: usize, rate: f64, entities: usize, seed: u64) -> Vec<Arrival> {
    open_loop(n, entities, seed, |_| rate)
}

/// A rate-multiplied window inside an otherwise steady schedule.
#[derive(Debug, Clone, Copy)]
pub struct BurstSpec {
    /// Virtual tick the burst starts at.
    pub start: u64,
    /// Virtual tick the burst ends at (exclusive).
    pub end: u64,
    /// Rate multiplier inside the window (e.g. `4.0` turns a half-
    /// saturation base load into 2× saturation).
    pub multiplier: f64,
}

/// Poisson arrivals at `base_rate`, multiplied by `burst.multiplier`
/// inside the burst window.
pub fn bursty(
    n: usize,
    base_rate: f64,
    burst: BurstSpec,
    entities: usize,
    seed: u64,
) -> Vec<Arrival> {
    assert!(burst.start < burst.end, "bursty: empty burst window");
    open_loop(n, entities, seed, |t| {
        if (burst.start..burst.end).contains(&t) {
            base_rate * burst.multiplier
        } else {
            base_rate
        }
    })
}

/// Sinusoidally modulated arrivals: `rate(t) = base_rate · (1 + amplitude
/// · sin(2πt / period))`. `amplitude` must stay below 1 so the rate is
/// always positive.
pub fn diurnal(
    n: usize,
    base_rate: f64,
    amplitude: f64,
    period: u64,
    entities: usize,
    seed: u64,
) -> Vec<Arrival> {
    assert!((0.0..1.0).contains(&amplitude), "diurnal: amplitude must be in [0, 1)");
    assert!(period > 0, "diurnal: zero period");
    open_loop(n, entities, seed, |t| {
        let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
        base_rate * (1.0 + amplitude * phase.sin())
    })
}

/// Skew entity choice in place: with probability `hot_fraction` a request
/// targets one of the first `hot_keys` entities, otherwise any of
/// `entities`. Timing is untouched, so a skewed schedule is directly
/// comparable to its round-robin original.
pub fn with_hot_keys(
    arrivals: &mut [Arrival],
    entities: usize,
    hot_keys: usize,
    hot_fraction: f64,
    seed: u64,
) {
    assert!(hot_keys >= 1 && hot_keys <= entities, "with_hot_keys: bad hot set size");
    assert!((0.0..=1.0).contains(&hot_fraction), "with_hot_keys: bad fraction");
    let pick_seed = splitmix64(seed, 0x407);
    for arrival in arrivals.iter_mut() {
        let id = arrival.request.id;
        let pool = if uniform(pick_seed, id) <= hot_fraction { hot_keys } else { entities };
        arrival.request.entity = (splitmix64(pick_seed, id ^ 0x5EED) % pool as u64) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_sorted_and_deterministic() {
        let a = poisson(500, 0.01, 7, 42);
        let b = poisson(500, 0.01, 7, 42);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "arrivals must be sorted");
        assert_ne!(a, poisson(500, 0.01, 7, 43), "seed must matter");
        for (i, arrival) in a.iter().enumerate() {
            assert_eq!(arrival.request.id, i as u64);
        }
    }

    #[test]
    fn rate_controls_the_span() {
        let slow = poisson(1000, 0.005, 3, 1);
        let fast = poisson(1000, 0.05, 3, 1);
        assert!(
            fast.last().unwrap().at < slow.last().unwrap().at,
            "10× the rate must compress the schedule"
        );
        // And the mean gap lands near 1/rate.
        let span = slow.last().unwrap().at as f64;
        let mean_gap = span / 1000.0;
        assert!((120.0..280.0).contains(&mean_gap), "mean gap {mean_gap} far from 1/rate = 200");
    }

    #[test]
    fn burst_window_packs_arrivals_densely() {
        let burst = BurstSpec { start: 10_000, end: 30_000, multiplier: 8.0 };
        let schedule = bursty(2000, 0.01, burst, 3, 5);
        let in_window =
            schedule.iter().filter(|a| (burst.start..burst.end).contains(&a.at)).count();
        let window_units = (burst.end - burst.start) as f64;
        let window_rate = in_window as f64 / window_units;
        assert!(
            window_rate > 0.04,
            "burst window rate {window_rate:.4} should be far above the 0.01 base"
        );
    }

    #[test]
    fn diurnal_rate_oscillates_but_stays_sorted() {
        let schedule = diurnal(2000, 0.01, 0.8, 20_000, 3, 9);
        assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
        // Density over the first half-period (rate up) beats the second
        // (rate down).
        let half = 10_000;
        let first = schedule.iter().filter(|a| a.at < half).count();
        let second = schedule.iter().filter(|a| (half..2 * half).contains(&a.at)).count();
        assert!(first > second, "up-phase {first} should outnumber down-phase {second}");
    }

    #[test]
    fn hot_keys_concentrate_traffic() {
        let mut schedule = poisson(4000, 0.01, 100, 11);
        with_hot_keys(&mut schedule, 100, 4, 0.9, 11);
        let hot = schedule.iter().filter(|a| a.request.entity < 4).count();
        assert!(
            hot as f64 / 4000.0 > 0.8,
            "90% hot fraction landed only {hot}/4000 on the hot set"
        );
        assert!(schedule.iter().all(|a| a.request.entity < 100));
        // Replaying the skew is deterministic too.
        let mut again = poisson(4000, 0.01, 100, 11);
        with_hot_keys(&mut again, 100, 4, 0.9, 11);
        assert_eq!(schedule, again);
    }
}
