//! # cem-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! CrossEM paper's evaluation section, plus Criterion microbenches over the
//! building blocks.
//!
//! Binaries (run with `cargo run --release -p cem-bench --bin <name>`):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1_stats` | Table I — dataset statistics |
//! | `table2_accuracy` | Table II — overall accuracy |
//! | `table3_efficiency` | Table III — training time & memory |
//! | `fig8_scalability` | Figure 8 — scalability on FBxK-IMG |
//! | `table4_ablation` | Table IV — ablation study |
//! | `table5_casestudy` | Table V — MKG integration case study |
//! | `run_all` | everything above in sequence |
//! | `fault_drill` | resilience drills: crash/resume equivalence, NaN-injection rollback, checkpoint corruption rejection, torn-rotation fallback (writes `BENCH_robustness.json`) |
//! | `chaos_drill` | serving chaos drills: latency spikes, worker panics, NaN features, corrupt cache rows, overload shedding, thread-count determinism (writes `BENCH_chaos.json`) |
//! | `load_drill` | open-loop overload drills: admission queue + brownout under Poisson/burst/diurnal/hot-key arrivals, mid-run generation hot-swap, thread-count determinism (writes `BENCH_serving.json`) |
//!
//! All harnesses honour `--quick` (smaller data/epochs) and print both
//! measured numbers and the paper's reference values so shape comparisons
//! are one glance away. Measured absolute values differ from the paper
//! (CPU + miniature models, see DESIGN.md); the *orderings* are what this
//! harness reproduces.

use cem_clip::pretrain::PretrainConfig;
use cem_data::{BundleConfig, DatasetBundle, DatasetKind, DatasetScale};
use crossem::config::{PlusConfig, SoftBackend};
use crossem::metrics::Metrics;
use crossem::plus::CrossEmPlus;
use crossem::{CrossEm, PromptKind, TrainConfig};

/// One method's row in an accuracy/efficiency table.
#[derive(Debug, Clone)]
pub struct MethodResult {
    pub name: String,
    pub metrics: Metrics,
    /// Average seconds per training epoch (fit time for one-shot methods).
    pub epoch_seconds: f64,
    /// Peak live tensor bytes during training (0 where not measured).
    pub peak_bytes: usize,
}

impl MethodResult {
    pub fn mem_mb(&self) -> f64 {
        self.peak_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Render a results table with a title and column headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("| ");
        for (cell, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("{cell:<w$} | "));
        }
        out
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&header_cells));
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Harness knobs shared by all table binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    pub scale: DatasetScale,
    pub pretrain_pairs: usize,
    pub pretrain_epochs: usize,
    /// CrossEM / CrossEM⁺ tuning epochs (paper: 30; scaled down here).
    pub em_epochs: usize,
    /// Fusion baseline pre-training epochs.
    pub fusion_epochs: usize,
    pub seed: u64,
}

impl HarnessConfig {
    /// Standard harness scale (minutes per dataset on a laptop CPU).
    pub fn standard() -> Self {
        HarnessConfig {
            scale: DatasetScale { classes: 40, images_per_class: 4 },
            pretrain_pairs: 2500,
            pretrain_epochs: 12,
            em_epochs: 6,
            fusion_epochs: 2,
            seed: 17,
        }
    }

    /// Smoke scale: seconds per dataset, for CI and `--quick`.
    pub fn quick() -> Self {
        HarnessConfig {
            scale: DatasetScale { classes: 10, images_per_class: 3 },
            pretrain_pairs: 120,
            pretrain_epochs: 4,
            em_epochs: 2,
            fusion_epochs: 1,
            seed: 17,
        }
    }

    /// Parse from CLI args: `--quick` selects the smoke scale.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            HarnessConfig::quick()
        } else {
            HarnessConfig::standard()
        }
    }

    pub fn bundle_config(&self, kind: DatasetKind) -> BundleConfig {
        BundleConfig {
            kind,
            scale: self.scale,
            pretrain_pairs: self.pretrain_pairs,
            pretrain: PretrainConfig {
                epochs: self.pretrain_epochs,
                batch_size: 64,
                lr: 1e-3,
                clip_norm: 5.0,
            },
            seed: self.seed,
        }
    }
}

/// Prepare a bundle and snapshot its pre-trained weights so each method can
/// start from the identical checkpoint.
pub fn prepare(kind: DatasetKind, config: &HarnessConfig) -> PreparedBundle {
    eprintln!("[prepare] generating {} and pre-training CLIP …", kind.label());
    let bundle = DatasetBundle::prepare(config.bundle_config(kind));
    let snapshot = {
        use cem_nn::Module;
        bundle.clip.state_dict()
    };
    PreparedBundle { bundle, snapshot, kind }
}

/// A bundle plus the pristine pre-trained checkpoint.
pub struct PreparedBundle {
    pub bundle: DatasetBundle,
    snapshot: cem_tensor::io::StateDict,
    pub kind: DatasetKind,
}

impl PreparedBundle {
    /// Restore the pre-trained weights (undo any prompt tuning).
    pub fn reset_clip(&self) {
        use cem_nn::Module;
        self.bundle.clip.set_trainable(true);
        self.bundle.clip.load_state_dict(&self.snapshot);
    }

    /// Dataset-appropriate training config for a prompt kind (the paper
    /// uses GNN on CUB/SUN and GraphSAGE on the FB graphs).
    pub fn train_config(&self, prompt: PromptKind, epochs: usize) -> TrainConfig {
        let (soft_backend, max_subprompts, mining_prior_weight) = match self.kind {
            DatasetKind::Cub => (SoftBackend::Gnn, 16, 0.5),
            DatasetKind::Sun => (SoftBackend::Gnn, 8, 0.25),
            _ => (SoftBackend::GraphSage, 1, 1.0),
        };
        TrainConfig {
            prompt,
            hops: 1,
            epochs,
            soft_backend,
            max_subprompts,
            mining_prior_weight,
            batch_vertices: 8,
            batch_images: 32,
            ..TrainConfig::default()
        }
    }

    /// Regenerate a caption corpus from the bundle's world (for baselines
    /// that pre-train themselves).
    pub fn corpus(&mut self, n: usize) -> Vec<cem_data::CaptionPair> {
        let mut rng = self.bundle.stage_rng(101);
        cem_data::generate_corpus(&mut self.bundle.world, &self.bundle.dataset.pool, n, &mut rng)
    }
}

/// Run plain CrossEM with the given prompt.
pub fn run_crossem(prepared: &PreparedBundle, prompt: PromptKind, epochs: usize) -> MethodResult {
    prepared.reset_clip();
    let bundle = &prepared.bundle;
    let mut rng = bundle.stage_rng(11 + prompt as u64);
    let config = prepared.train_config(prompt, epochs);
    let matcher = CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, config, &mut rng);
    let report = matcher.train(&mut rng);
    let metrics = matcher.evaluate();
    MethodResult {
        name: format!(
            "CrossEM w/ f_pro^{}",
            match prompt {
                PromptKind::Baseline => "0",
                PromptKind::Hard => "h",
                PromptKind::Soft => "s",
            }
        ),
        metrics,
        epoch_seconds: report.avg_epoch_seconds(),
        peak_bytes: report.peak_bytes(),
    }
}

/// Run CrossEM⁺ (soft prompt) with the given optimisation toggles.
pub fn run_crossem_plus(
    prepared: &PreparedBundle,
    plus: PlusConfig,
    epochs: usize,
    label: &str,
) -> MethodResult {
    prepared.reset_clip();
    let bundle = &prepared.bundle;
    let mut rng = bundle.stage_rng(31);
    let config = prepared.train_config(PromptKind::Soft, epochs);
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        config,
        plus,
        &mut rng,
    );
    let report = trainer.train(&mut rng);
    let metrics = trainer.evaluate();
    MethodResult {
        name: label.to_string(),
        metrics,
        epoch_seconds: report.train.avg_epoch_seconds(),
        peak_bytes: report.train.peak_bytes(),
    }
}

/// The CrossEM⁺ default configuration used across harnesses.
pub fn default_plus() -> PlusConfig {
    PlusConfig {
        vertex_subsets: 4,
        image_clusters: 4,
        prune_quantile: 0.35,
        negative_top_k: 6,
        ..PlusConfig::default()
    }
}

/// Format a metrics row `[H@1, H@3, H@5, MRR]` as strings.
pub fn metric_cells(m: &Metrics) -> Vec<String> {
    vec![
        format!("{:.2}", m.hits_at_1 * 100.0),
        format!("{:.2}", m.hits_at_3 * 100.0),
        format!("{:.2}", m.hits_at_5 * 100.0),
        format!("{:.2}", m.mrr),
    ]
}
pub mod faults;
pub mod load;
pub mod tables;
