//! Regenerates every table and figure in sequence.
fn main() {
    let config = cem_bench::HarnessConfig::from_args();
    cem_bench::tables::table1(&config);
    cem_bench::tables::table2(&config);
    cem_bench::tables::table3(&config);
    cem_bench::tables::fig8(&config);
    cem_bench::tables::table4(&config);
    cem_bench::tables::table5(&config);
}
