//! Diagnostic: pre-training quality and zero-shot behaviour per dataset.
use cem_data::DatasetKind;

fn main() {
    let config = cem_bench::HarnessConfig::from_args();
    for kind in [DatasetKind::Cub, DatasetKind::Sun, DatasetKind::Fb2k] {
        let mut prepared = cem_bench::prepare(kind, &config);
        let losses = &prepared.bundle.pretrain_report.epoch_losses;
        println!("{}: pretrain losses {:?}", kind.label(), losses);
        // Retrieval accuracy on a fresh aligned corpus sample.
        let corpus = prepared.corpus(100);
        let pairs: Vec<(Vec<usize>, cem_clip::Image)> = corpus
            .into_iter()
            .map(|p| (prepared.bundle.tokenizer.encode(&p.caption, 77).0, p.image))
            .collect();
        let acc = cem_clip::pretrain::aligned_top1_accuracy(&prepared.bundle.clip, &pairs);
        println!("{}: aligned top-1 on held-out corpus = {:.3}", kind.label(), acc);
        let out = cem_baselines::clip_zeroshot::run(
            &prepared.bundle.clip,
            &prepared.bundle.tokenizer,
            &prepared.bundle.dataset,
        );
        println!("{}: zero-shot EM {}", kind.label(), out.metrics.row());
    }
}
