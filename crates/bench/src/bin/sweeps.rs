//! Hyper-parameter sweeps for the design choices called out in DESIGN.md:
//!
//! 1. hard-prompt token budget (77 vs 512 — paper Sec. III-B drawback (2)
//!    and the Sec. V-A note on extending the context window),
//! 2. soft-prompt aggregation weight α (Eq. 6),
//! 3. loss mixing weight β (Eq. 10),
//! 4. negative-sampling top-k depth (Alg. 3),
//! 5. PCP prune quantile θ (Alg. 2).
//!
//! ```text
//! cargo run --release -p cem-bench --bin sweeps [--quick]
//! ```

use cem_bench::{default_plus, prepare, print_table, run_crossem_plus, HarnessConfig};
use cem_data::DatasetKind;
use crossem::{CrossEm, PromptKind};

fn main() {
    let config = HarnessConfig::from_args();
    let prepared = prepare(DatasetKind::Cub, &config);

    // ---- 1. hard prompt token budget --------------------------------
    {
        let mut rows = Vec::new();
        for budget in [24usize, 48, 77] {
            prepared.reset_clip();
            let bundle = &prepared.bundle;
            let mut rng = bundle.stage_rng(400 + budget as u64);
            let mut cfg = prepared.train_config(PromptKind::Hard, config.em_epochs);
            cfg.max_prompt_len = budget;
            let matcher =
                CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, cfg, &mut rng);
            let report = matcher.train(&mut rng);
            let metrics = matcher.evaluate();
            rows.push(vec![
                budget.to_string(),
                format!("{:.2}", metrics.hits_at_1 * 100.0),
                format!("{:.2}", metrics.mrr),
                format!("{:.2}", report.avg_epoch_seconds()),
            ]);
        }
        print_table(
            "Sweep — hard-prompt token budget (CUB): truncation costs structure",
            &["max tokens", "H@1", "MRR", "T (s/epoch)"],
            &rows,
        );
    }

    // ---- 2. soft prompt α -------------------------------------------
    {
        let mut rows = Vec::new();
        for alpha in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            prepared.reset_clip();
            let bundle = &prepared.bundle;
            let mut rng = bundle.stage_rng(500 + (alpha * 100.0) as u64);
            let mut cfg = prepared.train_config(PromptKind::Soft, config.em_epochs);
            cfg.alpha = alpha;
            let matcher =
                CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, cfg, &mut rng);
            matcher.train(&mut rng);
            let metrics = matcher.evaluate();
            rows.push(vec![
                format!("{alpha:.2}"),
                format!("{:.2}", metrics.hits_at_1 * 100.0),
                format!("{:.2}", metrics.mrr),
            ]);
        }
        print_table(
            "Sweep — soft-prompt aggregation weight α (Eq. 6, CUB)",
            &["alpha", "H@1", "MRR"],
            &rows,
        );
    }

    // ---- 3. OPC mixing weight β --------------------------------------
    {
        let mut rows = Vec::new();
        for beta in [0.5f32, 0.7, 0.8, 0.9, 1.0] {
            let mut plus = default_plus();
            let label = format!("beta={beta:.1}");
            let result = {
                let mut cfg_holder = prepared.train_config(PromptKind::Soft, config.em_epochs);
                cfg_holder.beta = beta;
                // run through the plus trainer to include OPC
                prepared.reset_clip();
                let bundle = &prepared.bundle;
                let mut rng = bundle.stage_rng(600 + (beta * 100.0) as u64);
                plus.orthogonal_constraint = beta < 1.0;
                let trainer = crossem::plus::CrossEmPlus::new(
                    &bundle.clip,
                    &bundle.tokenizer,
                    &bundle.dataset,
                    cfg_holder,
                    plus,
                    &mut rng,
                );
                trainer.train(&mut rng);
                trainer.evaluate()
            };
            rows.push(vec![
                label,
                format!("{:.2}", result.hits_at_1 * 100.0),
                format!("{:.2}", result.mrr),
            ]);
        }
        print_table(
            "Sweep — loss mixing weight β (Eq. 10, CUB; β=1 disables OPC)",
            &["beta", "H@1", "MRR"],
            &rows,
        );
    }

    // ---- 4. negative sampling depth ----------------------------------
    {
        let mut rows = Vec::new();
        for top_k in [1usize, 4, 8, 16] {
            let mut plus = default_plus();
            plus.negative_top_k = top_k;
            let result = run_crossem_plus(
                &prepared,
                plus,
                config.em_epochs,
                &format!("top_k={top_k}"),
            );
            rows.push(vec![
                result.name.clone(),
                format!("{:.2}", result.metrics.hits_at_1 * 100.0),
                format!("{:.2}", result.metrics.mrr),
                format!("{:.2}", result.epoch_seconds),
            ]);
        }
        print_table(
            "Sweep — negative sampling top-k (Alg. 3, CUB)",
            &["setting", "H@1", "MRR", "T (s/epoch)"],
            &rows,
        );
    }

    // ---- 5. PCP prune quantile ----------------------------------------
    {
        let mut rows = Vec::new();
        for q in [0.0f32, 0.2, 0.35, 0.5, 0.7] {
            let mut plus = default_plus();
            plus.prune_quantile = q;
            let result =
                run_crossem_plus(&prepared, plus, config.em_epochs, &format!("theta={q:.2}"));
            rows.push(vec![
                result.name.clone(),
                format!("{:.2}", result.metrics.hits_at_1 * 100.0),
                format!("{:.2}", result.metrics.mrr),
                format!("{:.2}", result.epoch_seconds),
            ]);
        }
        print_table(
            "Sweep — PCP prune quantile θ (Alg. 2, CUB): time falls, accuracy holds until over-pruning",
            &["setting", "H@1", "MRR", "T (s/epoch)"],
            &rows,
        );
    }
}
