//! Chaos drills for the serving path (`cem-serve`, DESIGN.md §11). The
//! drill builds the full four-tier [`ServeIndex`] from a trained world,
//! then drives [`MatchService`] through scripted fault storms — every
//! request must resolve as served, shed, or deadline-exceeded; a process
//! abort is an automatic failure. Five drills plus a determinism check:
//!
//! 1. **Latency spikes** — severe spikes blow the attempt timeout, retry
//!    to the cap, and degrade; mild spikes slow the request but still
//!    serve the full tier.
//! 2. **Worker panics** — panics are caught at the pool boundary, retried,
//!    and a panic storm trips the soft-encoder breaker; after the cooldown
//!    a probe recovers the tier.
//! 3. **NaN-poisoned features** — the non-finite top-score check degrades
//!    the request; the served ranking is exactly the clean next tier's.
//! 4. **Corrupted cache rows** — per-row CRC-32 verification catches the
//!    damage and degrades past the cached tier without retrying.
//! 5. **Overload** — bursts beyond the queue depth shed the tail
//!    deterministically at admission.
//!
//! The determinism check replays a combined fault storm at 1 and 4 worker
//! threads and requires bit-identical responses, traces, and stats.
//!
//! Per-tier wall latency (p50/p99 from the `serve.match.<tier>` spans),
//! shed rate, breaker trips, and degraded-tier accuracy vs. the full tier
//! are written to `BENCH_chaos.json`. Honours `--quick` / `--smoke`.

use std::fmt::Write as _;
use std::rc::Rc;

use cem_bench::faults::ServeFaultPlan;
use cem_bench::{default_plus, prepare, HarnessConfig};
use cem_data::DatasetKind;
use cem_serve::{
    cached_proximity_scores, hard_prompt_scores, silence_injected_panics, zero_shot_scores,
    BreakerConfig, Component, FaultKind, MatchRequest, MatchService, Outcome, Response,
    ServeConfig, ServeIndex, ServeStats, Tier,
};
use cem_tensor::par::ThreadsGuard;
use crossem::matcher::{rank_images, rank_row};
use crossem::metrics::{evaluate_rankings, Metrics};
use crossem::prompt::HardPromptOptions;
use crossem::plus::CrossEmPlus;
use crossem::{FeatureCache, PromptKind};

/// Stage index for the drill RNG (distinct from the table harness stages).
const DRILL_STAGE: u64 = 88;

/// Requests per drill stream. Long enough for a breaker to trip, cool
/// down (8..=12 ticks), half-open, and recover within one stream.
fn stream_len(quick: bool) -> usize {
    if quick {
        32
    } else {
        96
    }
}

fn serve_config(seed: u64, images: usize) -> ServeConfig {
    ServeConfig { seed, top_k: images.min(10), wave: 8, ..ServeConfig::default() }
}

/// The expected ranking a clean serve of `tier` must return — computed
/// straight off the index, independent of the service pipeline.
fn expected_ranking(index: &ServeIndex, tier: Tier, entity: usize, top_k: usize) -> Vec<usize> {
    rank_row(index.row(tier, entity), top_k)
}

fn served_tier(response: &Response) -> Option<Tier> {
    response.outcome.served_tier()
}

/// Every response must resolve to a terminal state. (The enum makes this
/// structural; the assertion documents the invariant, and burst-mode
/// drills must additionally never see the open-loop-only or internal-error
/// outcomes.)
fn assert_all_resolved(tag: &str, responses: &[Response]) {
    for r in responses {
        match &r.outcome {
            Outcome::Served { .. } | Outcome::Shed | Outcome::DeadlineExceeded => {}
            Outcome::Expired => panic!("[{tag}] req {}: queue expiry in burst mode", r.id),
            Outcome::InternalError => panic!("[{tag}] req {}: internal error", r.id),
        }
    }
    eprintln!("[{tag}] {} requests, all resolved", responses.len());
}

fn main() {
    silence_injected_panics();
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let config = if quick { HarnessConfig::quick() } else { HarnessConfig::standard() };
    let n = stream_len(quick);

    // ---------------------------------------------------------------
    // Build the four-tier index. The zero/hard/cached tiers score with
    // the *pristine* pre-trained towers (the cache fingerprint covers the
    // encoder weights, and prompt tuning mutates the text tower), so they
    // are computed before training; the full tier is the tuned CrossEM⁺
    // matching matrix.
    // ---------------------------------------------------------------
    let prepared = prepare(DatasetKind::Cub, &config);
    let bundle = &prepared.bundle;
    let dataset = &bundle.dataset;
    let train_config = prepared.train_config(PromptKind::Soft, config.em_epochs);

    eprintln!("[index] scoring zero-shot / hard-prompt / cached tiers (pristine towers) …");
    prepared.reset_clip();
    let zero = zero_shot_scores(&bundle.clip, &bundle.tokenizer, dataset);
    let hard = hard_prompt_scores(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
        &HardPromptOptions {
            hops: train_config.hops,
            max_subprompts: train_config.max_subprompts,
            ..HardPromptOptions::default()
        },
    );
    let cache = Rc::new(FeatureCache::new());
    let cached =
        cached_proximity_scores(&cache, &bundle.clip, &bundle.tokenizer, dataset, train_config.hops);

    eprintln!("[index] training CrossEM⁺ for the full tier ({} epochs) …", config.em_epochs);
    let mut rng = bundle.stage_rng(DRILL_STAGE);
    let trainer = CrossEmPlus::with_feature_cache(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
        train_config,
        default_plus(),
        Rc::clone(&cache),
        &mut rng,
    );
    trainer.train(&mut rng);
    let full = trainer.matching_matrix().to_vec();

    let entities = dataset.entity_count();
    let images = dataset.image_count();
    let index = ServeIndex::new(entities, images, [full, cached, hard, zero]);

    // Per-tier accuracy straight off the index: what each rung of the
    // ladder costs in ranking quality when the service degrades to it.
    let tier_metrics: [Metrics; Tier::COUNT] = std::array::from_fn(|t| {
        let rankings = rank_images(&index.tier_matrix(Tier::ALL[t]), 0);
        evaluate_rankings(&rankings, |e, i| dataset.is_match(e, i))
    });
    let full_mrr = tier_metrics[Tier::Full.index()].mrr as f64;
    for tier in Tier::ALL {
        eprintln!("[accuracy] {:<6} {}", tier.label(), tier_metrics[tier.index()].row());
    }

    // Telemetry on for the serving phase; span deltas taken at the end.
    let _obs = cem_obs::force_enable();
    let obs_before = cem_obs::global().snapshot();
    let base = serve_config(config.seed, images);
    let mut total = ServeStats::default();

    // ---------------------------------------------------------------
    // Drill 1: latency spikes. Breaker threshold is lifted out of the way
    // so the verdict isolates timeout/retry/degrade behaviour.
    // ---------------------------------------------------------------
    eprintln!("[drill 1] latency spikes (severe time out, mild serve) …");
    let severe = n / 4;
    let mild = n / 2;
    let mut plan = ServeFaultPlan::new();
    for id in 0..severe as u64 {
        plan = plan.fault_all_attempts(id, Tier::Full, FaultKind::LatencySpike { units: 10_000 });
    }
    for id in severe as u64..mild as u64 {
        plan = plan.fault_all_attempts(id, Tier::Full, FaultKind::LatencySpike { units: 100 });
    }
    let lifted = BreakerConfig { failure_threshold: u32::MAX, ..base.breaker };
    let mut service =
        MatchService::new(ServeConfig { breaker: lifted, ..base }, &index);
    let responses = service.run(&MatchRequest::stream(n, entities, config.seed), &plan);
    assert_all_resolved("drill 1", &responses);
    let drill1_pass = responses.iter().all(|r| {
        let id = r.id as usize;
        if id < severe {
            // Severe: every attempt times out → retried to the cap, then
            // served from the cached tier.
            served_tier(r) == Some(Tier::Cached) && r.retries == base.retry.max_retries
        } else if id < mild {
            // Mild: slowed but under the attempt timeout → full tier,
            // with the spike charged to the virtual clock.
            served_tier(r) == Some(Tier::Full)
                && r.cost_units == base.tier_cost[Tier::Full.index()] + 100
        } else {
            served_tier(r) == Some(Tier::Full)
        }
    }) && service.stats().breaker_trips == 0;
    total_add(&mut total, service.stats());
    println!("[drill 1] latency spikes → {}", verdict(drill1_pass));

    // ---------------------------------------------------------------
    // Drill 2: worker panic storm trips the breaker; a probe recovers it.
    // ---------------------------------------------------------------
    eprintln!("[drill 2] panic storm → breaker trip → probe recovery …");
    let storm = 6u64;
    let mut plan = ServeFaultPlan::new();
    for id in 0..storm {
        plan = plan.fault_all_attempts(id, Tier::Full, FaultKind::WorkerPanic);
    }
    let mut service = MatchService::new(base, &index);
    let responses = service.run(&MatchRequest::stream(n, entities, config.seed), &plan);
    assert_all_resolved("drill 2", &responses);
    let tripped = service.breaker_trips(Component::SoftEncoder) >= 1;
    let skipped = service.trace().iter().any(|l| l.contains("skip full"));
    let recovered =
        service.trace().iter().any(|l| l.contains("breaker soft_encoder recovered"));
    let storm_degraded = responses
        .iter()
        .take(storm as usize)
        .all(|r| served_tier(r) == Some(Tier::Cached));
    let tail_full = served_tier(responses.last().unwrap()) == Some(Tier::Full);
    let drill2_pass = tripped && skipped && recovered && storm_degraded && tail_full;
    total_add(&mut total, service.stats());
    println!(
        "[drill 2] trips {} skipped {skipped} recovered {recovered} → {}",
        service.breaker_trips(Component::SoftEncoder),
        verdict(drill2_pass)
    );

    // ---------------------------------------------------------------
    // Drill 3: NaN-poisoned features degrade without retry and never leak
    // a garbage ranking — the served ranking is the clean cached tier's.
    // ---------------------------------------------------------------
    eprintln!("[drill 3] NaN-poisoned full-tier features …");
    let poisoned = n / 3;
    let mut plan = ServeFaultPlan::new();
    for id in 0..poisoned as u64 {
        plan = plan.fault_all_attempts(id, Tier::Full, FaultKind::NanFeatures);
    }
    let mut service =
        MatchService::new(ServeConfig { breaker: lifted, ..base }, &index);
    let requests = MatchRequest::stream(n, entities, config.seed);
    let responses = service.run(&requests, &plan);
    assert_all_resolved("drill 3", &responses);
    let drill3_pass = responses.iter().zip(&requests).all(|(r, q)| {
        let want = if (r.id as usize) < poisoned { Tier::Cached } else { Tier::Full };
        match &r.outcome {
            Outcome::Served { tier, ranking } => {
                *tier == want
                    && r.retries == 0
                    && *ranking == expected_ranking(&index, want, q.entity, base.top_k)
            }
            _ => false,
        }
    });
    total_add(&mut total, service.stats());
    println!("[drill 3] NaN features → {}", verdict(drill3_pass));

    // ---------------------------------------------------------------
    // Drill 4: corrupted cache rows. NaN kills the full tier, the CRC
    // check kills the cached tier, so the storm lands on the hard tier.
    // ---------------------------------------------------------------
    eprintln!("[drill 4] corrupted cache rows under a NaN-poisoned full tier …");
    let corrupted = n / 3;
    let mut plan = ServeFaultPlan::new();
    for id in 0..corrupted as u64 {
        plan = plan
            .fault_all_attempts(id, Tier::Full, FaultKind::NanFeatures)
            .fault_all_attempts(id, Tier::Cached, FaultKind::CorruptCache);
    }
    let mut service =
        MatchService::new(ServeConfig { breaker: lifted, ..base }, &index);
    let responses = service.run(&MatchRequest::stream(n, entities, config.seed), &plan);
    assert_all_resolved("drill 4", &responses);
    let checksum_caught =
        service.trace().iter().any(|l| l.contains("row checksum mismatch"));
    let drill4_pass = checksum_caught
        && responses.iter().all(|r| {
            let want = if (r.id as usize) < corrupted { Tier::Hard } else { Tier::Full };
            served_tier(r) == Some(want)
        });
    total_add(&mut total, service.stats());
    println!("[drill 4] corrupt cache → {}", verdict(drill4_pass));

    // ---------------------------------------------------------------
    // Drill 5: overload sheds the tail at admission, nothing else.
    // ---------------------------------------------------------------
    eprintln!("[drill 5] overload burst past the queue depth …");
    let depth = n / 2;
    let mut service =
        MatchService::new(ServeConfig { max_queue_depth: depth, ..base }, &index);
    let responses = service.run(
        &MatchRequest::stream(n, entities, config.seed),
        &ServeFaultPlan::new(),
    );
    assert_all_resolved("drill 5", &responses);
    let drill5_pass = service.stats().shed == (n - depth) as u64
        && service.stats().admitted == depth as u64
        && responses[..depth].iter().all(|r| served_tier(r) == Some(Tier::Full))
        && responses[depth..].iter().all(|r| r.outcome == Outcome::Shed);
    total_add(&mut total, service.stats());
    println!(
        "[drill 5] shed {}/{} → {}",
        service.stats().shed,
        n,
        verdict(drill5_pass)
    );

    // ---------------------------------------------------------------
    // Determinism: a combined storm replayed at 1 and 4 threads must be
    // bit-identical — responses, traces, and stats.
    // ---------------------------------------------------------------
    eprintln!("[determinism] combined storm at 1 vs 4 threads …");
    let mut storm_plan = ServeFaultPlan::new();
    for id in 0..(n / 6) as u64 {
        storm_plan = storm_plan.fault_all_attempts(id, Tier::Full, FaultKind::WorkerPanic);
    }
    for id in (n / 6) as u64..(n / 3) as u64 {
        storm_plan = storm_plan
            .fault_all_attempts(id, Tier::Full, FaultKind::LatencySpike { units: 10_000 })
            .fault_all_attempts(id, Tier::Cached, FaultKind::CorruptCache);
    }
    for id in (n / 3) as u64..(n / 2) as u64 {
        storm_plan = storm_plan.fault_all_attempts(id, Tier::Full, FaultKind::NanFeatures);
    }
    let requests = MatchRequest::stream(n, entities, config.seed.wrapping_add(1));
    let run_with = |threads: usize| {
        let _guard = ThreadsGuard::new(threads);
        let mut service = MatchService::new(base, &index);
        let responses = service.run(&requests, &storm_plan);
        (responses, service.trace().to_vec(), service.stats().clone())
    };
    let (r1, t1, s1) = run_with(1);
    let (r4, t4, s4) = run_with(4);
    let determinism_pass = r1 == r4 && t1 == t4 && s1 == s4;
    total_add(&mut total, &s1);
    total_add(&mut total, &s4);
    println!("[determinism] 1 vs 4 threads → {}", verdict(determinism_pass));

    // ---------------------------------------------------------------
    // Summary + BENCH_chaos.json
    // ---------------------------------------------------------------
    let obs_after = cem_obs::global().snapshot();
    let window = obs_after.delta_since(&obs_before);
    let latency_ms = |tier: Tier, q: f64| -> f64 {
        window
            .span(&format!("serve.match.{}", tier.label()))
            .map_or(0.0, |s| s.approx_quantile(q) / 1e6)
    };

    let all_pass = drill1_pass
        && drill2_pass
        && drill3_pass
        && drill4_pass
        && drill5_pass
        && determinism_pass;
    let processed = total.admitted + total.shed;
    let shed_rate = if processed == 0 { 0.0 } else { total.shed as f64 / processed as f64 };
    println!(
        "\nserving: {} requests, shed rate {:.3}, {} breaker trips, {} retries, \
         {} deadline-exceeded",
        processed, shed_rate, total.breaker_trips, total.retries, total.deadline_exceeded
    );
    println!("chaos drill: {}", if all_pass { "ALL PASS" } else { "FAILURES" });

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"chaos_drill\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "quick" } else { "standard" });
    let _ = writeln!(json, "  \"entities\": {entities},");
    let _ = writeln!(json, "  \"images\": {images},");
    let _ = writeln!(json, "  \"requests_per_drill\": {n},");
    let _ = writeln!(json, "  \"tiers\": {{");
    for (i, tier) in Tier::ALL.iter().enumerate() {
        let m = &tier_metrics[tier.index()];
        let _ = writeln!(json, "    \"{}\": {{", tier.label());
        let _ = writeln!(json, "      \"served\": {},", total.served[tier.index()]);
        let _ = writeln!(json, "      \"latency_p50_ms\": {:.4},", latency_ms(*tier, 0.5));
        let _ = writeln!(json, "      \"latency_p99_ms\": {:.4},", latency_ms(*tier, 0.99));
        if total.served[tier.index()] == 0 {
            // A tier that served nothing has no accuracy sample; null beats
            // a fabricated 0.0 that downstream dashboards would average in.
            let _ = writeln!(json, "      \"hits_at_1\": null,");
            let _ = writeln!(json, "      \"mrr\": null,");
            let _ = writeln!(json, "      \"mrr_vs_full\": null");
        } else {
            let _ = writeln!(json, "      \"hits_at_1\": {:.4},", m.hits_at_1);
            let _ = writeln!(json, "      \"mrr\": {:.4},", m.mrr);
            let _ =
                writeln!(json, "      \"mrr_vs_full\": {:.4}", m.mrr as f64 / full_mrr.max(1e-9));
        }
        let _ = writeln!(json, "    }}{}", if i + 1 < Tier::COUNT { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(json, "  \"breaker_trips\": {},", total.breaker_trips);
    let _ = writeln!(json, "  \"retries\": {},", total.retries);
    let _ = writeln!(json, "  \"deadline_exceeded\": {},", total.deadline_exceeded);
    let _ = writeln!(json, "  \"drill1_latency_pass\": {drill1_pass},");
    let _ = writeln!(json, "  \"drill2_panic_breaker_pass\": {drill2_pass},");
    let _ = writeln!(json, "  \"drill3_nan_pass\": {drill3_pass},");
    let _ = writeln!(json, "  \"drill4_corrupt_cache_pass\": {drill4_pass},");
    let _ = writeln!(json, "  \"drill5_shed_pass\": {drill5_pass},");
    let _ = writeln!(json, "  \"determinism_pass\": {determinism_pass},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");

    if !all_pass {
        std::process::exit(1);
    }
}

fn total_add(total: &mut ServeStats, stats: &ServeStats) {
    total.admitted += stats.admitted;
    total.shed += stats.shed;
    total.expired += stats.expired;
    for t in 0..Tier::COUNT {
        total.served[t] += stats.served[t];
        total.brownout_waves[t] += stats.brownout_waves[t];
    }
    total.deadline_exceeded += stats.deadline_exceeded;
    total.internal_errors += stats.internal_errors;
    total.retries += stats.retries;
    total.breaker_trips += stats.breaker_trips;
    total.waves += stats.waves;
    total.hotswap_promotes += stats.hotswap_promotes;
    total.hotswap_rejects += stats.hotswap_rejects;
}

fn verdict(pass: bool) -> &'static str {
    if pass {
        "PASS"
    } else {
        "FAIL"
    }
}
