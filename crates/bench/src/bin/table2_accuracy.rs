//! Regenerates the paper artefact; see `cem_bench::tables::table2`.
fn main() {
    let config = cem_bench::HarnessConfig::from_args();
    cem_bench::tables::table2(&config);
}
