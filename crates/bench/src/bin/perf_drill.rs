//! Performance drills for the parallel kernel layer and the frozen-feature
//! cache (see DESIGN.md, "Performance"). Four sections, each with timings
//! and — wherever parallelism is involved — a hard bit-identity verdict:
//!
//! 1. **GEMM kernels** — the blocked register-tiled kernel vs a local
//!    reimplementation of the seed's naive triple loop, at 1/2/4 threads.
//!    Outputs at every thread count must match bit-for-bit.
//! 2. **Proximity construction** — `pairwise_proximity` at 1/2/4 threads
//!    (bit-identical), plus the [`FeatureCache`] cold-miss vs warm-hit
//!    cost.
//! 3. **CrossEM epoch** — one tuning epoch at 1/2/4 threads via
//!    [`TrainOptions::threads`]; trained parameters must be bitwise equal.
//! 4. **CrossEM⁺ epoch** — same drill through the PCP/negative-sampling
//!    path and the shared feature cache.
//!
//! Results land in `BENCH_perf.json`. Honours `--quick`; `--smoke` is the
//! same scale with the large GEMM sizes dropped (for CI).

use std::fmt::Write as _;
use std::time::Instant;

use cem_bench::{default_plus, prepare, HarnessConfig, PreparedBundle};
use cem_data::DatasetKind;
use cem_tensor::{kernels, par};
use crossem::plus::minibatch::pairwise_proximity;
use crossem::plus::CrossEmPlus;
use crossem::trainer::TrainOptions;
use crossem::{CrossEm, FeatureCache, PromptKind};

/// Stage index for the drill RNG (distinct from the table harness stages).
const DRILL_STAGE: u64 = 88;

/// Thread budgets every parallel section is drilled at.
const THREADS: [usize; 3] = [1, 2, 4];

/// The seed's GEMM, kept verbatim as the baseline the blocked kernel is
/// measured against: naive i-k-j triple loop with the zero-skip branch.
fn naive_gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[kk * n + j];
            }
        }
    }
}

/// Deterministic pseudo-random matrix fill (xorshift; no rand dependency
/// needed for raw slices).
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1 << 24) as f32 - 0.5
        })
        .collect()
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Median-of-reps wall time in milliseconds.
fn bench_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps).map(|_| time_ms(&mut f)).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct GemmRow {
    n: usize,
    naive_ms: f64,
    blocked_ms: [f64; 3],
    packed_ms: [f64; 3],
    auto_tier: &'static str,
    identical: bool,
}

impl GemmRow {
    /// t1 time of the tier the dispatching entry point actually uses.
    fn auto_t1_ms(&self) -> f64 {
        if self.auto_tier == "packed" {
            self.packed_ms[0]
        } else {
            self.blocked_ms[0]
        }
    }

    /// t1/t4 scaling ratio of the shipping tier (>1 means threads help).
    fn scaling_t4(&self) -> f64 {
        let ms = if self.auto_tier == "packed" { &self.packed_ms } else { &self.blocked_ms };
        ms[0] / ms[2].max(1e-9)
    }
}

fn drill_gemm(sizes: &[usize]) -> Vec<GemmRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let a = fill(0x5eed + n as u64, n * n);
        let b = fill(0xbeef + n as u64, n * n);
        let reps = if n >= 512 { 3 } else { 5 };

        let mut c_naive = vec![0.0f32; n * n];
        let naive_ms = bench_ms(reps, || {
            c_naive.fill(0.0);
            naive_gemm(&a, &b, &mut c_naive, n, n, n);
        });

        // Both tiers at every thread budget; bit-identity is asserted
        // within each tier (the tiers use different — both deterministic —
        // accumulation schedules, so cross-tier bits may differ).
        let mut blocked_ms = [0.0f64; 3];
        let mut packed_ms = [0.0f64; 3];
        let mut blocked_outs: Vec<Vec<f32>> = Vec::new();
        let mut packed_outs: Vec<Vec<f32>> = Vec::new();
        for (slot, &t) in THREADS.iter().enumerate() {
            let mut c = vec![0.0f32; n * n];
            blocked_ms[slot] = bench_ms(reps, || {
                c.fill(0.0);
                kernels::gemm_blocked_with_threads(&a, &b, &mut c, n, n, n, t);
            });
            blocked_outs.push(c);
            let mut c = vec![0.0f32; n * n];
            packed_ms[slot] = bench_ms(reps, || {
                c.fill(0.0);
                kernels::gemm_packed_with_threads(&a, &b, &mut c, n, n, n, t);
            });
            packed_outs.push(c);
        }
        let identical = blocked_outs.iter().all(|c| c == &blocked_outs[0])
            && packed_outs.iter().all(|c| c == &packed_outs[0]);
        let auto_tier = if kernels::uses_packed_path(n, n, n) { "packed" } else { "blocked" };
        eprintln!(
            "[gemm] {n}x{n}x{n}: naive {naive_ms:.1} ms | blocked t1 {:.1} / t2 {:.1} / t4 {:.1} ms \
             | packed t1 {:.1} / t2 {:.1} / t4 {:.1} ms | auto tier {auto_tier} \
             ({:.2}x vs naive), threads bit-identical: {identical}",
            blocked_ms[0],
            blocked_ms[1],
            blocked_ms[2],
            packed_ms[0],
            packed_ms[1],
            packed_ms[2],
            naive_ms / blocked_ms[0].min(packed_ms[0]),
        );
        rows.push(GemmRow { n, naive_ms, blocked_ms, packed_ms, auto_tier, identical });
    }
    rows
}

/// Scaling-gate verdict for the largest drilled GEMM: t4 must beat t1 by
/// `required` on hosts with ≥ 4 cores. On smaller hosts the gate cannot
/// physically pass and reports not-applicable instead of lying.
fn scaling_verdict(row: &GemmRow, required: f64) -> (bool, String) {
    let cores = par::machine_threads();
    let ratio = row.scaling_t4();
    if cores < 2 {
        (true, format!("not-applicable: single-core host ({ratio:.2}x measured)"))
    } else if cores < 4 {
        (true, format!("not-applicable: only {cores} cores for a t4 gate ({ratio:.2}x measured)"))
    } else if ratio >= required {
        (true, format!("pass: {ratio:.2}x >= {required:.1}x at {}³", row.n))
    } else {
        (
            false,
            format!(
                "FAIL: {}³ GEMM t4 is only {ratio:.2}x over t1 (required {required:.1}x, \
                 {cores} cores) — thread scaling regressed",
                row.n
            ),
        )
    }
}

struct TrainedEpoch {
    seconds: f64,
    params: Vec<Vec<f32>>,
}

/// One tuning epoch of plain CrossEM at a fixed thread budget.
fn crossem_epoch(prepared: &PreparedBundle, threads: usize) -> TrainedEpoch {
    prepared.reset_clip();
    let bundle = &prepared.bundle;
    let mut rng = bundle.stage_rng(DRILL_STAGE);
    let config = prepared.train_config(PromptKind::Hard, 1);
    let matcher = CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, config, &mut rng);
    let start = Instant::now();
    matcher
        .train_with_options(&mut rng, TrainOptions { threads: Some(threads), ..Default::default() })
        .expect("no checkpoints, no resume path to fail");
    let seconds = start.elapsed().as_secs_f64();
    let params = matcher.trainable_params().iter().map(|p| p.to_vec()).collect();
    TrainedEpoch { seconds, params }
}

/// One tuning epoch of CrossEM⁺ (PCP + negative sampling + orthogonal
/// constraint) at a fixed thread budget.
fn crossem_plus_epoch(prepared: &PreparedBundle, threads: usize) -> TrainedEpoch {
    prepared.reset_clip();
    let bundle = &prepared.bundle;
    let mut rng = bundle.stage_rng(DRILL_STAGE + 1);
    let config = prepared.train_config(PromptKind::Soft, 1);
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        &bundle.dataset,
        config,
        default_plus(),
        &mut rng,
    );
    let start = Instant::now();
    trainer
        .train_with_options(&mut rng, TrainOptions { threads: Some(threads), ..Default::default() })
        .expect("no checkpoints, no resume path to fail");
    let seconds = start.elapsed().as_secs_f64();
    let params = trainer.base().trainable_params().iter().map(|p| p.to_vec()).collect();
    TrainedEpoch { seconds, params }
}

fn bitwise_equal(runs: &[TrainedEpoch]) -> bool {
    runs.iter().all(|r| r.params == runs[0].params)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate_scaling = std::env::args().any(|a| a == "--gate-scaling");
    let config = if smoke { HarnessConfig::quick() } else { HarnessConfig::from_args() };
    let quick = smoke || std::env::args().any(|a| a == "--quick");
    // --gate-scaling always drills the 512³ point the scaling gate reads,
    // even at smoke scale.
    let gemm_sizes: &[usize] = if gate_scaling {
        &[512]
    } else if smoke {
        &[64, 128]
    } else {
        &[128, 256, 512]
    };

    // Registry counters (cache hit/miss/evict, GEMM dispatch decisions)
    // ride along in BENCH_perf.json. Counters are observational only, so
    // the bit-identity verdicts below are unaffected.
    let _obs = cem_obs::force_enable();
    let obs_baseline = cem_obs::global().snapshot();

    // ---------------------------------------------------------------
    // Section 1: GEMM kernels.
    // ---------------------------------------------------------------
    eprintln!(
        "[perf 1] GEMM tiers vs naive seed loop (machine cores: {}, simd: {}) …",
        par::machine_threads(),
        cem_tensor::microkernel::simd_active(),
    );
    let gemm_rows = drill_gemm(gemm_sizes);
    let gemm_identical = gemm_rows.iter().all(|r| r.identical);
    // CI scaling-gate mode: section 1 only; soft gate at 1.5x (the full 2x
    // gate runs in the normal local drill below).
    if gate_scaling {
        let (ok, msg) = scaling_verdict(gemm_rows.last().expect("gemm sizes non-empty"), 1.5);
        eprintln!("[perf gate] {msg}");
        std::process::exit(if ok && gemm_identical { 0 } else { 1 });
    }
    // Kernel-iteration mode: stop after section 1, no JSON.
    if std::env::args().any(|a| a == "--gemm-only") {
        std::process::exit(if gemm_identical { 0 } else { 1 });
    }
    let gemm_speedup = gemm_rows
        .last()
        .map(|r| r.naive_ms / r.auto_t1_ms())
        .unwrap_or(0.0);
    let (scaling_ok, scaling_msg) = gemm_rows
        .last()
        .map(|r| scaling_verdict(r, 2.0))
        .unwrap_or((true, "not-applicable: no gemm rows".to_string()));
    eprintln!("[perf 1] scaling gate: {scaling_msg}");

    // ---------------------------------------------------------------
    // Section 2: proximity construction + feature cache.
    // ---------------------------------------------------------------
    eprintln!("[perf 2] proximity matrix at 1/2/4 threads + feature cache …");
    let prepared = prepare(DatasetKind::Cub, &config);
    let bundle = &prepared.bundle;
    prepared.reset_clip();

    let mut prox_ms = [0.0f64; 3];
    let mut prox_outputs = Vec::new();
    for (slot, &t) in THREADS.iter().enumerate() {
        let _guard = par::ThreadsGuard::new(t);
        let mut out = None;
        prox_ms[slot] = bench_ms(3, || {
            out = Some(pairwise_proximity(&bundle.clip, &bundle.tokenizer, &bundle.dataset, 1));
        });
        prox_outputs.push(out.unwrap());
    }
    let prox_identical = prox_outputs.iter().all(|p| p == &prox_outputs[0]);
    eprintln!(
        "[perf 2] pairwise_proximity t1 {:.1} / t2 {:.1} / t4 {:.1} ms, bit-identical: {prox_identical}",
        prox_ms[0], prox_ms[1], prox_ms[2],
    );

    let cache = FeatureCache::new();
    let cache_miss_ms =
        time_ms(|| drop(cache.proximity(&bundle.clip, &bundle.tokenizer, &bundle.dataset, 1)));
    let cache_hit_ms =
        time_ms(|| drop(cache.proximity(&bundle.clip, &bundle.tokenizer, &bundle.dataset, 1)));
    let cache_consistent = cache.hits() == 1 && cache.misses() == 2;
    eprintln!(
        "[perf 2] cache cold miss {cache_miss_ms:.1} ms, warm hit {cache_hit_ms:.3} ms \
         ({:.0}x), counters ok: {cache_consistent}",
        cache_miss_ms / cache_hit_ms.max(1e-6),
    );

    // ---------------------------------------------------------------
    // Sections 3 & 4: one epoch of each trainer per thread budget.
    // ---------------------------------------------------------------
    eprintln!("[perf 3] one CrossEM epoch at 1/2/4 threads …");
    let em_runs: Vec<TrainedEpoch> =
        THREADS.iter().map(|&t| crossem_epoch(&prepared, t)).collect();
    let em_identical = bitwise_equal(&em_runs);
    eprintln!(
        "[perf 3] epoch t1 {:.2} / t2 {:.2} / t4 {:.2} s, params bit-identical: {em_identical}",
        em_runs[0].seconds, em_runs[1].seconds, em_runs[2].seconds,
    );

    eprintln!("[perf 4] one CrossEM⁺ epoch at 1/2/4 threads …");
    let plus_runs: Vec<TrainedEpoch> =
        THREADS.iter().map(|&t| crossem_plus_epoch(&prepared, t)).collect();
    let plus_identical = bitwise_equal(&plus_runs);
    eprintln!(
        "[perf 4] epoch t1 {:.2} / t2 {:.2} / t4 {:.2} s, params bit-identical: {plus_identical}",
        plus_runs[0].seconds, plus_runs[1].seconds, plus_runs[2].seconds,
    );

    // ---------------------------------------------------------------
    // Summary + BENCH_perf.json
    // ---------------------------------------------------------------
    let obs = cem_obs::global().snapshot().delta_since(&obs_baseline);
    let counter = |name: &str| obs.counter(name).unwrap_or(0);
    eprintln!(
        "[perf obs] gemm dispatch blocked={} serial={}, cache features {}h/{}m \
         proximity {}h/{}m evict={}",
        counter("gemm.dispatch.blocked_parallel"),
        counter("gemm.dispatch.serial_fallback"),
        counter("cache.features.hit"),
        counter("cache.features.miss"),
        counter("cache.proximity.hit"),
        counter("cache.proximity.miss"),
        counter("cache.evict"),
    );

    // The 2x t4-vs-t1 scaling gate participates in the overall verdict only
    // when the host can honestly run it (>= 4 cores); on smaller hosts the
    // verdict string records why it was skipped.
    let scaling_applicable = !scaling_msg.starts_with("not-applicable");
    let all_pass = gemm_identical
        && prox_identical
        && cache_consistent
        && em_identical
        && plus_identical
        && (!scaling_applicable || scaling_ok);
    println!(
        "\nperf drill: GEMM {gemm_speedup:.2}x vs naive at {}³ ({} tier), cache hit {:.0}x \
         cheaper than recompute, determinism {}",
        gemm_rows.last().map(|r| r.n).unwrap_or(0),
        gemm_rows.last().map(|r| r.auto_tier).unwrap_or("?"),
        cache_miss_ms / cache_hit_ms.max(1e-6),
        if all_pass { "ALL PASS" } else { "FAILURES" },
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"perf_drill\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "quick" } else { "standard" });
    let _ = writeln!(json, "  \"machine_threads\": {},", par::machine_threads());
    let _ = writeln!(json, "  \"thread_budget\": {},", par::max_threads());
    let _ = writeln!(json, "  \"threads_drilled\": [1, 2, 4],");
    let _ = writeln!(
        json,
        "  \"simd_active\": {},",
        cem_tensor::microkernel::simd_active()
    );
    let _ = writeln!(json, "  \"gemm\": [");
    for (i, row) in gemm_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"naive_ms\": {:.3}, \"blocked_t1_ms\": {:.3}, \
             \"blocked_t2_ms\": {:.3}, \"blocked_t4_ms\": {:.3}, \
             \"packed_t1_ms\": {:.3}, \"packed_t2_ms\": {:.3}, \"packed_t4_ms\": {:.3}, \
             \"auto_tier\": \"{}\", \"scaling_t4\": {:.3}, \
             \"speedup_vs_naive\": {:.3}, \"threads_bit_identical\": {}}}{}",
            row.n,
            row.naive_ms,
            row.blocked_ms[0],
            row.blocked_ms[1],
            row.blocked_ms[2],
            row.packed_ms[0],
            row.packed_ms[1],
            row.packed_ms[2],
            row.auto_tier,
            row.scaling_t4(),
            row.naive_ms / row.auto_t1_ms(),
            row.identical,
            if i + 1 < gemm_rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"scaling\": {{");
    let _ = writeln!(json, "    \"required_t4_over_t1\": 2.0,");
    let _ = writeln!(json, "    \"applicable\": {scaling_applicable},");
    let _ = writeln!(json, "    \"pass\": {scaling_ok},");
    let _ = writeln!(json, "    \"verdict\": \"{}\"", scaling_msg.replace('"', "'"));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"proximity_t1_ms\": {:.3},", prox_ms[0]);
    let _ = writeln!(json, "  \"proximity_t2_ms\": {:.3},", prox_ms[1]);
    let _ = writeln!(json, "  \"proximity_t4_ms\": {:.3},", prox_ms[2]);
    let _ = writeln!(
        json,
        "  \"proximity_scaling_t4\": {:.3},",
        prox_ms[0] / prox_ms[2].max(1e-9)
    );
    let _ = writeln!(json, "  \"proximity_bit_identical\": {prox_identical},");
    let _ = writeln!(json, "  \"cache_miss_ms\": {cache_miss_ms:.3},");
    let _ = writeln!(json, "  \"cache_hit_ms\": {cache_hit_ms:.4},");
    let _ = writeln!(
        json,
        "  \"cache_speedup\": {:.1},",
        cache_miss_ms / cache_hit_ms.max(1e-6)
    );
    let _ = writeln!(json, "  \"crossem_epoch_t1_s\": {:.4},", em_runs[0].seconds);
    let _ = writeln!(json, "  \"crossem_epoch_t2_s\": {:.4},", em_runs[1].seconds);
    let _ = writeln!(json, "  \"crossem_epoch_t4_s\": {:.4},", em_runs[2].seconds);
    let _ = writeln!(json, "  \"crossem_bit_identical\": {em_identical},");
    let _ = writeln!(json, "  \"crossem_plus_epoch_t1_s\": {:.4},", plus_runs[0].seconds);
    let _ = writeln!(json, "  \"crossem_plus_epoch_t2_s\": {:.4},", plus_runs[1].seconds);
    let _ = writeln!(json, "  \"crossem_plus_epoch_t4_s\": {:.4},", plus_runs[2].seconds);
    let _ = writeln!(json, "  \"crossem_plus_bit_identical\": {plus_identical},");
    let _ = writeln!(json, "  \"obs_counters\": {{");
    let _ = writeln!(
        json,
        "    \"gemm_dispatch_blocked_parallel\": {},",
        counter("gemm.dispatch.blocked_parallel")
    );
    let _ = writeln!(
        json,
        "    \"gemm_dispatch_serial_fallback\": {},",
        counter("gemm.dispatch.serial_fallback")
    );
    let _ = writeln!(json, "    \"gemm_tier_packed\": {},", counter("gemm.tier.packed"));
    let _ = writeln!(json, "    \"gemm_tier_blocked\": {},", counter("gemm.tier.blocked"));
    let _ = writeln!(json, "    \"cache_features_hit\": {},", counter("cache.features.hit"));
    let _ = writeln!(json, "    \"cache_features_miss\": {},", counter("cache.features.miss"));
    let _ = writeln!(json, "    \"cache_proximity_hit\": {},", counter("cache.proximity.hit"));
    let _ = writeln!(json, "    \"cache_proximity_miss\": {},", counter("cache.proximity.miss"));
    let _ = writeln!(json, "    \"cache_evict\": {}", counter("cache.evict"));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");
    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");
    println!("wrote BENCH_perf.json");

    if !all_pass {
        std::process::exit(1);
    }
}
