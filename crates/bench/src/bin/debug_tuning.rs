//! Diagnostic: does prompt tuning improve over zero-shot?
use cem_data::DatasetKind;
use crossem::PromptKind;

fn main() {
    let config = cem_bench::HarnessConfig::from_args();
    let kinds = [DatasetKind::Cub, DatasetKind::Sun, DatasetKind::Fb2k];
    for kind in kinds {
        let prepared = cem_bench::prepare(kind, &config);
        let zs = cem_baselines::clip_zeroshot::run(
            &prepared.bundle.clip,
            &prepared.bundle.tokenizer,
            &prepared.bundle.dataset,
        );
        println!("{}: zero-shot  {}", kind.label(), zs.metrics.row());
        for prompt in [PromptKind::Baseline, PromptKind::Hard, PromptKind::Soft] {
            let t = std::time::Instant::now();
            let r = cem_bench::run_crossem(&prepared, prompt, config.em_epochs);
            println!(
                "{}: {:22} {}  (T/epoch {:.1}s, total {:.0}s, mem {:.0} MB)",
                kind.label(), r.name, r.metrics.row(), r.epoch_seconds, t.elapsed().as_secs_f64(), r.mem_mb()
            );
        }
        let t = std::time::Instant::now();
        let r = cem_bench::run_crossem_plus(&prepared, cem_bench::default_plus(), config.em_epochs, "CrossEM+");
        println!(
            "{}: {:22} {}  (T/epoch {:.1}s, total {:.0}s, mem {:.0} MB)",
            kind.label(), r.name, r.metrics.row(), r.epoch_seconds, t.elapsed().as_secs_f64(), r.mem_mb()
        );
    }
}
