//! Open-loop load drills for the overload-resilience subsystem
//! (`cem-serve`, DESIGN.md §12). Unlike `chaos_drill` (closed-loop fault
//! storms over a trained index), this harness drives 10⁵+ *synthetic*
//! requests through [`MatchService::run_open_loop`] on generated arrival
//! schedules — the index is synthesised from a seeded score stream, so the
//! drill isolates scheduling behaviour and runs in seconds. Five scenarios:
//!
//! 1. **Baseline** — Poisson arrivals at half the full-tier saturation
//!    rate: everything serves from the full tier, p99 virtual latency well
//!    inside the deadline, loss rate ≈ 0.
//! 2. **Saturation burst** — a 2×-saturation burst window, run twice on
//!    the *identical* schedule with brownout on and off. The brownout run
//!    must keep served p99 within the deadline SLO, lose (shed + expire)
//!    fewer requests than the control, and actually spend waves browned
//!    out.
//! 3. **Diurnal + hot keys** — a sinusoidally ramping rate with 80% of
//!    traffic on 4 hot entities: every arrival resolves, no internal
//!    errors.
//! 4. **Mid-run hot-swap** — generations published through a
//!    [`GenerationStore`]; a corrupt container is rejected at the CRC
//!    mid-run, a good one promotes at a wave boundary with zero dropped
//!    and zero generation-mixed responses and no downtime waves.
//! 5. **Determinism** — the burst scenario replayed at 1 and 4 worker
//!    threads must produce bit-identical responses, traces, and stats.
//!
//! Throughput, latency percentiles (virtual units), loss rates,
//! brownout-tier wave occupancy, and swap outcomes are written to
//! `BENCH_serving.json` (`"harness": "load_drill"`). Honours `--smoke` /
//! `--quick`.

use std::fmt::Write as _;

use cem_bench::load::{bursty, diurnal, poisson, with_hot_keys, BurstSpec};
use cem_serve::{
    splitmix64, Arrival, Generation, GenerationStore, MatchService, NoFaults, Outcome, Response,
    ServeConfig, ServeIndex, ServeStats, Tier,
};
use cem_tensor::par::ThreadsGuard;
use crossem::matcher::rank_row;

const ENTITIES: usize = 48;
const IMAGES: usize = 192;

/// Synthesise a four-tier score index from a seeded stream: deterministic,
/// tie-free with overwhelming probability, and distinguishable per seed —
/// two generations built from different seeds rank differently, which is
/// what lets the swap drill detect generation mixing.
fn synthetic_index(seed: u64) -> ServeIndex {
    let matrix = |tier: u64| -> Vec<f32> {
        (0..ENTITIES * IMAGES)
            .map(|i| {
                let bits = splitmix64(seed ^ (0x7134 + tier), i as u64);
                ((bits >> 40) as f32) / (1u64 << 24) as f32
            })
            .collect()
    };
    ServeIndex::new(ENTITIES, IMAGES, [matrix(0), matrix(1), matrix(2), matrix(3)])
}

fn drill_config() -> ServeConfig {
    ServeConfig::default()
}

/// Scenario sizes. Standard drives ~190k requests total; smoke ~19k.
struct Scale {
    baseline_n: usize,
    burst_n: usize,
    burst: BurstSpec,
    diurnal_n: usize,
    diurnal_period: u64,
    swap_n: usize,
}

impl Scale {
    fn standard() -> Self {
        Scale {
            baseline_n: 40_000,
            burst_n: 30_000,
            burst: BurstSpec { start: 200_000, end: 1_000_000, multiplier: 4.0 },
            diurnal_n: 20_000,
            diurnal_period: 100_000,
            swap_n: 10_000,
        }
    }

    fn smoke() -> Self {
        Scale {
            baseline_n: 4_000,
            burst_n: 3_000,
            burst: BurstSpec { start: 40_000, end: 160_000, multiplier: 4.0 },
            diurnal_n: 2_000,
            diurnal_period: 40_000,
            swap_n: 1_000,
        }
    }
}

/// Everything one scenario run reports.
struct Report {
    requests: usize,
    stats: ServeStats,
    /// p50/p99/p999 of served end-to-end virtual latency.
    p50: u64,
    p99: u64,
    p999: u64,
    /// Wall-clock requests per second over the whole run.
    throughput_rps: f64,
    /// shed + expired over all arrivals.
    loss_rate: f64,
}

fn run_scenario(
    service: &mut MatchService<'_>,
    arrivals: &[Arrival],
) -> (Vec<Response>, Report) {
    let started = std::time::Instant::now();
    let responses = service.run_open_loop(arrivals, &NoFaults);
    let elapsed = started.elapsed().as_secs_f64();
    let stats = service.stats().clone();
    let mut latencies: Vec<u64> = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Served { .. }))
        .map(|r| r.latency_units())
        .collect();
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[((latencies.len() - 1) as f64 * q).round() as usize]
    };
    let lost = stats.shed + stats.expired;
    let report = Report {
        requests: arrivals.len(),
        p50: pct(0.50),
        p99: pct(0.99),
        p999: pct(0.999),
        throughput_rps: if elapsed > 0.0 { arrivals.len() as f64 / elapsed } else { 0.0 },
        loss_rate: lost as f64 / arrivals.len().max(1) as f64,
        stats,
    };
    (responses, report)
}

fn scenario_json(json: &mut String, name: &str, r: &Report, pass: bool, last: bool) {
    let _ = writeln!(json, "  \"{name}\": {{");
    let _ = writeln!(json, "    \"requests\": {},", r.requests);
    let _ = writeln!(json, "    \"served\": {},", r.stats.served_total());
    let _ = writeln!(json, "    \"shed\": {},", r.stats.shed);
    let _ = writeln!(json, "    \"expired\": {},", r.stats.expired);
    let _ = writeln!(json, "    \"deadline_exceeded\": {},", r.stats.deadline_exceeded);
    let _ = writeln!(json, "    \"internal_errors\": {},", r.stats.internal_errors);
    let _ = writeln!(json, "    \"loss_rate\": {:.4},", r.loss_rate);
    let _ = writeln!(json, "    \"latency_units_p50\": {},", r.p50);
    let _ = writeln!(json, "    \"latency_units_p99\": {},", r.p99);
    let _ = writeln!(json, "    \"latency_units_p999\": {},", r.p999);
    let _ = writeln!(json, "    \"throughput_rps\": {:.0},", r.throughput_rps);
    let _ = writeln!(json, "    \"waves\": {},", r.stats.waves);
    let _ = writeln!(json, "    \"brownout_waves\": {{");
    for (i, tier) in Tier::ALL.iter().enumerate() {
        let _ = writeln!(
            json,
            "      \"{}\": {}{}",
            tier.label(),
            r.stats.brownout_waves[tier.index()],
            if i + 1 < Tier::COUNT { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"pass\": {pass}");
    let _ = writeln!(json, "  }}{}", if last { "" } else { "," });
}

fn verdict(pass: bool) -> &'static str {
    if pass {
        "PASS"
    } else {
        "FAIL"
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let scale = if quick { Scale::smoke() } else { Scale::standard() };
    let config = drill_config();
    let seed = 1717u64;
    let index = synthetic_index(seed);

    // Full-tier saturation: requests one wave can execute per virtual unit.
    let full_per_wave =
        (config.wave_budget_units() / config.tier_cost[Tier::Full.index()]).min(config.wave as u64);
    let saturation = full_per_wave as f64 / config.wave_units as f64;
    eprintln!(
        "[load_drill] full-tier saturation {:.4} req/unit ({} per {}-unit wave)",
        saturation, full_per_wave, config.wave_units
    );
    let _obs = cem_obs::force_enable();

    // ---------------------------------------------------------------
    // Scenario 1: baseline Poisson at half saturation.
    // ---------------------------------------------------------------
    eprintln!("[baseline] Poisson at 0.5× saturation, {} requests …", scale.baseline_n);
    let schedule = poisson(scale.baseline_n, saturation * 0.5, ENTITIES, seed);
    let mut service = MatchService::new(config, &index);
    let (responses, baseline) = run_scenario(&mut service, &schedule);
    // SLO: everything serves from the full tier within the deadline; loss
    // under 1%; p99 within three waves (queue never builds).
    let baseline_pass = responses.len() == scale.baseline_n
        && baseline.loss_rate < 0.01
        && baseline.stats.served[Tier::Full.index()] == baseline.stats.served_total()
        && baseline.p99 <= 3 * config.wave_units + config.tier_cost[Tier::Full.index()]
        && baseline.stats.internal_errors == 0;
    println!(
        "[baseline] p50/p99/p999 = {}/{}/{} units, loss {:.4}, {:.0} req/s → {}",
        baseline.p50,
        baseline.p99,
        baseline.p999,
        baseline.loss_rate,
        baseline.throughput_rps,
        verdict(baseline_pass)
    );

    // ---------------------------------------------------------------
    // Scenario 2: 2×-saturation burst, brownout on vs off on the SAME
    // schedule.
    // ---------------------------------------------------------------
    eprintln!(
        "[burst] 2×-saturation window [{}, {}), {} requests, brownout on vs off …",
        scale.burst.start, scale.burst.end, scale.burst_n
    );
    let schedule = bursty(scale.burst_n, saturation * 0.5, scale.burst, ENTITIES, seed ^ 0xB);
    let mut browned = MatchService::new(config, &index);
    let (_, on) = run_scenario(&mut browned, &schedule);
    let off_config = ServeConfig {
        brownout: cem_serve::BrownoutConfig { enabled: false, ..config.brownout },
        ..config
    };
    let mut control = MatchService::new(off_config, &index);
    let (_, off) = run_scenario(&mut control, &schedule);
    let browned_waves: u64 = on
        .stats
        .brownout_waves
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != Tier::Full.index())
        .map(|(_, &w)| w)
        .sum();
    let burst_pass = on.p99 <= config.deadline_units
        && on.loss_rate < off.loss_rate
        && browned_waves > 0
        && on.stats.internal_errors == 0
        && off.stats.internal_errors == 0;
    println!(
        "[burst] brownout ON:  p99 {} units, loss {:.4}, browned-out waves {}",
        on.p99, on.loss_rate, browned_waves
    );
    println!(
        "[burst] brownout OFF: p99 {} units, loss {:.4} → {}",
        off.p99,
        off.loss_rate,
        verdict(burst_pass)
    );

    // ---------------------------------------------------------------
    // Scenario 3: diurnal ramp with hot-key skew.
    // ---------------------------------------------------------------
    eprintln!(
        "[diurnal] sinusoidal rate (period {}), 80% on 4 hot keys, {} requests …",
        scale.diurnal_period, scale.diurnal_n
    );
    let mut schedule = diurnal(
        scale.diurnal_n,
        saturation * 0.6,
        0.8,
        scale.diurnal_period,
        ENTITIES,
        seed ^ 0xD,
    );
    with_hot_keys(&mut schedule, ENTITIES, 4, 0.8, seed ^ 0xD);
    let mut service = MatchService::new(config, &index);
    let (responses, diurnal_report) = run_scenario(&mut service, &schedule);
    let diurnal_pass = responses.len() == scale.diurnal_n
        && diurnal_report.stats.internal_errors == 0
        && diurnal_report.stats.served_total() > 0;
    println!(
        "[diurnal] p99 {} units, loss {:.4} → {}",
        diurnal_report.p99,
        diurnal_report.loss_rate,
        verdict(diurnal_pass)
    );

    // ---------------------------------------------------------------
    // Scenario 4: mid-run hot-swap through the durable generation store.
    // ---------------------------------------------------------------
    eprintln!("[hotswap] publish → corrupt reject → promote mid-run, {} requests …", scale.swap_n);
    let dir = std::env::temp_dir().join(format!("cem_load_drill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create generation dir");
    let store = GenerationStore::new(&dir).expect("open generation store");
    store.publish(&Generation::new(1, synthetic_index(seed))).expect("publish generation 1");
    store.publish(&Generation::new(2, synthetic_index(seed ^ 0x5A))).expect("publish generation 2");

    // Bit-rot the latest (generation 2) file: the strict load path must
    // reject it at the container CRC.
    let latest = store.latest_path();
    let mut bytes = std::fs::read(&latest).expect("read latest generation");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&latest, &bytes).expect("corrupt latest generation");
    let corrupt_load = Generation::load_path(&latest);
    let corrupt_rejected = corrupt_load.is_err();
    // The store's fallback still serves the previous intact generation.
    let serving = store.load().expect("fallback generation");
    let fallback_id = serving.id;
    // Re-publish an intact generation 2 for the mid-run promotion.
    store.publish(&Generation::new(2, synthetic_index(seed ^ 0x5A))).expect("republish");
    let incoming = Generation::load_path(store.latest_path());

    let schedule = poisson(scale.swap_n, saturation * 0.6, ENTITIES, seed ^ 0xE);
    let swap_wave = schedule[scale.swap_n / 2].at / config.wave_units;
    let mut service = MatchService::with_generation(config, serving);
    service.schedule_swap(swap_wave / 2, corrupt_load);
    service.schedule_swap(swap_wave, incoming);
    let (responses, swap_report) = run_scenario(&mut service, &schedule);

    // Zero mixed: every full-tier response ranks exactly as its own
    // generation's index says it should.
    let gen_index = [synthetic_index(seed), synthetic_index(seed ^ 0x5A)];
    let mixed = responses
        .iter()
        .filter(|r| match &r.outcome {
            Outcome::Served { tier: Tier::Full, ranking } => {
                let expect = match r.generation {
                    1 => rank_row(gen_index[0].row(Tier::Full, r.entity), config.top_k),
                    2 => rank_row(gen_index[1].row(Tier::Full, r.entity), config.top_k),
                    _ => return true,
                };
                *ranking != expect
            }
            _ => false,
        })
        .count();
    let dropped = scale.swap_n - responses.len();
    let misses = swap_report.stats.expired + swap_report.stats.deadline_exceeded;
    // At 0.6× saturation a boundary-promoted swap must cost nothing: no
    // wave goes idle, nothing expires, nothing misses its deadline.
    let swap_downtime_waves = misses.div_ceil(full_per_wave.max(1));
    let before_swap = responses.iter().filter(|r| r.generation == fallback_id).count();
    let after_swap = responses.iter().filter(|r| r.generation == 2).count();
    let swap_pass = corrupt_rejected
        && fallback_id == 1
        && swap_report.stats.hotswap_promotes == 1
        && swap_report.stats.hotswap_rejects == 1
        && mixed == 0
        && dropped == 0
        && swap_downtime_waves == 0
        && before_swap > 0
        && after_swap > 0;
    println!(
        "[hotswap] promotes {} rejects {} mixed {} dropped {} downtime-waves {} → {}",
        swap_report.stats.hotswap_promotes,
        swap_report.stats.hotswap_rejects,
        mixed,
        dropped,
        swap_downtime_waves,
        verdict(swap_pass)
    );
    std::fs::remove_dir_all(&dir).ok();

    // ---------------------------------------------------------------
    // Scenario 5: the burst schedule replayed at 1 vs 4 threads.
    // ---------------------------------------------------------------
    eprintln!("[determinism] burst schedule at 1 vs 4 threads …");
    let schedule = bursty(scale.burst_n, saturation * 0.5, scale.burst, ENTITIES, seed ^ 0xB);
    let run_with = |threads: usize| {
        let _guard = ThreadsGuard::new(threads);
        let mut service = MatchService::new(config, &index);
        let responses = service.run_open_loop(&schedule, &NoFaults);
        (responses, service.trace().to_vec(), service.stats().clone())
    };
    let (r1, t1, s1) = run_with(1);
    let (r4, t4, s4) = run_with(4);
    let determinism_pass = r1 == r4 && t1 == t4 && s1 == s4;
    println!("[determinism] 1 vs 4 threads → {}", verdict(determinism_pass));

    // ---------------------------------------------------------------
    // Summary + BENCH_serving.json
    // ---------------------------------------------------------------
    let all_pass =
        baseline_pass && burst_pass && diurnal_pass && swap_pass && determinism_pass;
    let total_requests = scale.baseline_n
        + 2 * scale.burst_n
        + scale.diurnal_n
        + scale.swap_n
        + 2 * scale.burst_n;
    println!(
        "\nload drill: {} requests total → {}",
        total_requests,
        if all_pass { "ALL PASS" } else { "FAILURES" }
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"load_drill\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "smoke" } else { "standard" });
    let _ = writeln!(json, "  \"entities\": {ENTITIES},");
    let _ = writeln!(json, "  \"images\": {IMAGES},");
    let _ = writeln!(json, "  \"requests_total\": {total_requests},");
    let _ = writeln!(json, "  \"saturation_req_per_unit\": {saturation:.4},");
    scenario_json(&mut json, "baseline", &baseline, baseline_pass, false);
    scenario_json(&mut json, "burst_brownout_on", &on, burst_pass, false);
    scenario_json(&mut json, "burst_brownout_off", &off, burst_pass, false);
    scenario_json(&mut json, "diurnal_hotkey", &diurnal_report, diurnal_pass, false);
    let _ = writeln!(json, "  \"hotswap\": {{");
    let _ = writeln!(json, "    \"requests\": {},", scale.swap_n);
    let _ = writeln!(json, "    \"promotes\": {},", swap_report.stats.hotswap_promotes);
    let _ = writeln!(json, "    \"rejects\": {},", swap_report.stats.hotswap_rejects);
    let _ = writeln!(json, "    \"mixed\": {mixed},");
    let _ = writeln!(json, "    \"dropped\": {dropped},");
    let _ = writeln!(json, "    \"swap_downtime_waves\": {swap_downtime_waves},");
    let _ = writeln!(json, "    \"pass\": {swap_pass}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"baseline_pass\": {baseline_pass},");
    let _ = writeln!(json, "  \"burst_brownout_pass\": {burst_pass},");
    let _ = writeln!(json, "  \"diurnal_hotkey_pass\": {diurnal_pass},");
    let _ = writeln!(json, "  \"hotswap_pass\": {swap_pass},");
    let _ = writeln!(json, "  \"determinism_pass\": {determinism_pass},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");

    if !all_pass {
        std::process::exit(1);
    }
}
