//! Validate a telemetry JSONL stream and print the run's per-phase
//! time/throughput breakdown.
//!
//! ```text
//! obs_report <run.jsonl>                 validate + report an existing stream
//! obs_report --drill <out.jsonl>         run a short instrumented CrossEM +
//!                                        CrossEM⁺ training writing <out.jsonl>,
//!                                        then report it
//! obs_report --min-coverage 0.9 <file>   additionally fail unless the leaf
//!                                        spans explain ≥ 90% of wall time
//! ```
//!
//! Validation (any failure exits non-zero): every line parses as a flat
//! JSON object with a `type`, the first line is the `run_manifest`, at
//! least one `epoch_end` is present. A final unparseable line in a file
//! not ending in a newline is reported as a crash truncation (warning, not
//! an error). The breakdown sums only the *disjoint leaf* span families
//! (`phase.*`, `prep.*`, `setup.*`, `pretrain.*`, `checkpoint.*`), so the
//! coverage figure never double-counts nested drill-down spans.

use std::path::Path;
use std::process::ExitCode;

use cem_bench::{default_plus, prepare, HarnessConfig};
use cem_obs::{Object, ObsSession, RunManifest, Value};
use crossem::checkpoint::config_fingerprint;
use crossem::plus::CrossEmPlus;
use crossem::{CrossEm, PromptKind, TrainOptions};

/// Span-name prefixes treated as disjoint leaves of the wall-time
/// breakdown. Nested drill-down spans (anything else, e.g. `kmeans.run`)
/// are reported but excluded from the coverage sum. The `serve.*` family
/// covers the serving phase (`serve.match.<tier>` per-tier latency) and is
/// disjoint from the training families by construction.
const LEAF_FAMILIES: [&str; 6] =
    ["phase.", "prep.", "setup.", "pretrain.", "checkpoint.", "serve."];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut drill = false;
    let mut min_coverage: Option<f64> = None;
    let mut path: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--drill" => drill = true,
            "--min-coverage" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => min_coverage = Some(v),
                None => return usage("--min-coverage needs a fraction in [0,1]"),
            },
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return usage(&format!("unrecognised argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("missing JSONL path");
    };

    if drill {
        if let Err(e) = run_drill(Path::new(&path)) {
            eprintln!("obs_report: drill failed: {e}");
            return ExitCode::from(2);
        }
    }

    match report(Path::new(&path), min_coverage) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("obs_report: {message}");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("obs_report: {problem}");
    eprintln!("usage: obs_report [--drill] [--min-coverage FRAC] <run.jsonl>");
    ExitCode::from(2)
}

/// Run a short instrumented CrossEM + CrossEM⁺ training, writing its
/// telemetry to `path`. The session begins *after* dataset generation and
/// CLIP pre-training so the stream describes prompt tuning, the part the
/// span taxonomy covers end-to-end.
fn run_drill(path: &Path) -> std::io::Result<()> {
    let config = HarnessConfig::quick();
    let prepared = prepare(cem_data::DatasetKind::Cub, &config);
    let bundle = &prepared.bundle;
    let dataset = &bundle.dataset;

    let train_config = prepared.train_config(PromptKind::Hard, config.em_epochs);
    let manifest = RunManifest::new("obs_drill")
        .seed(config.seed)
        .config_fingerprint(config_fingerprint(&train_config))
        .threads(cem_tensor::par::max_threads())
        .dataset(dataset.name.clone(), dataset.entity_count(), dataset.image_count());
    let session = ObsSession::begin(path, &manifest)?;

    // CrossEM with the hard structure-aware prompt.
    prepared.reset_clip();
    let mut rng = bundle.stage_rng(11 + PromptKind::Hard as u64);
    let matcher =
        CrossEm::new(&bundle.clip, &bundle.tokenizer, dataset, train_config, &mut rng);
    let report = matcher
        .train_with_options(&mut rng, TrainOptions { obs: Some(&session), ..Default::default() })
        .expect("no checkpoints: resume cannot fail");
    let metrics = matcher.evaluate();

    // CrossEM⁺ with every optimisation on, in the same stream.
    prepared.reset_clip();
    let mut rng = bundle.stage_rng(31);
    let plus_config = prepared.train_config(PromptKind::Soft, config.em_epochs);
    let trainer = CrossEmPlus::new(
        &bundle.clip,
        &bundle.tokenizer,
        dataset,
        plus_config,
        default_plus(),
        &mut rng,
    );
    let plus_report = trainer
        .train_with_options(&mut rng, TrainOptions { obs: Some(&session), ..Default::default() })
        .expect("no checkpoints: resume cannot fail");
    let plus_metrics = trainer.evaluate();

    session.finish(&[
        ("crossem_final_loss", Value::Num(report.final_loss().unwrap_or(f32::NAN) as f64)),
        ("crossem_mrr", Value::Num(metrics.mrr as f64)),
        (
            "plus_final_loss",
            Value::Num(plus_report.train.final_loss().unwrap_or(f32::NAN) as f64),
        ),
        ("plus_mrr", Value::Num(plus_metrics.mrr as f64)),
    ]);
    Ok(())
}

struct SpanRow {
    name: String,
    calls: f64,
    total_s: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Parse, validate, and print the breakdown. Returns `Err(message)` on any
/// validation failure.
fn report(path: &Path, min_coverage: Option<f64>) -> Result<(), String> {
    if !path.exists() {
        return Err(format!(
            "stream file {} does not exist — pass the path of a telemetry JSONL stream, \
             or use --drill to generate one",
            path.display()
        ));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let ends_with_newline = text.ends_with('\n');
    let raw_lines: Vec<&str> = text.lines().collect();
    if raw_lines.is_empty() {
        return Err(format!(
            "stream file {} is empty — the run emitted no events (did the ObsSession begin, \
             and was telemetry enabled?)",
            path.display()
        ));
    }

    let mut events: Vec<Object> = Vec::with_capacity(raw_lines.len());
    let mut truncated_tail = false;
    for (i, line) in raw_lines.iter().enumerate() {
        match Object::parse(line) {
            Ok(event) => {
                if event.str("type").is_none() {
                    return Err(format!("line {}: event without a type", i + 1));
                }
                events.push(event);
            }
            Err(e) if i + 1 == raw_lines.len() && !ends_with_newline => {
                // A crash mid-write leaves exactly one torn final line.
                truncated_tail = true;
                eprintln!("warning: final line truncated mid-write (crashed run?): {e}");
            }
            Err(e) => return Err(format!("line {}: invalid event: {e}", i + 1)),
        }
    }

    let manifest = events.first().filter(|e| e.str("type") == Some("run_manifest"));
    let Some(manifest) = manifest else {
        return Err("first line is not a run_manifest".into());
    };

    let epoch_ends: Vec<&Object> =
        events.iter().filter(|e| e.str("type") == Some("epoch_end")).collect();
    if epoch_ends.is_empty() {
        return Err("no epoch_end event: the run never finished an epoch".into());
    }
    let run_end = events.iter().rev().find(|e| e.str("type") == Some("run_end"));

    println!("== run ==");
    println!(
        "run={} threads={} version={} dataset={} ({} entities, {} images)",
        manifest.str("run").unwrap_or("?"),
        manifest.num("threads").unwrap_or(0.0),
        manifest.str("version").unwrap_or("?"),
        manifest.str("dataset").unwrap_or("-"),
        manifest.num("entities").unwrap_or(0.0),
        manifest.num("images").unwrap_or(0.0),
    );
    println!("events={} epochs_completed={}", events.len(), epoch_ends.len());

    let total_batches: f64 = epoch_ends.iter().filter_map(|e| e.num("batches")).sum();
    let train_seconds: f64 = epoch_ends.iter().filter_map(|e| e.num("seconds")).sum();
    if train_seconds > 0.0 {
        println!(
            "throughput: {total_batches} batches over {train_seconds:.2}s training ({:.1} batches/s)",
            total_batches / train_seconds
        );
    }
    if let Some(loss) = epoch_ends.last().and_then(|e| e.num("mean_loss")) {
        println!("final mean_loss: {loss}");
    }

    let mut spans: Vec<SpanRow> = events
        .iter()
        .filter(|e| e.str("type") == Some("span_summary"))
        .map(|e| SpanRow {
            name: e.str("span").unwrap_or("?").to_string(),
            calls: e.num("calls").unwrap_or(0.0),
            total_s: e.num("total_s").unwrap_or(0.0),
            mean_ms: e.num("mean_ms").unwrap_or(0.0),
            p50_ms: e.num("p50_ms").unwrap_or(0.0),
            p99_ms: e.num("p99_ms").unwrap_or(0.0),
        })
        .collect();
    spans.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));

    let wall = run_end.and_then(|e| e.num("wall_seconds"));
    println!("\n== phases ==");
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "span", "calls", "total_s", "mean_ms", "p50_ms", "p99_ms", "% wall"
    );
    let mut leaf_total = 0.0f64;
    for row in &spans {
        let is_leaf = LEAF_FAMILIES.iter().any(|f| row.name.starts_with(f));
        if is_leaf {
            leaf_total += row.total_s;
        }
        let share = wall
            .filter(|w| *w > 0.0)
            .map_or("-".to_string(), |w| format!("{:.1}%", 100.0 * row.total_s / w));
        println!(
            "{:<22} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7}{}",
            row.name,
            row.calls,
            row.total_s,
            row.mean_ms,
            row.p50_ms,
            row.p99_ms,
            share,
            if is_leaf { "" } else { "  (nested)" },
        );
    }

    let counters: Vec<(&str, f64)> = events
        .iter()
        .filter(|e| e.str("type") == Some("counter_summary"))
        .filter_map(|e| {
            let value = e.num("value").or_else(|| {
                e.str("value").and_then(|s| s.parse::<f64>().ok())
            })?;
            Some((e.str("counter")?, value))
        })
        .collect();
    if !counters.is_empty() {
        println!("\n== counters ==");
        for (name, value) in &counters {
            println!("{name:<32} {value}");
        }
    }

    // Gauges are levels: the summary line carries the last value each gauge
    // held when the session closed (e.g. the final `serve.queue_depth`).
    let gauges: Vec<(&str, f64)> = events
        .iter()
        .filter(|e| e.str("type") == Some("gauge_summary"))
        .filter_map(|e| Some((e.str("gauge")?, e.num("value")?)))
        .collect();
    if !gauges.is_empty() {
        println!("\n== gauges ==");
        for (name, value) in &gauges {
            println!("{name:<32} {value}");
        }
    }

    match wall {
        Some(wall) if wall > 0.0 => {
            let coverage = leaf_total / wall;
            println!(
                "\ncoverage: leaf spans explain {:.1}% of {:.2}s wall time",
                coverage * 100.0,
                wall
            );
            if let Some(min) = min_coverage {
                if coverage < min {
                    return Err(format!(
                        "coverage {:.1}% below the required {:.1}%",
                        coverage * 100.0,
                        min * 100.0
                    ));
                }
            }
        }
        _ => {
            eprintln!("warning: no run_end/wall_seconds (crashed run?); coverage not computed");
            if min_coverage.is_some() {
                return Err("cannot enforce --min-coverage without a run_end event".into());
            }
        }
    }

    if truncated_tail {
        println!("\nnote: stream ends in a truncated line — treat tail metrics as partial");
    }
    Ok(())
}
