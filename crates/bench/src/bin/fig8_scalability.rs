//! Regenerates the paper artefact; see `cem_bench::tables::fig8`.
fn main() {
    let config = cem_bench::HarnessConfig::from_args();
    cem_bench::tables::fig8(&config);
}
