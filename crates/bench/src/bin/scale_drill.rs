//! Sub-quadratic serving drill (`cem-serve::shard`, DESIGN.md §13): builds
//! a cluster-pruned ANN index over **≥100k synthetic image embeddings** and
//! measures what the pruning buys against the dense scan:
//!
//! 1. **Cost** — per-request candidates scored and wall latency for the
//!    probed wave path vs the dense per-request scan. The probed fraction
//!    must be sub-linear (≪ 1.0): a request touches `nprobe` posting lists,
//!    not the gallery.
//! 2. **Recall** — top-10 overlap between the pruned ranking and the dense
//!    oracle over every query entity; gated at ≥ 0.95. The synthetic
//!    gallery is a mixture of unit-sphere blobs, mirroring the clustered
//!    geometry real image embeddings have (on uniform noise no sane probe
//!    budget can beat the gate — and pruning would be pointless anyway).
//! 3. **Determinism** — probe schedules and wave scores replayed at 1 vs 4
//!    threads, coalesced vs row-wise (`min_batch = ∞`), must be
//!    bit-identical, and `nprobe = nclusters` must equal the dense scan.
//! 4. **Service e2e** — at reduced scale, a [`MatchService::with_shards`]
//!    burst must serve bit-identically to the dense service at full probe,
//!    and shard sections must survive a [`GenerationStore`] hot-swap
//!    round-trip.
//!
//! Results land in `BENCH_serving.json` (`"harness": "scale_drill"`).
//! Honours `--smoke` / `--quick` (smaller dim/clusters, still ≥100k
//! images). Exits non-zero if any gate fails.

use std::fmt::Write as _;
use std::time::Instant;

use cem_serve::{
    splitmix64, Generation, GenerationStore, MatchRequest, MatchService, NoFaults, ServeConfig,
    ServeIndex, ShardedIndex,
};
use cem_tensor::par::ThreadsGuard;

struct Scale {
    images: usize,
    entities: usize,
    dim: usize,
    nclusters: usize,
    nprobe: usize,
    kmeans_iters: usize,
    /// Blob count for the synthetic mixture (≤ nclusters).
    nblobs: usize,
    /// Wave width for the batched-scoring measurement.
    wave: usize,
}

impl Scale {
    fn standard() -> Self {
        Scale {
            images: 120_000,
            entities: 512,
            dim: 64,
            nclusters: 256,
            nprobe: 16,
            kmeans_iters: 8,
            nblobs: 64,
            wave: 64,
        }
    }

    /// Smoke keeps the ≥100k-image floor — the whole point is scale — but
    /// trims dim, clusters, and queries so CI finishes in seconds.
    fn smoke() -> Self {
        Scale {
            images: 100_000,
            entities: 128,
            dim: 32,
            nclusters: 128,
            nprobe: 8,
            kmeans_iters: 4,
            nblobs: 32,
            wave: 64,
        }
    }
}

fn unit(seed: u64, i: u64) -> f32 {
    (splitmix64(seed, i) >> 40) as f32 / (1u64 << 24) as f32
}

/// A mixture of `nblobs` unit-sphere blobs: row `i` sits near blob
/// `i % nblobs` with small isotropic noise, then is re-normalised.
fn blobs(n: usize, dim: usize, nblobs: usize, noise: f32, seed: u64) -> Vec<f32> {
    let mut centers = Vec::with_capacity(nblobs * dim);
    for b in 0..nblobs {
        let row: Vec<f32> =
            (0..dim).map(|d| unit(seed ^ 0xC0, (b * dim + d) as u64) - 0.5).collect();
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        centers.extend(row.into_iter().map(|v| v / norm));
    }
    let mut out = Vec::with_capacity(n * dim);
    for i in 0..n {
        let center = &centers[(i % nblobs) * dim..(i % nblobs + 1) * dim];
        let row: Vec<f32> = center
            .iter()
            .enumerate()
            .map(|(d, &c)| c + noise * (unit(seed, (i * dim + d) as u64) - 0.5))
            .collect();
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        out.extend(row.into_iter().map(|v| v / norm));
    }
    out
}

fn verdict(pass: bool) -> &'static str {
    if pass {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Reduced-scale service e2e: full-probe `with_shards` must serve
/// bit-identically to the dense service over the same full-tier matrix.
fn service_e2e() -> bool {
    let (entities, images, dim, nclusters) = (24, 3_000, 16, 8);
    let queries = blobs(entities, dim, 8, 0.1, 0x51);
    let embeddings = blobs(images, dim, 8, 0.1, 0x1E);
    let shards =
        ShardedIndex::build(queries, entities, &embeddings, images, dim, nclusters, 6, 7);
    let full = shards.dense_scores(1);
    let filler = |offset: f32| {
        (0..entities * images).map(|i| i as f32 * 1e-4 + offset).collect::<Vec<f32>>()
    };
    let index =
        ServeIndex::new(entities, images, [full, filler(0.1), filler(0.2), filler(0.3)]);
    let config = ServeConfig { top_k: 10, nclusters, nprobe: nclusters, ..ServeConfig::default() };
    let requests = MatchRequest::stream(256, entities, 13);

    let mut dense = MatchService::new(config, &index);
    let want = dense.run(&requests, &NoFaults);
    let mut probed = MatchService::with_shards(config, &index, &shards);
    let got = probed.run(&requests, &NoFaults);
    got == want && probed.stats().ann_requests == requests.len() as u64
}

/// Shard sections published through the generation store must survive the
/// CEMT round-trip and serve the same rankings after promotion.
fn hotswap_e2e() -> bool {
    let (entities, images, dim, nclusters) = (12, 2_000, 16, 6);
    let queries = blobs(entities, dim, 6, 0.1, 0x91);
    let embeddings = blobs(images, dim, 6, 0.1, 0x9E);
    let shards =
        ShardedIndex::build(queries, entities, &embeddings, images, dim, nclusters, 6, 3);
    let full = shards.dense_scores(1);
    let filler = |offset: f32| {
        (0..entities * images).map(|i| i as f32 * 1e-4 + offset).collect::<Vec<f32>>()
    };
    let index =
        ServeIndex::new(entities, images, [full.clone(), filler(0.1), filler(0.2), filler(0.3)]);
    let generation = match Generation::with_shards(3, index, shards) {
        Ok(g) => g,
        Err(_) => return false,
    };

    let dir = std::env::temp_dir().join(format!("cem_scale_drill_{}", std::process::id()));
    if std::fs::create_dir_all(&dir).is_err() {
        return false;
    }
    let ok = (|| {
        let store = GenerationStore::new(&dir).ok()?;
        store.publish(&generation).ok()?;
        let loaded = store.load().ok()?;
        let config =
            ServeConfig { top_k: 10, nclusters, nprobe: nclusters, ..ServeConfig::default() };
        let requests = MatchRequest::stream(128, entities, 17);
        let mut direct = MatchService::with_generation(config, generation);
        let want = direct.run(&requests, &NoFaults);
        let mut swapped = MatchService::with_generation(config, loaded);
        let got = swapped.run(&requests, &NoFaults);
        (got == want
            && swapped.generation() == 3
            && swapped.stats().ann_requests == requests.len() as u64
            && swapped.stats().shard_fallbacks == 0)
            .then_some(())
    })()
    .is_some();
    std::fs::remove_dir_all(&dir).ok();
    ok
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let scale = if quick { Scale::smoke() } else { Scale::standard() };
    let _obs = cem_obs::force_enable();
    assert!(scale.images >= 100_000, "the drill's floor is 100k images");

    eprintln!(
        "[scale_drill] {} images × dim {}, {} queries, {} clusters, nprobe {} …",
        scale.images, scale.dim, scale.entities, scale.nclusters, scale.nprobe
    );
    let embeddings = blobs(scale.images, scale.dim, scale.nblobs, 0.25, 0xA11CE);
    let queries = blobs(scale.entities, scale.dim, scale.nblobs, 0.25, 0xB0B);

    let built = Instant::now();
    let index = ShardedIndex::build(
        queries,
        scale.entities,
        &embeddings,
        scale.images,
        scale.dim,
        scale.nclusters,
        scale.kmeans_iters,
        42,
    );
    let build_seconds = built.elapsed().as_secs_f64();
    drop(embeddings);
    eprintln!("[build] sharded index in {build_seconds:.1}s");

    // ---------------------------------------------------------------
    // Dense oracle: per-request scan cost and the reference top-10.
    // ---------------------------------------------------------------
    let started = Instant::now();
    let oracle: Vec<Vec<usize>> =
        (0..scale.entities).map(|e| index.dense_rank(e, 10, 1)).collect();
    let dense_nanos = started.elapsed().as_nanos() as f64 / scale.entities as f64;
    eprintln!("[dense] {:.0} µs/request, {} candidates each", dense_nanos / 1e3, scale.images);

    // ---------------------------------------------------------------
    // Probed waves: cost, recall@10, and the coalescing split.
    // ---------------------------------------------------------------
    let slots: Vec<usize> = (0..scale.entities).collect();
    let started = Instant::now();
    let mut rankings = Vec::with_capacity(scale.entities);
    let mut candidates: u64 = 0;
    let mut batched: u64 = 0;
    let mut single: u64 = 0;
    for wave in slots.chunks(scale.wave) {
        let score = index.score_wave(wave, scale.nprobe, 2, 10, 1).expect("intact shards");
        candidates += score.candidates;
        batched += score.batched_gemms;
        single += score.single_gemms;
        rankings.extend(score.rankings);
    }
    let ivf_nanos = started.elapsed().as_nanos() as f64 / scale.entities as f64;
    let probed_fraction = candidates as f64 / (scale.entities as f64 * scale.images as f64);
    let candidates_per_request = candidates as f64 / scale.entities as f64;

    let mut overlap = 0usize;
    for (ranking, dense) in rankings.iter().zip(&oracle) {
        overlap += ranking.ids.iter().filter(|id| dense.contains(id)).count();
    }
    let recall = overlap as f64 / (10 * scale.entities) as f64;
    let speedup = dense_nanos / ivf_nanos.max(1.0);
    eprintln!(
        "[ivf] {:.0} µs/request, {:.0} candidates ({:.4} of gallery), recall@10 {:.4}, \
         {batched} batched / {single} single GEMMs",
        ivf_nanos / 1e3,
        candidates_per_request,
        probed_fraction,
        recall
    );

    let sublinear_pass = probed_fraction < 0.5;
    let recall_pass = recall >= 0.95;
    println!(
        "[cost] probed fraction {probed_fraction:.4} (< 0.5), wall speedup {speedup:.1}× → {}",
        verdict(sublinear_pass)
    );
    println!("[recall] recall@10 {recall:.4} (≥ 0.95) → {}", verdict(recall_pass));

    // ---------------------------------------------------------------
    // Determinism: threads × batching × full probe ≡ dense.
    // ---------------------------------------------------------------
    eprintln!("[determinism] 1 vs 4 threads, coalesced vs row-wise, full probe vs dense …");
    let sample: Vec<usize> = (0..scale.wave.min(scale.entities)).collect();
    let run_with = |threads: usize, min_batch: usize| {
        let _guard = ThreadsGuard::new(threads);
        let probes: Vec<Vec<usize>> =
            sample.iter().map(|&e| index.probe(e, scale.nprobe)).collect();
        let wave = index.score_wave(&sample, scale.nprobe, min_batch, 10, threads).unwrap();
        (probes, wave.rankings)
    };
    let (p1, r1) = run_with(1, 2);
    let (p4, r4) = run_with(4, 2);
    let (_, rows) = run_with(1, usize::MAX);
    let full_probe = index.score_wave(&sample, scale.nclusters, 2, 10, 4).unwrap();
    let dense_match = sample
        .iter()
        .zip(&full_probe.rankings)
        .all(|(&e, r)| r.ids == oracle[e]);
    let determinism_pass = p1 == p4 && r1 == r4 && r1 == rows && dense_match;
    println!(
        "[determinism] probe schedules {}, wave bits {}, full-probe ≡ dense {} → {}",
        p1 == p4,
        r1 == r4 && r1 == rows,
        dense_match,
        verdict(determinism_pass)
    );

    // ---------------------------------------------------------------
    // Service e2e + hot-swap at reduced scale.
    // ---------------------------------------------------------------
    eprintln!("[service] full-probe with_shards vs dense service …");
    let service_pass = service_e2e();
    println!("[service] bitwise dense equivalence → {}", verdict(service_pass));
    eprintln!("[hotswap] shard sections through the generation store …");
    let hotswap_pass = hotswap_e2e();
    println!("[hotswap] round-trip serve equivalence → {}", verdict(hotswap_pass));

    let all_pass =
        sublinear_pass && recall_pass && determinism_pass && service_pass && hotswap_pass;
    println!(
        "\nscale drill: {} images, probed fraction {:.4}, recall@10 {:.4} → {}",
        scale.images,
        probed_fraction,
        recall,
        if all_pass { "ALL PASS" } else { "FAILURES" }
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"scale_drill\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "smoke" } else { "standard" });
    let _ = writeln!(json, "  \"images\": {},", scale.images);
    let _ = writeln!(json, "  \"entities\": {},", scale.entities);
    let _ = writeln!(json, "  \"dim\": {},", scale.dim);
    let _ = writeln!(json, "  \"nclusters\": {},", scale.nclusters);
    let _ = writeln!(json, "  \"nprobe\": {},", scale.nprobe);
    let _ = writeln!(json, "  \"build_seconds\": {build_seconds:.2},");
    let _ = writeln!(json, "  \"dense\": {{");
    let _ = writeln!(json, "    \"candidates_per_request\": {},", scale.images);
    let _ = writeln!(json, "    \"per_request_nanos\": {dense_nanos:.0}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"ivf\": {{");
    let _ = writeln!(json, "    \"candidates_per_request\": {candidates_per_request:.0},");
    let _ = writeln!(json, "    \"per_request_nanos\": {ivf_nanos:.0},");
    let _ = writeln!(json, "    \"probed_fraction\": {probed_fraction:.4},");
    let _ = writeln!(json, "    \"batched_gemms\": {batched},");
    let _ = writeln!(json, "    \"single_gemms\": {single}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"wall_speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"recall_at_10\": {recall:.4},");
    let _ = writeln!(json, "  \"sublinear_pass\": {sublinear_pass},");
    let _ = writeln!(json, "  \"recall_pass\": {recall_pass},");
    let _ = writeln!(json, "  \"determinism_pass\": {determinism_pass},");
    let _ = writeln!(json, "  \"service_e2e_pass\": {service_pass},");
    let _ = writeln!(json, "  \"hotswap_pass\": {hotswap_pass},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");

    if !all_pass {
        std::process::exit(1);
    }
}
