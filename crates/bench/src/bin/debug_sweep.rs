//! Diagnostic: sweep pre-training sizes to find a generalising recipe.
use cem_clip::pretrain::PretrainConfig;
use cem_data::{BundleConfig, DatasetBundle, DatasetKind, DatasetScale};

fn main() {
    for (pairs, epochs, batch, lr) in [
        (500usize, 8usize, 32usize, 5e-4f32),
        (1500, 10, 64, 1e-3),
        (3000, 10, 64, 1e-3),
        (3000, 16, 64, 1e-3),
    ] {
        let config = BundleConfig {
            kind: DatasetKind::Cub,
            scale: DatasetScale { classes: 40, images_per_class: 4 },
            pretrain_pairs: pairs,
            pretrain: PretrainConfig { epochs, batch_size: batch, lr, clip_norm: 5.0 },
            seed: 17,
        };
        let t = std::time::Instant::now();
        let mut bundle = DatasetBundle::prepare(config);
        let secs = t.elapsed().as_secs_f64();
        let mut rng = bundle.stage_rng(999);
        let corpus = cem_data::generate_corpus(&mut bundle.world, &bundle.dataset.pool, 100, &mut rng);
        let held: Vec<(Vec<usize>, cem_clip::Image)> = corpus
            .into_iter()
            .map(|p| (bundle.tokenizer.encode(&p.caption, 77).0, p.image))
            .collect();
        let acc = cem_clip::pretrain::aligned_top1_accuracy(&bundle.clip, &held);
        let zs = cem_baselines::clip_zeroshot::run(&bundle.clip, &bundle.tokenizer, &bundle.dataset);
        println!(
            "pairs={pairs} epochs={epochs} batch={batch} lr={lr}: heldout={acc:.3} zeroshot {} ({secs:.0}s)",
            zs.metrics.row()
        );
    }
}
