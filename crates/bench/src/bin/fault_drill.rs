//! Resilience drills for the training loop (see DESIGN.md, "Failure
//! handling & resume"). Three drills, each with a hard pass/fail verdict:
//!
//! 1. **Crash/resume equivalence** — a run killed after epoch `k` and
//!    resumed from its durable checkpoint must reach *bit-identical*
//!    parameters (and therefore identical metrics) to an uninterrupted
//!    run.
//! 2. **NaN-injection rollback** — poisoning one batch's gradients with
//!    NaN must trip the divergence guard, roll back, and leave a run that
//!    still finishes with finite loss and sane metrics.
//! 3. **Corruption rejection** — every truncated or bit-flipped checkpoint
//!    must be rejected with a typed error; none may panic or load.
//! 4. **Torn rotation** — a crash *during* checkpoint rotation (after the
//!    incoming temp file is written but with the write torn, part-way
//!    through the rename sequence) must fall back to the previous intact
//!    generation on load.
//!
//! Timings (checkpoint write/read latency, resume overhead) are written to
//! `BENCH_robustness.json`. Honours `--quick`.

use std::fmt::Write as _;
use std::time::Instant;

use cem_bench::faults::{corrupt_byte, flip_bit, truncate_file, CrashAfterEpoch, NanPoisoner};
use cem_bench::{prepare, HarnessConfig, PreparedBundle};
use cem_data::DatasetKind;
use cem_tensor::io::StateDict;
use cem_tensor::Tensor;
use crossem::guard::FaultInjector;
use crossem::trainer::{TrainOptions, TrainReport};
use crossem::{CheckpointManager, CrossEm, PromptKind, ResumeSource};

/// Stage index for the drill RNG (distinct from the table harness stages).
const DRILL_STAGE: u64 = 77;

struct RunOutcome {
    report: TrainReport,
    params: Vec<Vec<f32>>,
    mrr: f64,
}

/// One checkpointed training run over a pristine world. `reset_clip`
/// restores the pre-trained weights, so every call starts from the
/// identical state a fresh process would rebuild from the seed.
fn run<'h>(
    prepared: &PreparedBundle,
    epochs: usize,
    manager: Option<&'h CheckpointManager>,
    injector: Option<&'h mut (dyn FaultInjector + 'h)>,
) -> RunOutcome {
    prepared.reset_clip();
    let bundle = &prepared.bundle;
    let mut rng = bundle.stage_rng(DRILL_STAGE);
    let config = prepared.train_config(PromptKind::Hard, epochs);
    let matcher = CrossEm::new(&bundle.clip, &bundle.tokenizer, &bundle.dataset, config, &mut rng);
    let report = matcher
        .train_with_options(&mut rng, TrainOptions { checkpoints: manager, injector, ..Default::default() })
        .expect("drill checkpoints must load");
    let params = matcher.trainable_params().iter().map(|p| p.to_vec()).collect();
    let mrr = matcher.evaluate().mrr as f64;
    RunOutcome { report, params, mrr }
}

fn max_abs_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
        .fold(0.0f32, f32::max)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cem_fault_drill_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn main() {
    let config = HarnessConfig::from_args();
    let epochs = config.em_epochs.max(3);
    let crash_epoch = (epochs - 1) / 2;
    let prepared = prepare(DatasetKind::Cub, &config);

    // ---------------------------------------------------------------
    // Drill 1: kill after epoch `crash_epoch`, resume, compare with an
    // uninterrupted run.
    // ---------------------------------------------------------------
    eprintln!("[drill 1] crash after epoch {crash_epoch}, resume, compare ({epochs} epochs) …");
    let dir_full = scratch_dir("full");
    let dir_crash = scratch_dir("crash");
    let manager_full = CheckpointManager::new(&dir_full).expect("scratch dir");
    let manager_crash = CheckpointManager::new(&dir_crash).expect("scratch dir");

    let full = run(&prepared, epochs, Some(&manager_full), None);
    assert_eq!(full.report.epochs.len(), epochs);

    let mut crasher = CrashAfterEpoch::at(crash_epoch);
    let partial = run(&prepared, epochs, Some(&manager_crash), Some(&mut crasher));
    assert!(crasher.crashed, "crash injector never fired");
    assert_eq!(partial.report.epochs.len(), crash_epoch + 1);

    // "New process": pristine weights, same checkpoint directory.
    let resume_load_start = Instant::now();
    let loaded = manager_crash.load().expect("crash checkpoint readable");
    let resume_load_ms = resume_load_start.elapsed().as_secs_f64() * 1e3;
    assert!(loaded.is_some(), "crash run left no checkpoint");

    let resumed = run(&prepared, epochs, Some(&manager_crash), None);
    assert_eq!(resumed.report.resumed_from, Some(crash_epoch + 1));
    assert_eq!(resumed.report.epochs.len(), epochs - crash_epoch - 1);

    let diff = max_abs_diff(&full.params, &resumed.params);
    let drill1_pass = diff == 0.0 && (full.mrr - resumed.mrr).abs() < 1e-12;
    println!(
        "[drill 1] max |Δparam| = {diff:.3e}, mrr full {:.4} vs resumed {:.4} → {}",
        full.mrr,
        resumed.mrr,
        if drill1_pass { "PASS" } else { "FAIL" }
    );

    // Checkpoint write/read latency on the real final training state.
    let (final_state, _) = manager_full.load().expect("full checkpoint readable").unwrap();
    let timing_dir = scratch_dir("timing");
    let timing_manager = CheckpointManager::new(&timing_dir).expect("scratch dir");
    let reps = 5;
    let write_start = Instant::now();
    for _ in 0..reps {
        timing_manager.save(&final_state).expect("timing save");
    }
    let checkpoint_write_ms = write_start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let read_start = Instant::now();
    for _ in 0..reps {
        timing_manager.load().expect("timing load").unwrap();
    }
    let checkpoint_read_ms = read_start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let checkpoint_bytes = std::fs::metadata(manager_full.latest_path())
        .map(|m| m.len())
        .unwrap_or(0);

    // ---------------------------------------------------------------
    // Drill 2: poison one batch's gradients; the guard must contain it.
    // ---------------------------------------------------------------
    eprintln!("[drill 2] NaN-poisoning one batch's gradients …");
    let mut poisoner = NanPoisoner::at(3);
    let poisoned = run(&prepared, epochs, None, Some(&mut poisoner));
    let final_loss = poisoned.report.final_loss().unwrap_or(f32::NAN);
    let drill2_pass = poisoner.poisoned == 1
        && poisoned.report.nan_batches() >= 1
        && poisoned.report.rollbacks() >= 1
        && !poisoned.report.diverged
        && final_loss.is_finite()
        && poisoned.params.iter().flatten().all(|x| x.is_finite())
        && poisoned.mrr > 0.0;
    println!(
        "[drill 2] nan_batches {}, rollbacks {}, diverged {}, final loss {:.4}, mrr {:.4} → {}",
        poisoned.report.nan_batches(),
        poisoned.report.rollbacks(),
        poisoned.report.diverged,
        final_loss,
        poisoned.mrr,
        if drill2_pass { "PASS" } else { "FAIL" }
    );

    // ---------------------------------------------------------------
    // Drill 3: every damaged checkpoint is rejected with a typed error.
    // ---------------------------------------------------------------
    eprintln!("[drill 3] corrupting checkpoint files …");
    let pristine = std::fs::read(manager_full.latest_path()).expect("checkpoint bytes");
    let victim = std::env::temp_dir()
        .join(format!("cem_fault_drill_victim_{}.cemt", std::process::id()));
    let mut cases = 0usize;
    let mut rejected = 0usize;

    // Torn writes: truncate at a spread of lengths.
    for keep in [0, 4, 12, pristine.len() / 4, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&victim, &pristine).unwrap();
        truncate_file(&victim, keep as u64).unwrap();
        cases += 1;
        if StateDict::load(&victim).is_err() {
            rejected += 1;
        }
    }
    // Bit rot: flip a byte at offsets spread through the whole file,
    // including the magic, the footer, and the payload in between.
    let stride = (pristine.len() / 32).max(1);
    for offset in (0..pristine.len()).step_by(stride) {
        std::fs::write(&victim, &pristine).unwrap();
        corrupt_byte(&victim, offset as u64, 0xFF).unwrap();
        cases += 1;
        if StateDict::load(&victim).is_err() {
            rejected += 1;
        }
    }
    let drill3_pass = rejected == cases;
    println!(
        "[drill 3] {rejected}/{cases} damaged checkpoints rejected → {}",
        if drill3_pass { "PASS" } else { "FAIL" }
    );

    // ---------------------------------------------------------------
    // Drill 4: a crash mid-rotation with a torn incoming file must fall
    // back to the previous generation.
    // ---------------------------------------------------------------
    eprintln!("[drill 4] tearing the incoming file mid-rotation …");
    let gen_dict = |gen: u64| {
        let mut dict = StateDict::new();
        dict.insert("gen", Tensor::from_vec(vec![gen as f32], &[1, 1]));
        dict.insert_meta("gen", gen);
        dict
    };
    let dir_torn = scratch_dir("torn");
    let mut torn_cases = 0usize;
    let mut torn_fallbacks = 0usize;
    // `promoted` = whether the crash hit before or after the damaged
    // incoming file was renamed over `latest`.
    for (mode, promoted) in
        [("truncate", true), ("flip", true), ("truncate", false), ("flip", false)]
    {
        std::fs::remove_dir_all(&dir_torn).ok();
        let manager = CheckpointManager::new(&dir_torn).expect("scratch dir");
        manager.save(&gen_dict(1)).expect("gen 1 save");
        manager.save(&gen_dict(2)).expect("gen 2 save");
        // Simulated crash during the generation-3 save: the incoming temp
        // file lands damaged (torn write / bit rot) and the process dies
        // part-way through save()'s rename sequence.
        let incoming = dir_torn.join("ckpt-incoming.cemt");
        gen_dict(3).save(&incoming).expect("gen 3 incoming");
        let len = std::fs::metadata(&incoming).expect("incoming metadata").len();
        match mode {
            "truncate" => truncate_file(&incoming, len / 3).expect("tear incoming"),
            _ => flip_bit(&incoming, len / 2, 2).expect("flip incoming"),
        }
        std::fs::rename(manager.latest_path(), manager.prev_path()).expect("demote latest");
        if promoted {
            std::fs::rename(&incoming, manager.latest_path()).expect("promote incoming");
        }
        torn_cases += 1;
        let fell_back = matches!(
            manager.load(),
            Ok(Some((dict, ResumeSource::Previous))) if dict.meta("gen") == Some(2)
        );
        if fell_back {
            torn_fallbacks += 1;
        } else {
            eprintln!("[drill 4] {mode} (promoted={promoted}): no fallback to generation 2");
        }
    }
    let drill4_pass = torn_fallbacks == torn_cases;
    println!(
        "[drill 4] {torn_fallbacks}/{torn_cases} torn rotations fell back to prev → {}",
        if drill4_pass { "PASS" } else { "FAIL" }
    );

    // ---------------------------------------------------------------
    // Summary + BENCH_robustness.json
    // ---------------------------------------------------------------
    let all_pass = drill1_pass && drill2_pass && drill3_pass && drill4_pass;
    println!(
        "\ncheckpoint: {checkpoint_bytes} bytes, write {checkpoint_write_ms:.2} ms, \
         read {checkpoint_read_ms:.2} ms, resume load {resume_load_ms:.2} ms"
    );
    println!("fault drill: {}", if all_pass { "ALL PASS" } else { "FAILURES" });

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"fault_drill\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if std::env::args().any(|a| a == "--quick") { "quick" } else { "standard" }
    );
    let _ = writeln!(json, "  \"epochs\": {epochs},");
    let _ = writeln!(json, "  \"crash_epoch\": {crash_epoch},");
    let _ = writeln!(json, "  \"drill1_crash_resume_pass\": {drill1_pass},");
    let _ = writeln!(json, "  \"drill1_max_param_diff\": {diff},");
    let _ = writeln!(json, "  \"drill1_mrr_full\": {},", full.mrr);
    let _ = writeln!(json, "  \"drill1_mrr_resumed\": {},", resumed.mrr);
    let _ = writeln!(json, "  \"drill2_nan_rollback_pass\": {drill2_pass},");
    let _ = writeln!(json, "  \"drill2_nan_batches\": {},", poisoned.report.nan_batches());
    let _ = writeln!(json, "  \"drill2_rollbacks\": {},", poisoned.report.rollbacks());
    let _ = writeln!(json, "  \"drill3_corruption_pass\": {drill3_pass},");
    let _ = writeln!(json, "  \"drill3_cases\": {cases},");
    let _ = writeln!(json, "  \"drill3_rejected\": {rejected},");
    let _ = writeln!(json, "  \"drill4_torn_rotation_pass\": {drill4_pass},");
    let _ = writeln!(json, "  \"drill4_cases\": {torn_cases},");
    let _ = writeln!(json, "  \"drill4_fallbacks\": {torn_fallbacks},");
    let _ = writeln!(json, "  \"checkpoint_bytes\": {checkpoint_bytes},");
    let _ = writeln!(json, "  \"checkpoint_write_ms\": {checkpoint_write_ms:.3},");
    let _ = writeln!(json, "  \"checkpoint_read_ms\": {checkpoint_read_ms:.3},");
    let _ = writeln!(json, "  \"resume_load_ms\": {resume_load_ms:.3}");
    json.push_str("}\n");
    std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
    println!("wrote BENCH_robustness.json");

    for dir in [dir_full, dir_crash, timing_dir, dir_torn] {
        std::fs::remove_dir_all(dir).ok();
    }
    std::fs::remove_file(&victim).ok();

    if !all_pass {
        std::process::exit(1);
    }
}
