//! Deterministic fault injectors for resilience drills.
//!
//! These implement the [`FaultInjector`] seam exposed by the trainers so
//! drills and integration tests can poison a precise batch's gradients,
//! kill a run at a precise epoch boundary, or damage checkpoint files on
//! disk — all reproducibly, with no randomness and no test-only branches
//! in production code.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use cem_serve::{FaultKind, ServeFault, Tier};
use cem_tensor::Tensor;
use crossem::guard::{EpochAction, FaultInjector};

/// Overwrites every trainable parameter's gradient with NaN on one chosen
/// global batch — the classic "one bad batch poisons the AdamW moments"
/// failure the divergence guard exists to contain.
#[derive(Debug, Clone)]
pub struct NanPoisoner {
    pub target_batch: usize,
    /// How many batches were actually poisoned (0 or 1).
    pub poisoned: usize,
}

impl NanPoisoner {
    pub fn at(target_batch: usize) -> Self {
        NanPoisoner { target_batch, poisoned: 0 }
    }
}

impl FaultInjector for NanPoisoner {
    fn after_backward(&mut self, global_batch: usize, params: &[Tensor]) {
        if global_batch == self.target_batch {
            for p in params {
                p.set_grad(&vec![f32::NAN; p.numel()]);
            }
            self.poisoned += 1;
        }
    }
}

/// Aborts the run right after epoch `epoch`'s checkpoint is written,
/// simulating a process killed between epochs. "Restarting the process"
/// is then simulated by rebuilding the world from the same seed and
/// training again with the same checkpoint directory.
#[derive(Debug, Clone)]
pub struct CrashAfterEpoch {
    pub epoch: usize,
    pub crashed: bool,
}

impl CrashAfterEpoch {
    pub fn at(epoch: usize) -> Self {
        CrashAfterEpoch { epoch, crashed: false }
    }
}

impl FaultInjector for CrashAfterEpoch {
    fn after_epoch(&mut self, epoch: usize) -> EpochAction {
        if epoch == self.epoch {
            self.crashed = true;
            EpochAction::Abort
        } else {
            EpochAction::Continue
        }
    }
}

/// Scripted fault schedule for the serving drills: a pure lookup table
/// over `(request id, tier, attempt)`, so the same plan replays the exact
/// same fault sequence at any thread count. Exact-attempt entries take
/// precedence over all-attempt entries for the same `(request, tier)`.
#[derive(Debug, Default, Clone)]
pub struct ServeFaultPlan {
    exact: HashMap<(u64, usize, u32), FaultKind>,
    every_attempt: HashMap<(u64, usize), FaultKind>,
}

impl ServeFaultPlan {
    pub fn new() -> Self {
        ServeFaultPlan::default()
    }

    /// Inject `kind` into exactly one attempt of one tier of one request.
    pub fn fault_at(mut self, request_id: u64, tier: Tier, attempt: u32, kind: FaultKind) -> Self {
        self.exact.insert((request_id, tier.index(), attempt), kind);
        self
    }

    /// Inject `kind` into every attempt of one tier of one request —
    /// a persistent failure that outlasts the retry budget.
    pub fn fault_all_attempts(mut self, request_id: u64, tier: Tier, kind: FaultKind) -> Self {
        self.every_attempt.insert((request_id, tier.index()), kind);
        self
    }

    /// Number of scripted entries (exact + persistent).
    pub fn len(&self) -> usize {
        self.exact.len() + self.every_attempt.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.every_attempt.is_empty()
    }
}

impl ServeFault for ServeFaultPlan {
    fn inject(&self, request_id: u64, tier: Tier, attempt: u32) -> Option<FaultKind> {
        self.exact
            .get(&(request_id, tier.index(), attempt))
            .or_else(|| self.every_attempt.get(&(request_id, tier.index())))
            .copied()
    }
}

/// Truncate a file to `keep` bytes (a torn write).
pub fn truncate_file(path: impl AsRef<Path>, keep: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    Ok(())
}

/// XOR one byte of a file with `mask` (bit rot / disk corruption).
/// `mask` must be non-zero or the file would be unchanged.
pub fn corrupt_byte(path: impl AsRef<Path>, offset: u64, mask: u8) -> io::Result<()> {
    assert!(mask != 0, "a zero mask would leave the file intact");
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    Ok(())
}

/// Flip a single bit of a file.
pub fn flip_bit(path: impl AsRef<Path>, offset: u64, bit: u8) -> io::Result<()> {
    corrupt_byte(path, offset, 1 << (bit & 7))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("cem_faults_{tag}_{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn serve_fault_plan_is_a_pure_lookup() {
        let plan = ServeFaultPlan::new()
            .fault_at(3, Tier::Full, 1, FaultKind::WorkerPanic)
            .fault_all_attempts(3, Tier::Full, FaultKind::NanFeatures)
            .fault_all_attempts(5, Tier::Cached, FaultKind::CorruptCache);
        assert_eq!(plan.len(), 3);
        // Exact entry wins over the persistent one for the same key.
        assert_eq!(plan.inject(3, Tier::Full, 1), Some(FaultKind::WorkerPanic));
        assert_eq!(plan.inject(3, Tier::Full, 0), Some(FaultKind::NanFeatures));
        assert_eq!(plan.inject(3, Tier::Full, 2), Some(FaultKind::NanFeatures));
        assert_eq!(plan.inject(5, Tier::Cached, 7), Some(FaultKind::CorruptCache));
        assert_eq!(plan.inject(5, Tier::Full, 0), None);
        assert_eq!(plan.inject(4, Tier::Cached, 0), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn truncate_shrinks_file() {
        let path = tmp_file("trunc", &[1, 2, 3, 4, 5]);
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_flips_in_place() {
        let path = tmp_file("byte", &[0xAA, 0xBB, 0xCC]);
        corrupt_byte(&path, 1, 0xFF).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0xAA, 0x44, 0xCC]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let path = tmp_file("bit", &[0b0000_0000]);
        flip_bit(&path, 0, 3).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0b0000_1000]);
        std::fs::remove_file(&path).ok();
    }
}
