//! Train/test entity splits.
//!
//! The paper evaluates CUB and SUN with the seen/unseen class splits of
//! Xian et al. [42] (the zero-shot-learning protocol). This module provides
//! the equivalent: a deterministic split of entity indices into *seen*
//! (whose images may inform preprocessing) and *unseen* (evaluation-only)
//! sets, plus a view that restricts evaluation to one side.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::EmDataset;

/// A seen/unseen partition of a dataset's entities.
#[derive(Debug, Clone)]
pub struct EntitySplit {
    pub seen: Vec<usize>,
    pub unseen: Vec<usize>,
}

impl EntitySplit {
    /// Split `dataset`'s entities with `unseen_fraction` held out.
    /// Deterministic given the RNG. Guarantees both sides are non-empty
    /// whenever the dataset has ≥ 2 entities.
    pub fn new<R: Rng>(dataset: &EmDataset, unseen_fraction: f32, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&unseen_fraction),
            "unseen_fraction must be in [0,1]"
        );
        let n = dataset.entity_count();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut n_unseen = ((n as f32) * unseen_fraction).round() as usize;
        if n >= 2 {
            n_unseen = n_unseen.clamp(1, n - 1);
        }
        let unseen: Vec<usize> = order[..n_unseen].to_vec();
        let seen: Vec<usize> = order[n_unseen..].to_vec();
        EntitySplit { seen, unseen }
    }

    pub fn is_unseen(&self, entity: usize) -> bool {
        self.unseen.contains(&entity)
    }

    /// Image indices whose gold entity is unseen (the retrieval pool for
    /// strict zero-shot evaluation).
    pub fn unseen_images(&self, dataset: &EmDataset) -> Vec<usize> {
        (0..dataset.image_count())
            .filter(|&i| self.unseen.contains(&dataset.image_gold[i]))
            .collect()
    }
}

impl EntitySplit {
    /// Filter full rankings down to the strict zero-shot protocol: keep
    /// only unseen-entity queries, and within each ranking keep only images
    /// of unseen entities (a method must not look good by retrieving
    /// seen-class images it peeked at). Returns `(unseen entity indices,
    /// filtered rankings)` in matching order, ready for
    /// `crossem::metrics::evaluate_rankings`.
    pub fn filter_rankings(
        &self,
        rankings: &[Vec<usize>],
        dataset: &EmDataset,
    ) -> (Vec<usize>, Vec<Vec<usize>>) {
        let pool: std::collections::HashSet<usize> =
            self.unseen_images(dataset).into_iter().collect();
        let mut queries = Vec::with_capacity(self.unseen.len());
        let mut filtered = Vec::with_capacity(self.unseen.len());
        for &e in &self.unseen {
            queries.push(e);
            filtered.push(
                rankings[e].iter().copied().filter(|i| pool.contains(i)).collect(),
            );
        }
        (queries, filtered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, DatasetKind, DatasetScale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> EmDataset {
        let mut rng = StdRng::seed_from_u64(0);
        generate(DatasetKind::Cub, DatasetScale::smoke(), &mut rng).1
    }

    #[test]
    fn split_covers_all_entities_exactly_once() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let split = EntitySplit::new(&d, 0.3, &mut rng);
        let mut all: Vec<usize> = split.seen.iter().chain(&split.unseen).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..d.entity_count()).collect::<Vec<_>>());
    }

    #[test]
    fn both_sides_nonempty() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        for f in [0.0f32, 0.01, 0.5, 0.99, 1.0] {
            let split = EntitySplit::new(&d, f, &mut rng);
            assert!(!split.seen.is_empty(), "fraction {f}: empty seen");
            assert!(!split.unseen.is_empty(), "fraction {f}: empty unseen");
        }
    }

    #[test]
    fn unseen_images_belong_to_unseen_entities() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let split = EntitySplit::new(&d, 0.5, &mut rng);
        for i in split.unseen_images(&d) {
            assert!(split.is_unseen(d.image_gold[i]));
        }
    }

    #[test]
    fn filter_rankings_keeps_only_unseen_pool() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let split = EntitySplit::new(&d, 0.5, &mut rng);
        let full: Vec<Vec<usize>> =
            (0..d.entity_count()).map(|_| (0..d.image_count()).collect()).collect();
        let (queries, filtered) = split.filter_rankings(&full, &d);
        assert_eq!(queries.len(), split.unseen.len());
        let pool_size = split.unseen_images(&d).len();
        for ranking in &filtered {
            assert_eq!(ranking.len(), pool_size);
            for &img in ranking {
                assert!(split.is_unseen(d.image_gold[img]));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let a = EntitySplit::new(&d, 0.4, &mut StdRng::seed_from_u64(9));
        let b = EntitySplit::new(&d, 0.4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.seen, b.seen);
        assert_eq!(a.unseen, b.unseen);
    }
}
