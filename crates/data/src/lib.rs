//! # cem-data
//!
//! Synthetic data generation for the CrossEM reproduction. The paper
//! evaluates on CUB (birds with 312 attributes), SUN (scenes with 102
//! attributes) and FB15K-237-IMG (a Freebase subset with 10 images per
//! entity). None of those corpora are available here, so this crate builds
//! statistically-shaped equivalents on top of a *latent concept space*:
//!
//! * every attribute word has a hidden unit "concept vector";
//! * an image is a bag of patches, each rendered from one concept vector of
//!   the depicted entity through a fixed world-renderer projection plus
//!   noise and distractor patches;
//! * a caption is natural-ish text mentioning some of the same words.
//!
//! Because captions and images share the concept space, a CLIP model
//! pre-trained on generic caption↔image pairs learns genuine word↔patch
//! alignment — giving prompt tuning the same starting point the paper's
//! pre-trained CLIP provides. Dataset knobs (how many signature attributes a
//! class has, how many of them its *name* reveals, how noisy graph
//! neighbourhoods are) reproduce the relative difficulty ordering of
//! CUB/SUN/FB observed in the paper (see DESIGN.md).

pub mod bundle;
pub mod concepts;
pub mod dataset;
pub mod generators;
pub mod pretrain_corpus;
pub mod schema;
pub mod splits;
pub mod world;

pub use bundle::{BundleConfig, DatasetBundle};
pub use concepts::ConceptSpace;
pub use dataset::{DatasetError, DatasetStats, EmDataset};
pub use generators::{fbimg, generate, DatasetKind, DatasetScale};
pub use pretrain_corpus::{generate_corpus, CaptionPair};
pub use schema::{AttributePool, ClassSpec};
pub use splits::EntitySplit;
pub use world::World;
