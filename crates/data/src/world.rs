//! The synthetic world: renders concept words into image patches and
//! captions, so that vision and language share a common latent structure.

use cem_clip::Image;
use cem_tensor::init::randn_value;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::concepts::ConceptSpace;

/// World configuration.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Latent concept dimensionality.
    pub concept_dim: usize,
    /// Patch feature dimensionality (what the image encoder sees).
    pub patch_dim: usize,
    /// Std-dev of additive patch noise.
    pub patch_noise: f32,
    /// Number of distractor (background) patches per image.
    pub distractor_patches: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig { concept_dim: 16, patch_dim: 16, patch_noise: 0.15, distractor_patches: 1 }
    }
}

/// The world holds the concept space plus a fixed random "camera" projection
/// from concept space to patch-feature space. The projection is frozen: it
/// plays the role of physics/optics, not of anything learned.
pub struct World {
    config: WorldConfig,
    concepts: ConceptSpace,
    /// `[concept_dim, patch_dim]` row-major projection.
    camera: Vec<f32>,
}

impl World {
    pub fn new<R: Rng>(config: WorldConfig, rng: &mut R) -> Self {
        let camera: Vec<f32> = (0..config.concept_dim * config.patch_dim)
            .map(|_| randn_value(rng) / (config.concept_dim as f32).sqrt())
            .collect();
        World { config, concepts: ConceptSpace::new(config.concept_dim), camera }
    }

    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    pub fn concepts(&self) -> &ConceptSpace {
        &self.concepts
    }

    /// Register every word of `text` in the concept space.
    pub fn register_text<R: Rng>(&mut self, text: &str, rng: &mut R) {
        for word in cem_clip::tokenizer::split_words(text) {
            self.concepts.ensure(&word, rng);
        }
    }

    /// Project a concept vector through the camera into patch space.
    fn project(&self, concept: &[f32]) -> Vec<f32> {
        let (cd, pd) = (self.config.concept_dim, self.config.patch_dim);
        debug_assert_eq!(concept.len(), cd);
        let mut out = vec![0.0f32; pd];
        for (i, &c) in concept.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            for (o, w) in out.iter_mut().zip(&self.camera[i * pd..(i + 1) * pd]) {
                *o += c * w;
            }
        }
        out
    }

    /// Render one patch depicting `phrase` (multi-word phrases blend their
    /// word concepts) plus Gaussian noise.
    pub fn render_patch<R: Rng>(&self, phrase: &str, rng: &mut R) -> Vec<f32> {
        let words: Vec<String> = cem_clip::tokenizer::split_words(phrase);
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let concept = self.concepts.blend(&refs);
        let mut patch = self.project(&concept);
        for v in patch.iter_mut() {
            *v += self.config.patch_noise * randn_value(rng);
        }
        patch
    }

    /// Render an image of an entity described by `phrases`: one patch per
    /// phrase (shuffled), plus the configured number of pure-noise
    /// distractor patches.
    pub fn render_image<R: Rng>(&self, phrases: &[&str], rng: &mut R) -> Image {
        assert!(!phrases.is_empty(), "cannot render an image of nothing");
        let mut patches: Vec<Vec<f32>> =
            phrases.iter().map(|p| self.render_patch(p, rng)).collect();
        for _ in 0..self.config.distractor_patches {
            patches.push(
                (0..self.config.patch_dim)
                    .map(|_| 0.5 * randn_value(rng))
                    .collect(),
            );
        }
        patches.shuffle(rng);
        Image::from_patches(patches)
    }

    /// A natural-ish caption mentioning the phrases, e.g.
    /// `"a photo of white albatross with long wings and black tail"`.
    pub fn caption(subject: &str, phrases: &[&str]) -> String {
        if phrases.is_empty() {
            format!("a photo of {subject}")
        } else {
            format!("a photo of {subject} with {}", phrases.join(" and "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(seed: u64) -> (World, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = World::new(WorldConfig::default(), &mut rng);
        (w, rng)
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-9)
    }

    #[test]
    fn same_word_patches_correlate() {
        let (mut w, mut rng) = world(0);
        w.register_text("white black", &mut rng);
        let p1 = w.render_patch("white", &mut rng);
        let p2 = w.render_patch("white", &mut rng);
        let q = w.render_patch("black", &mut rng);
        assert!(cosine(&p1, &p2) > cosine(&p1, &q), "same-word patches should be closer");
    }

    #[test]
    fn render_image_has_expected_patch_count() {
        let (mut w, mut rng) = world(1);
        w.register_text("white long-wings", &mut rng);
        let img = w.render_image(&["white", "long-wings"], &mut rng);
        assert_eq!(img.n_patches(), 2 + w.config().distractor_patches);
        assert_eq!(img.patch_dim(), w.config().patch_dim);
    }

    #[test]
    fn caption_format() {
        assert_eq!(
            World::caption("albatross", &["white crown", "long wings"]),
            "a photo of albatross with white crown and long wings"
        );
        assert_eq!(World::caption("albatross", &[]), "a photo of albatross");
    }

    #[test]
    fn unknown_phrase_renders_noise_only() {
        let (w, mut rng) = world(2);
        let p = w.render_patch("never registered", &mut rng);
        // Projection of a zero blend is zero; only noise remains.
        let energy: f32 = p.iter().map(|x| x * x).sum::<f32>() / p.len() as f32;
        assert!(energy < 4.0 * w.config().patch_noise * w.config().patch_noise + 0.1);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_image_panics() {
        let (w, mut rng) = world(3);
        let _ = w.render_image(&[], &mut rng);
    }
}
