//! Dataset generators shaped like the paper's three benchmark families.
//!
//! | knob | CUB-like | SUN-like | FBxK-IMG-like |
//! |---|---|---|---|
//! | attribute pool | 52 groups × 6 = 312 | 34 × 3 = 102 | 40 × 5 (entity traits) |
//! | signature size | 16 | 3 | 5 |
//! | name reveals | 2 values | 0 values | 3 values |
//! | graph shape | class→value star | class→value star | entity↔entity KG |
//! | images/class (full) | 59 | 23 | 10 |
//!
//! "Name reveals" controls zero-shot difficulty (how much a bare label tells
//! CLIP); signature size controls how much structure-aware prompts can add;
//! the KG shape of FB makes neighbour text noisier, which is why hard
//! prompts beat soft prompts there in the paper.

use cem_graph::{Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::{DatasetStats, EmDataset};
use crate::schema::{generate_classes, AttributePool, ClassSpec};
use crate::world::{World, WorldConfig};

/// Which benchmark family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    Cub,
    Sun,
    Fb2k,
    Fb6k,
    Fb10k,
}

impl DatasetKind {
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Cub => "CUB",
            DatasetKind::Sun => "SUN",
            DatasetKind::Fb2k => "FB2K-IMG",
            DatasetKind::Fb6k => "FB6K-IMG",
            DatasetKind::Fb10k => "FB10K-IMG",
        }
    }

    /// The statistics the paper's Table I reports for this dataset.
    pub fn paper_stats(&self) -> DatasetStats {
        match self {
            DatasetKind::Cub => DatasetStats { vertices: 512, edges: 3_245, tuples: Some(312), images: 11_788 },
            DatasetKind::Sun => DatasetStats { vertices: 819, edges: 2_130, tuples: Some(717), images: 16_594 },
            DatasetKind::Fb2k => DatasetStats { vertices: 2_667, edges: 8_382, tuples: None, images: 20_455 },
            DatasetKind::Fb6k => DatasetStats { vertices: 6_342, edges: 30_884, tuples: None, images: 44_813 },
            DatasetKind::Fb10k => DatasetStats { vertices: 10_856, edges: 78_747, tuples: None, images: 69_629 },
        }
    }

    /// Full-size class count (CUB has 200 bird species, SUN 717 scene
    /// classes, FBxK that many entities).
    pub fn full_classes(&self) -> usize {
        match self {
            DatasetKind::Cub => 200,
            DatasetKind::Sun => 717,
            DatasetKind::Fb2k => 2_000,
            DatasetKind::Fb6k => 6_000,
            DatasetKind::Fb10k => 10_000,
        }
    }

    fn full_images_per_class(&self) -> usize {
        match self {
            DatasetKind::Cub => 59,
            DatasetKind::Sun => 23,
            _ => 10,
        }
    }
}

/// How much of the full-size dataset to materialise. Training the miniature
/// CLIP is CPU-bound, so experiment harnesses default to a reduced scale and
/// record the scale factor in their output (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct DatasetScale {
    pub classes: usize,
    pub images_per_class: usize,
}

impl DatasetScale {
    /// Tiny — unit tests.
    pub fn smoke() -> Self {
        DatasetScale { classes: 6, images_per_class: 2 }
    }

    /// Default for experiment harnesses.
    pub fn bench() -> Self {
        DatasetScale { classes: 40, images_per_class: 4 }
    }

    /// Full paper-size counts for `kind` (statistics harness; heavy for
    /// training).
    pub fn paper(kind: DatasetKind) -> Self {
        DatasetScale {
            classes: kind.full_classes(),
            images_per_class: kind.full_images_per_class(),
        }
    }

    pub fn clamped(&self, kind: DatasetKind) -> DatasetScale {
        DatasetScale {
            classes: self.classes.min(kind.full_classes()),
            images_per_class: self.images_per_class,
        }
    }
}

/// Per-family generation profile.
struct Profile {
    pool_groups: usize,
    pool_values: usize,
    attrs_per_class: usize,
    name_reveals: usize,
    /// Patches depicting signature values per image.
    value_patches: usize,
    /// Whether the image also shows the class's revealed name words (strong
    /// name→image signal; high for FB).
    name_patches: usize,
    /// KG-shaped graph (entity↔entity edges) instead of class→value stars.
    knowledge_graph: bool,
    /// Extra random KG edges per entity (noise).
    random_edges: usize,
}

fn profile(kind: DatasetKind) -> Profile {
    match kind {
        DatasetKind::Cub => Profile {
            pool_groups: 52,
            pool_values: 6,
            attrs_per_class: 16,
            name_reveals: 3,
            value_patches: 3,
            name_patches: 3,
            knowledge_graph: false,
            random_edges: 0,
        },
        DatasetKind::Sun => Profile {
            pool_groups: 34,
            pool_values: 3,
            attrs_per_class: 3,
            name_reveals: 0,
            value_patches: 3,
            name_patches: 0,
            knowledge_graph: false,
            random_edges: 0,
        },
        DatasetKind::Fb2k | DatasetKind::Fb6k | DatasetKind::Fb10k => Profile {
            pool_groups: 40,
            pool_values: 5,
            attrs_per_class: 5,
            name_reveals: 3,
            value_patches: 1,
            name_patches: 3,
            knowledge_graph: true,
            random_edges: 0,
        },
    }
}

/// Generate a dataset of the given family at the given scale. Returns the
/// world (needed to render more images or captions from the same concept
/// space) and the dataset.
pub fn generate<R: Rng>(kind: DatasetKind, scale: DatasetScale, rng: &mut R) -> (World, EmDataset) {
    let scale = scale.clamped(kind);
    let p = profile(kind);
    let pool = AttributePool::synthesize(p.pool_groups, p.pool_values);
    let classes = generate_classes(&pool, scale.classes, p.attrs_per_class, p.name_reveals, rng);

    let mut world = World::new(WorldConfig::default(), rng);
    // Register the full attribute vocabulary and all class names so the
    // concept space is stable regardless of which classes an image uses.
    for g in 0..pool.group_count() {
        let (gname, values) = pool.group(g);
        world.register_text(gname, rng);
        for v in values {
            world.register_text(v, rng);
        }
    }
    for c in &classes {
        world.register_text(&c.name, rng);
    }

    let (graph, entities) = if p.knowledge_graph {
        build_knowledge_graph(&classes, p.random_edges, rng)
    } else {
        build_star_graph(&classes)
    };

    // Render images: each image shows a sample of the class's signature
    // values plus (for name-driven datasets) its revealed name words.
    let mut images = Vec::with_capacity(scale.classes * scale.images_per_class);
    let mut image_gold = Vec::with_capacity(images.capacity());
    for (ci, class) in classes.iter().enumerate() {
        let values = class.signature_values();
        for _ in 0..scale.images_per_class {
            let mut phrases: Vec<&str> = Vec::new();
            // The values the class name reveals are always depicted — an
            // image of a "white crowned" bird reliably shows its white
            // crown. This is what gives bare-name zero-shot prompting its
            // paper-level signal on name-informative datasets.
            for w in class.revealed_values().iter().take(p.name_patches.max(class.name_reveals)) {
                phrases.push(w);
            }
            // Plus a random sample of the remaining signature values.
            let hidden: Vec<&str> =
                values.iter().skip(class.name_reveals).copied().collect();
            let mut idx: Vec<usize> = (0..hidden.len()).collect();
            idx.shuffle(rng);
            for &i in idx.iter().take(p.value_patches) {
                phrases.push(hidden[i]);
            }
            if phrases.is_empty() {
                phrases.push(values[0]);
            }
            images.push(world.render_image(&phrases, rng));
            image_gold.push(ci);
        }
    }

    let dataset = EmDataset {
        name: kind.label().to_string(),
        graph,
        entities,
        classes,
        images,
        image_gold,
        pool,
    };
    dataset.validate();
    (world, dataset)
}

/// CUB/SUN shape: every class vertex points at shared value vertices with
/// `has <group>` edges (the Figure 1(b) structure).
fn build_star_graph(classes: &[ClassSpec]) -> (Graph, Vec<VertexId>) {
    let mut graph = Graph::new();
    let mut value_vertex: std::collections::HashMap<String, VertexId> =
        std::collections::HashMap::new();
    let mut entities = Vec::with_capacity(classes.len());
    for class in classes {
        let v = graph.add_vertex(class.name.clone());
        entities.push(v);
        for (group, value) in &class.signature {
            let vv = *value_vertex
                .entry(value.clone())
                .or_insert_with(|| graph.add_vertex(value.clone()));
            graph.add_edge(v, vv, format!("has {group}"));
        }
    }
    (graph, entities)
}

/// FB shape: entities connect to other entities. An edge is added between
/// classes that share a signature value (labelled by the shared group), plus
/// `random_edges` uniformly random `related to` edges as relational noise.
fn build_knowledge_graph<R: Rng>(
    classes: &[ClassSpec],
    random_edges: usize,
    rng: &mut R,
) -> (Graph, Vec<VertexId>) {
    let mut graph = Graph::new();
    let entities: Vec<VertexId> =
        classes.iter().map(|c| graph.add_vertex(c.name.clone())).collect();

    // Index classes by signature value for shared-trait linking.
    let mut by_value: std::collections::HashMap<&str, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, c) in classes.iter().enumerate() {
        for (_, v) in &c.signature {
            by_value.entry(v.as_str()).or_default().push(i);
        }
    }
    // One shared-trait edge per (class, trait) to its next sharer — keeps
    // degree bounded (~signature size) like FB15K-237's sparsity.
    for (value, members) in &by_value {
        if members.len() < 2 {
            continue;
        }
        for w in members.windows(2) {
            let group = classes[w[0]]
                .signature
                .iter()
                .find(|(_, v)| v == value)
                .map(|(g, _)| g.clone())
                .unwrap_or_else(|| "related".to_string());
            graph.add_edge(entities[w[0]], entities[w[1]], format!("shares {group}"));
        }
    }
    for (i, _) in classes.iter().enumerate() {
        for _ in 0..random_edges {
            let j = rng.gen_range(0..classes.len());
            if j != i {
                graph.add_edge(entities[i], entities[j], "related to".to_string());
            }
        }
    }
    (graph, entities)
}

/// Convenience: generate one of the FB scalability steps.
pub fn fbimg<R: Rng>(step: DatasetKind, scale: DatasetScale, rng: &mut R) -> (World, EmDataset) {
    assert!(
        matches!(step, DatasetKind::Fb2k | DatasetKind::Fb6k | DatasetKind::Fb10k),
        "fbimg() expects an FB dataset kind"
    );
    generate(step, scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cub_generation_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let (_, d) = generate(DatasetKind::Cub, DatasetScale::smoke(), &mut rng);
        assert_eq!(d.entity_count(), 6);
        assert_eq!(d.image_count(), 12);
        // Star graph: entities + value vertices; each entity has 16 edges.
        assert_eq!(d.graph.edge_count(), 6 * 16);
        assert!(d.graph.vertex_count() > d.entity_count());
        d.validate();
    }

    #[test]
    fn sun_names_reveal_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, d) = generate(DatasetKind::Sun, DatasetScale::smoke(), &mut rng);
        for c in &d.classes {
            assert_eq!(c.name_reveals, 0);
            assert_eq!(c.signature.len(), 3);
        }
    }

    #[test]
    fn fb_is_entity_to_entity() {
        let mut rng = StdRng::seed_from_u64(2);
        let (_, d) = generate(DatasetKind::Fb2k, DatasetScale::smoke(), &mut rng);
        // No value vertices: every vertex is an entity.
        assert_eq!(d.graph.vertex_count(), d.entity_count());
        assert!(d.graph.edge_count() > 0);
    }

    #[test]
    fn gold_images_are_per_class() {
        let mut rng = StdRng::seed_from_u64(3);
        let (_, d) = generate(DatasetKind::Cub, DatasetScale::smoke(), &mut rng);
        for e in 0..d.entity_count() {
            assert_eq!(d.gold_images_of(e).len(), 2);
        }
    }

    #[test]
    fn images_of_same_class_share_structure() {
        // Two images of one class should be closer (mean-patch cosine) than
        // images of different classes, on average — the learnability
        // precondition for the whole pipeline.
        let mut rng = StdRng::seed_from_u64(4);
        let (_, d) = generate(DatasetKind::Cub, DatasetScale::smoke(), &mut rng);
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        let mut same = 0.0f32;
        let mut diff = 0.0f32;
        let mut same_n = 0;
        let mut diff_n = 0;
        for i in 0..d.image_count() {
            for j in (i + 1)..d.image_count() {
                let c = cos(&d.images[i].mean_patch(), &d.images[j].mean_patch());
                if d.image_gold[i] == d.image_gold[j] {
                    same += c;
                    same_n += 1;
                } else {
                    diff += c;
                    diff_n += 1;
                }
            }
        }
        assert!(same / same_n as f32 > diff / diff_n as f32);
    }

    #[test]
    fn scale_is_clamped_to_full_size() {
        let huge = DatasetScale { classes: 10_000, images_per_class: 1 };
        assert_eq!(huge.clamped(DatasetKind::Cub).classes, 200);
    }

    #[test]
    fn paper_stats_match_table_one() {
        let s = DatasetKind::Cub.paper_stats();
        assert_eq!(s.vertices, 512);
        assert_eq!(s.edges, 3245);
        assert_eq!(s.tuples, Some(312));
        assert_eq!(s.images, 11788);
        assert_eq!(DatasetKind::Fb10k.paper_stats().images, 69_629);
    }

    #[test]
    fn deterministic_generation() {
        let (_, a) = generate(DatasetKind::Sun, DatasetScale::smoke(), &mut StdRng::seed_from_u64(9));
        let (_, b) = generate(DatasetKind::Sun, DatasetScale::smoke(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.entity_label(0), b.entity_label(0));
        assert_eq!(a.images[0].patch(0), b.images[0].patch(0));
    }

    #[test]
    #[should_panic(expected = "FB dataset kind")]
    fn fbimg_rejects_non_fb() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = fbimg(DatasetKind::Cub, DatasetScale::smoke(), &mut rng);
    }
}
