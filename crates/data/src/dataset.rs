//! The cross-modal EM dataset container: a graph, an image repository, and
//! the gold matching pairs used for evaluation only (training is
//! unsupervised).

use cem_clip::Image;
use cem_graph::{Graph, VertexId};

use crate::schema::{AttributePool, ClassSpec};

/// Table I-style statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    pub vertices: usize,
    pub edges: usize,
    /// Number of distinct attributes (CUB/SUN); `None` for the KG-shaped
    /// FB datasets, mirroring the `-` cells of Table I.
    pub tuples: Option<usize>,
    pub images: usize,
}

/// A generated cross-modal entity-matching benchmark.
pub struct EmDataset {
    pub name: String,
    /// The canonical graph `G = (V, E, L)`.
    pub graph: Graph,
    /// The source entities to be matched (a subset of graph vertices).
    pub entities: Vec<VertexId>,
    /// Class specs parallel to `entities`.
    pub classes: Vec<ClassSpec>,
    /// The image repository `I`.
    pub images: Vec<Image>,
    /// Gold entity index (into `entities`) for every image.
    pub image_gold: Vec<usize>,
    /// The attribute schema the classes were drawn from.
    pub pool: AttributePool,
}

impl EmDataset {
    /// Dataset statistics for the Table I harness.
    pub fn stats(&self) -> DatasetStats {
        // KG-shaped datasets (all vertices are entities) report no
        // attribute count, mirroring the `-` cells of Table I.
        let is_kg = self.graph.vertex_count() == self.entities.len();
        DatasetStats {
            vertices: self.graph.vertex_count(),
            edges: self.graph.edge_count(),
            tuples: if is_kg { None } else { Some(self.pool.attribute_count()) },
            images: self.images.len(),
        }
    }

    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Number of candidate vertex–image pairs (`|V|·|I|`, the quantity the
    /// paper's scalability experiment scales by).
    pub fn candidate_pair_count(&self) -> usize {
        self.entities.len() * self.images.len()
    }

    /// The label of entity `i`.
    pub fn entity_label(&self, i: usize) -> &str {
        self.graph.vertex_label(self.entities[i])
    }

    /// Gold image indices of entity `i`.
    pub fn gold_images_of(&self, entity: usize) -> Vec<usize> {
        self.image_gold
            .iter()
            .enumerate()
            .filter(|(_, &g)| g == entity)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `(entity, image)` is a gold matching pair.
    pub fn is_match(&self, entity: usize, image: usize) -> bool {
        self.image_gold[image] == entity
    }

    /// Sanity-check internal consistency; called by generators and tests.
    pub fn validate(&self) {
        assert_eq!(self.entities.len(), self.classes.len(), "entities/classes length mismatch");
        assert_eq!(self.images.len(), self.image_gold.len(), "images/gold length mismatch");
        for &g in &self.image_gold {
            assert!(g < self.entities.len(), "gold index {g} out of range");
        }
        for &v in &self.entities {
            assert!(v.0 < self.graph.vertex_count(), "entity vertex {v:?} not in graph");
        }
        assert!(
            self.entities.iter().all(|v| !self.graph.vertex_label(*v).is_empty()),
            "entities must be labelled"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EmDataset {
        let mut graph = Graph::new();
        let a = graph.add_vertex("a bird");
        let b = graph.add_vertex("b bird");
        let white = graph.add_vertex("white");
        graph.add_edge(a, white, "has color");
        graph.add_edge(b, white, "has color");
        let img = Image::from_patches(vec![vec![0.0; 4]]);
        EmDataset {
            name: "tiny".into(),
            graph,
            entities: vec![a, b],
            classes: vec![
                ClassSpec { name: "a bird".into(), signature: vec![], name_reveals: 0 },
                ClassSpec { name: "b bird".into(), signature: vec![], name_reveals: 0 },
            ],
            images: vec![img.clone(), img.clone(), img],
            image_gold: vec![0, 1, 0],
            pool: AttributePool::synthesize(2, 2),
        }
    }

    #[test]
    fn stats_counts() {
        let d = tiny();
        let s = d.stats();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.images, 3);
        assert_eq!(d.candidate_pair_count(), 6);
    }

    #[test]
    fn gold_lookup() {
        let d = tiny();
        assert_eq!(d.gold_images_of(0), vec![0, 2]);
        assert_eq!(d.gold_images_of(1), vec![1]);
        assert!(d.is_match(0, 2));
        assert!(!d.is_match(1, 2));
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        tiny().validate();
    }

    #[test]
    #[should_panic(expected = "gold index")]
    fn validate_rejects_bad_gold() {
        let mut d = tiny();
        d.image_gold[0] = 99;
        d.validate();
    }
}
