//! The cross-modal EM dataset container: a graph, an image repository, and
//! the gold matching pairs used for evaluation only (training is
//! unsupervised).

use std::fmt;

use cem_clip::Image;
use cem_graph::{Graph, VertexId};

use crate::schema::{AttributePool, ClassSpec};

/// A consistency violation found while validating an [`EmDataset`].
/// Datasets arriving from external sources (generators, files, mappings)
/// should be checked with [`EmDataset::try_validate`] so malformed input
/// surfaces as a typed, context-carrying error instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// `entities` and `classes` must be parallel arrays.
    ClassCountMismatch { entities: usize, classes: usize },
    /// `images` and `image_gold` must be parallel arrays.
    GoldCountMismatch { images: usize, gold: usize },
    /// A gold label points at a nonexistent entity.
    GoldOutOfRange { image: usize, gold: usize, entities: usize },
    /// An entity references a vertex outside the graph.
    EntityNotInGraph { entity: usize, vertex: usize, vertices: usize },
    /// An entity vertex carries no label (prompts would be empty).
    UnlabelledEntity { entity: usize, vertex: usize },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ClassCountMismatch { entities, classes } => write!(
                f,
                "entities/classes length mismatch: {entities} entities vs {classes} classes"
            ),
            DatasetError::GoldCountMismatch { images, gold } => {
                write!(f, "images/gold length mismatch: {images} images vs {gold} gold labels")
            }
            DatasetError::GoldOutOfRange { image, gold, entities } => write!(
                f,
                "gold index {gold} for image {image} out of range ({entities} entities)"
            ),
            DatasetError::EntityNotInGraph { entity, vertex, vertices } => write!(
                f,
                "entity {entity} vertex {vertex} not in graph ({vertices} vertices)"
            ),
            DatasetError::UnlabelledEntity { entity, vertex } => {
                write!(f, "entities must be labelled: entity {entity} (vertex {vertex}) has an empty label")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// Table I-style statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    pub vertices: usize,
    pub edges: usize,
    /// Number of distinct attributes (CUB/SUN); `None` for the KG-shaped
    /// FB datasets, mirroring the `-` cells of Table I.
    pub tuples: Option<usize>,
    pub images: usize,
}

/// A generated cross-modal entity-matching benchmark.
pub struct EmDataset {
    pub name: String,
    /// The canonical graph `G = (V, E, L)`.
    pub graph: Graph,
    /// The source entities to be matched (a subset of graph vertices).
    pub entities: Vec<VertexId>,
    /// Class specs parallel to `entities`.
    pub classes: Vec<ClassSpec>,
    /// The image repository `I`.
    pub images: Vec<Image>,
    /// Gold entity index (into `entities`) for every image.
    pub image_gold: Vec<usize>,
    /// The attribute schema the classes were drawn from.
    pub pool: AttributePool,
}

impl EmDataset {
    /// Dataset statistics for the Table I harness.
    pub fn stats(&self) -> DatasetStats {
        // KG-shaped datasets (all vertices are entities) report no
        // attribute count, mirroring the `-` cells of Table I.
        let is_kg = self.graph.vertex_count() == self.entities.len();
        DatasetStats {
            vertices: self.graph.vertex_count(),
            edges: self.graph.edge_count(),
            tuples: if is_kg { None } else { Some(self.pool.attribute_count()) },
            images: self.images.len(),
        }
    }

    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Number of candidate vertex–image pairs (`|V|·|I|`, the quantity the
    /// paper's scalability experiment scales by).
    pub fn candidate_pair_count(&self) -> usize {
        self.entities.len() * self.images.len()
    }

    /// The label of entity `i`.
    pub fn entity_label(&self, i: usize) -> &str {
        self.graph.vertex_label(self.entities[i])
    }

    /// Gold image indices of entity `i`.
    pub fn gold_images_of(&self, entity: usize) -> Vec<usize> {
        self.image_gold
            .iter()
            .enumerate()
            .filter(|(_, &g)| g == entity)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `(entity, image)` is a gold matching pair.
    pub fn is_match(&self, entity: usize, image: usize) -> bool {
        self.image_gold[image] == entity
    }

    /// Check internal consistency, returning the first violation found.
    /// Use this on datasets built from external input (files, mappings);
    /// [`EmDataset::validate`] is the panicking variant for generator and
    /// test code where an inconsistency is a programming bug.
    pub fn try_validate(&self) -> Result<(), DatasetError> {
        if self.entities.len() != self.classes.len() {
            return Err(DatasetError::ClassCountMismatch {
                entities: self.entities.len(),
                classes: self.classes.len(),
            });
        }
        if self.images.len() != self.image_gold.len() {
            return Err(DatasetError::GoldCountMismatch {
                images: self.images.len(),
                gold: self.image_gold.len(),
            });
        }
        for (image, &g) in self.image_gold.iter().enumerate() {
            if g >= self.entities.len() {
                return Err(DatasetError::GoldOutOfRange {
                    image,
                    gold: g,
                    entities: self.entities.len(),
                });
            }
        }
        for (entity, &v) in self.entities.iter().enumerate() {
            if v.0 >= self.graph.vertex_count() {
                return Err(DatasetError::EntityNotInGraph {
                    entity,
                    vertex: v.0,
                    vertices: self.graph.vertex_count(),
                });
            }
            if self.graph.vertex_label(v).is_empty() {
                return Err(DatasetError::UnlabelledEntity { entity, vertex: v.0 });
            }
        }
        Ok(())
    }

    /// Sanity-check internal consistency; called by generators and tests.
    /// Panics with the violation's message; external load paths should use
    /// [`EmDataset::try_validate`] instead.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EmDataset {
        let mut graph = Graph::new();
        let a = graph.add_vertex("a bird");
        let b = graph.add_vertex("b bird");
        let white = graph.add_vertex("white");
        graph.add_edge(a, white, "has color");
        graph.add_edge(b, white, "has color");
        let img = Image::from_patches(vec![vec![0.0; 4]]);
        EmDataset {
            name: "tiny".into(),
            graph,
            entities: vec![a, b],
            classes: vec![
                ClassSpec { name: "a bird".into(), signature: vec![], name_reveals: 0 },
                ClassSpec { name: "b bird".into(), signature: vec![], name_reveals: 0 },
            ],
            images: vec![img.clone(), img.clone(), img],
            image_gold: vec![0, 1, 0],
            pool: AttributePool::synthesize(2, 2),
        }
    }

    #[test]
    fn stats_counts() {
        let d = tiny();
        let s = d.stats();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.images, 3);
        assert_eq!(d.candidate_pair_count(), 6);
    }

    #[test]
    fn gold_lookup() {
        let d = tiny();
        assert_eq!(d.gold_images_of(0), vec![0, 2]);
        assert_eq!(d.gold_images_of(1), vec![1]);
        assert!(d.is_match(0, 2));
        assert!(!d.is_match(1, 2));
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        tiny().validate();
    }

    #[test]
    #[should_panic(expected = "gold index")]
    fn validate_rejects_bad_gold() {
        let mut d = tiny();
        d.image_gold[0] = 99;
        d.validate();
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        let mut d = tiny();
        d.image_gold[1] = 7;
        assert_eq!(
            d.try_validate(),
            Err(DatasetError::GoldOutOfRange { image: 1, gold: 7, entities: 2 })
        );

        let mut d = tiny();
        d.classes.pop();
        assert_eq!(
            d.try_validate(),
            Err(DatasetError::ClassCountMismatch { entities: 2, classes: 1 })
        );

        let mut d = tiny();
        d.image_gold.pop();
        assert_eq!(d.try_validate(), Err(DatasetError::GoldCountMismatch { images: 3, gold: 2 }));

        let mut d = tiny();
        d.entities.push(cem_graph::VertexId(42));
        d.classes.push(ClassSpec { name: "ghost".into(), signature: vec![], name_reveals: 0 });
        assert_eq!(
            d.try_validate(),
            Err(DatasetError::EntityNotInGraph { entity: 2, vertex: 42, vertices: 3 })
        );

        assert_eq!(tiny().try_validate(), Ok(()));
    }
}
