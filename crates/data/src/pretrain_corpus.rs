//! Generic caption↔image corpus for CLIP pre-training.
//!
//! Captions mention attribute value words and generic nouns drawn from the
//! same concept space the datasets use — but never the datasets' opaque
//! class tags. This mirrors real CLIP pre-training: the model has seen
//! "white", "albatross", "long wings" in countless captions, but not the
//! specific entity ids of a downstream knowledge graph.

use cem_clip::Image;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::schema::AttributePool;
use crate::world::World;

/// A caption/image pre-training pair (caption still as text; the bundle
/// tokenises after the tokenizer is built).
#[derive(Debug, Clone)]
pub struct CaptionPair {
    pub caption: String,
    pub image: Image,
}

const CAPTION_NOUNS: &[&str] = &[
    "bird", "scene", "animal", "place", "creature", "landscape", "building", "object",
];

/// Generate `n_pairs` caption↔image pairs over the pool's vocabulary.
/// Every pair depicts 2–4 attribute values plus a generic noun; the image
/// renders exactly the mentioned phrases (plus world distractors).
pub fn generate_corpus<R: Rng>(
    world: &mut World,
    pool: &AttributePool,
    n_pairs: usize,
    rng: &mut R,
) -> Vec<CaptionPair> {
    for noun in CAPTION_NOUNS {
        world.register_text(noun, rng);
    }
    // Also make sure the prompt-template words exist as concepts/tokens.
    world.register_text("a photo of with and", rng);

    let mut group_indices: Vec<usize> = (0..pool.group_count()).collect();
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        group_indices.shuffle(rng);
        // Mention 2–6 attributes so the image encoder sees the same patch
        // counts the datasets later produce (CUB renders up to 7 patches).
        let k = rng.gen_range(2..=6usize.min(pool.group_count()));
        let mut phrases: Vec<String> = Vec::with_capacity(k);
        for &g in group_indices.iter().take(k) {
            let (_, values) = pool.group(g);
            phrases.push(values[rng.gen_range(0..values.len())].clone());
        }
        let noun = CAPTION_NOUNS[rng.gen_range(0..CAPTION_NOUNS.len())];
        let phrase_refs: Vec<&str> = phrases.iter().map(String::as_str).collect();
        // Two caption syntaxes alternate so the encoder learns both the
        // "noun with attributes" and the "attributes noun" word orders —
        // the latter is the shape of descriptive entity names.
        let caption = if rng.gen_bool(0.5) {
            World::caption(noun, &phrase_refs)
        } else {
            format!("a photo of {} {noun}", phrase_refs.join(" "))
        };
        // The noun is depicted too, so name words carry visual signal.
        let mut render: Vec<&str> = phrase_refs.clone();
        render.push(noun);
        let image = world.render_image(&render, rng);
        pairs.push(CaptionPair { caption, image });
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corpus_has_requested_size_and_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut world = World::new(WorldConfig::default(), &mut rng);
        let pool = AttributePool::synthesize(10, 3);
        for g in 0..pool.group_count() {
            let (gname, values) = pool.group(g);
            world.register_text(gname, &mut rng);
            for v in values {
                world.register_text(v, &mut rng);
            }
        }
        let corpus = generate_corpus(&mut world, &pool, 20, &mut rng);
        assert_eq!(corpus.len(), 20);
        for pair in &corpus {
            assert!(pair.caption.starts_with("a photo of "));
            assert!(pair.image.n_patches() >= 3); // ≥2 values + noun
        }
    }

    #[test]
    fn captions_use_pool_vocabulary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut world = World::new(WorldConfig::default(), &mut rng);
        let pool = AttributePool::synthesize(6, 2);
        for g in 0..pool.group_count() {
            let (gname, values) = pool.group(g);
            world.register_text(gname, &mut rng);
            for v in values {
                world.register_text(v, &mut rng);
            }
        }
        let vocab = pool.vocabulary();
        let corpus = generate_corpus(&mut world, &pool, 10, &mut rng);
        for pair in &corpus {
            // Both caption styles start with the template prefix; pool words
            // appear in the remainder.
            let tail = pair.caption.strip_prefix("a photo of ").unwrap_or(&pair.caption);
            let mut known = 0;
            for w in cem_clip::tokenizer::split_words(tail) {
                if w != "and" && w != "with" && vocab.contains(&w) {
                    known += 1;
                }
            }
            assert!(known >= 2, "caption mentions too few pool words: {}", pair.caption);
        }
    }
}
