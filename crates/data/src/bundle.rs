//! One-call experiment setup: dataset + tokenizer + pre-trained CLIP.
//!
//! Every harness and example starts from a [`DatasetBundle`]: it generates
//! the synthetic benchmark, builds a tokenizer covering the caption corpus
//! *and* all graph labels, and contrastively pre-trains the miniature CLIP
//! on generic caption↔image pairs — producing the "pre-trained MMLM" that
//! CrossEM prompt-tunes.

use cem_clip::pretrain::{pretrain, PretrainConfig, PretrainReport};
use cem_clip::{Clip, ClipConfig, Tokenizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::EmDataset;
use crate::generators::{generate, DatasetKind, DatasetScale};
use crate::pretrain_corpus::generate_corpus;
use crate::world::World;

/// Bundle construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct BundleConfig {
    pub kind: DatasetKind,
    pub scale: DatasetScale,
    /// Number of caption↔image pre-training pairs.
    pub pretrain_pairs: usize,
    pub pretrain: PretrainConfig,
    pub seed: u64,
}

impl BundleConfig {
    /// Benchmark-harness defaults.
    pub fn bench(kind: DatasetKind) -> Self {
        BundleConfig {
            kind,
            scale: DatasetScale::bench(),
            pretrain_pairs: 2500,
            pretrain: PretrainConfig { epochs: 12, batch_size: 64, lr: 1e-3, clip_norm: 5.0 },
            seed: 17,
        }
    }

    /// Very small settings for unit/integration tests.
    pub fn smoke(kind: DatasetKind) -> Self {
        BundleConfig {
            kind,
            scale: DatasetScale::smoke(),
            pretrain_pairs: 60,
            pretrain: PretrainConfig { epochs: 3, batch_size: 16, lr: 1e-3, clip_norm: 5.0 },
            seed: 17,
        }
    }
}

/// Everything an experiment needs.
pub struct DatasetBundle {
    pub world: World,
    pub dataset: EmDataset,
    pub tokenizer: Tokenizer,
    pub clip: Clip,
    pub pretrain_report: PretrainReport,
    pub config: BundleConfig,
}

impl DatasetBundle {
    /// Generate data, build the tokenizer, and pre-train CLIP.
    pub fn prepare(config: BundleConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (mut world, dataset) = generate(config.kind, config.scale, &mut rng);
        let corpus = generate_corpus(&mut world, &dataset.pool, config.pretrain_pairs, &mut rng);

        // Tokenizer must cover caption text plus every label in the graph,
        // so prompts built from graph structure are tokenizable (even if
        // some words — the opaque class tags — were never pre-trained on).
        let mut texts: Vec<String> = Vec::new();
        texts.push("a photo of with and in has".to_string());
        for pair in &corpus {
            texts.push(pair.caption.clone());
        }
        for v in dataset.graph.vertices() {
            texts.push(dataset.graph.vertex_label(v).to_string());
        }
        for e in 0..dataset.graph.edge_count() {
            texts.push(dataset.graph.edge_label(cem_graph::EdgeId(e)).to_string());
        }
        let tokenizer = Tokenizer::build(texts.iter().map(String::as_str));

        let clip_config =
            ClipConfig::small(tokenizer.vocab_size(), world.config().patch_dim);
        let clip = Clip::new(clip_config, &mut rng);

        let pairs: Vec<(Vec<usize>, cem_clip::Image)> = corpus
            .into_iter()
            .map(|p| (tokenizer.encode(&p.caption, clip_config.max_len).0, p.image))
            .collect();
        let pretrain_report = pretrain(&clip, &pairs, &config.pretrain, &mut rng);

        DatasetBundle { world, dataset, tokenizer, clip, pretrain_report, config }
    }

    /// A deterministic RNG derived from the bundle seed, for downstream
    /// training stages (offset avoids overlapping the preparation stream).
    pub fn stage_rng(&self, stage: u64) -> StdRng {
        StdRng::seed_from_u64(self.config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bundle_is_consistent() {
        let bundle = DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub));
        bundle.dataset.validate();
        // Tokenizer covers every entity label fully.
        for i in 0..bundle.dataset.entity_count() {
            let cov = bundle.tokenizer.coverage(bundle.dataset.entity_label(i));
            assert!((cov - 1.0).abs() < 1e-6, "label not fully tokenizable");
        }
        // Pre-training ran and produced finite losses.
        assert!(bundle.pretrain_report.final_loss().expect("pre-training ran").is_finite());
        assert!(bundle.pretrain_report.steps > 0);
    }

    #[test]
    fn pretraining_learns_the_world() {
        let bundle = DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Cub));
        let losses = &bundle.pretrain_report.epoch_losses;
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "pre-training loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn stage_rngs_differ_by_stage() {
        use rand::Rng;
        let bundle = DatasetBundle::prepare(BundleConfig::smoke(DatasetKind::Sun));
        let a: u64 = bundle.stage_rng(1).gen();
        let b: u64 = bundle.stage_rng(2).gen();
        assert_ne!(a, b);
    }
}
