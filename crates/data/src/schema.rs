//! Attribute schemas and class specifications for the synthetic datasets.

use rand::seq::SliceRandom;
use rand::Rng;

/// Realistic-ish vocabulary pools the generators draw from.
const GROUP_BASES: &[&str] = &[
    "crown color",
    "wing shape",
    "belly color",
    "under tail color",
    "eye color",
    "bill shape",
    "breast pattern",
    "back texture",
    "leg length",
    "tail pattern",
    "throat color",
    "head pattern",
    "surface material",
    "lighting",
    "openness",
    "depth",
    "foliage",
    "terrain",
];

const VALUE_BASES: &[&str] = &[
    "white", "black", "grey", "red", "blue", "brown", "yellow", "green", "olive", "buff",
    "long", "short", "curved", "hooked", "pointed", "rounded", "spotted", "striped", "plain",
    "glossy", "matte", "rough", "smooth", "bright", "dark", "open", "enclosed", "natural",
    "manmade", "rugged",
];

const NOUN_BASES: &[&str] = &[
    "albatross", "woodpecker", "sparrow", "warbler", "gull", "falcon", "heron", "finch",
    "canyon", "harbor", "meadow", "forest", "plaza", "station", "valley", "ridge", "temple",
    "market", "stadium", "library", "bridge", "castle", "garden", "island", "tower", "museum",
];

/// A pool of attribute groups, each with a set of values. Group/value names
/// are synthesised from the base pools with numeric disambiguators so a pool
/// can be arbitrarily large (CUB needs 312 attributes) while staying
/// readable ("crown color 3", "white 7").
#[derive(Debug, Clone)]
pub struct AttributePool {
    /// (group name, value names) — a "attribute" in CUB terms is one
    /// (group, value) combination.
    groups: Vec<(String, Vec<String>)>,
}

impl AttributePool {
    /// Build a pool with `n_groups` groups of `values_per_group` values.
    pub fn synthesize(n_groups: usize, values_per_group: usize) -> Self {
        let mut groups = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let base = GROUP_BASES[g % GROUP_BASES.len()];
            let name = if g < GROUP_BASES.len() {
                base.to_string()
            } else {
                format!("{base} {}", g / GROUP_BASES.len())
            };
            // Value labels are qualified by the group's head word ("white
            // crown", "long wing") so each (group, value) attribute gets its
            // own vertex after label interning — matching CUB's 312 distinct
            // attribute vertices — while staying readable.
            let head = base.split_whitespace().next().unwrap();
            let mut values = Vec::with_capacity(values_per_group);
            for v in 0..values_per_group {
                let vb = VALUE_BASES[(g * 7 + v) % VALUE_BASES.len()];
                let vname = if g < GROUP_BASES.len() {
                    format!("{vb} {head}")
                } else {
                    format!("{vb} {head} {}", g / GROUP_BASES.len())
                };
                values.push(vname);
            }
            groups.push((name, values));
        }
        AttributePool { groups }
    }

    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of (group, value) attributes.
    pub fn attribute_count(&self) -> usize {
        self.groups.iter().map(|(_, v)| v.len()).sum()
    }

    pub fn group(&self, i: usize) -> (&str, &[String]) {
        let (name, values) = &self.groups[i];
        (name, values)
    }

    /// All distinct words appearing in group and value names.
    pub fn vocabulary(&self) -> Vec<String> {
        let mut words: Vec<String> = Vec::new();
        for (g, values) in &self.groups {
            words.extend(g.split_whitespace().map(str::to_string));
            for v in values {
                words.extend(v.split_whitespace().map(str::to_string));
            }
        }
        words.sort();
        words.dedup();
        words
    }
}

/// One entity class: a name plus its signature attribute assignment.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Human-readable class name, e.g. `white albatross 17`.
    pub name: String,
    /// Signature attributes as (group name, value name) pairs.
    pub signature: Vec<(String, String)>,
    /// How many leading signature *value words* the name itself reveals —
    /// this is the dataset's "name informativeness" knob.
    pub name_reveals: usize,
}

impl ClassSpec {
    /// Value words of the signature in order.
    pub fn signature_values(&self) -> Vec<&str> {
        self.signature.iter().map(|(_, v)| v.as_str()).collect()
    }

    /// The value words revealed by the class name.
    pub fn revealed_values(&self) -> Vec<&str> {
        self.signature.iter().take(self.name_reveals).map(|(_, v)| v.as_str()).collect()
    }
}

/// Generate `n_classes` class specs. Each class gets `attrs_per_class`
/// distinct groups with one value each; its name is composed of
/// `name_reveals` of its signature values plus a noun and a unique
/// numeric tag (the tag tokenises to an out-of-vocabulary word, modelling
/// the paper's observation that raw vertex labels — e.g. animal ids — are
/// often too opaque for zero-shot CLIP).
pub fn generate_classes<R: Rng>(
    pool: &AttributePool,
    n_classes: usize,
    attrs_per_class: usize,
    name_reveals: usize,
    rng: &mut R,
) -> Vec<ClassSpec> {
    assert!(attrs_per_class <= pool.group_count(), "not enough attribute groups");
    let mut classes = Vec::with_capacity(n_classes);
    let mut group_indices: Vec<usize> = (0..pool.group_count()).collect();
    for c in 0..n_classes {
        group_indices.shuffle(rng);
        let mut signature = Vec::with_capacity(attrs_per_class);
        for &g in group_indices.iter().take(attrs_per_class) {
            let (gname, values) = pool.group(g);
            let value = values[rng.gen_range(0..values.len())].clone();
            signature.push((gname.to_string(), value));
        }
        let noun = NOUN_BASES[c % NOUN_BASES.len()];
        let reveals = name_reveals.min(signature.len());
        // The name spells out the revealed signature values in full
        // ("white crown olive belly albatross sp0001") so a caption-trained
        // dual encoder can genuinely read it — real bird/scene names are
        // descriptive the same way. The trailing tag stays opaque.
        let mut name_parts: Vec<String> =
            signature.iter().take(reveals).map(|(_, v)| v.clone()).collect();
        name_parts.push(noun.to_string());
        name_parts.push(format!("sp{c:04}")); // unique opaque tag
        classes.push(ClassSpec { name: name_parts.join(" "), signature, name_reveals: reveals });
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pool_sizes_match_request() {
        let pool = AttributePool::synthesize(312 / 6, 6);
        assert_eq!(pool.group_count(), 52);
        assert_eq!(pool.attribute_count(), 312);
    }

    #[test]
    fn group_names_unique() {
        let pool = AttributePool::synthesize(60, 4);
        let mut names: Vec<&str> = (0..60).map(|i| pool.group(i).0).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn vocabulary_is_deduped() {
        let pool = AttributePool::synthesize(10, 3);
        let vocab = pool.vocabulary();
        let mut sorted = vocab.clone();
        sorted.dedup();
        assert_eq!(vocab.len(), sorted.len());
        assert!(vocab.iter().any(|w| w == "color" || w == "shape"));
    }

    #[test]
    fn classes_have_distinct_groups_in_signature() {
        let pool = AttributePool::synthesize(20, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let classes = generate_classes(&pool, 10, 5, 2, &mut rng);
        for c in &classes {
            let mut groups: Vec<&String> = c.signature.iter().map(|(g, _)| g).collect();
            groups.sort();
            let before = groups.len();
            groups.dedup();
            assert_eq!(groups.len(), before, "duplicate group in {}", c.name);
        }
    }

    #[test]
    fn name_reveals_signature_prefix() {
        let pool = AttributePool::synthesize(20, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let classes = generate_classes(&pool, 5, 4, 2, &mut rng);
        for c in &classes {
            assert_eq!(c.revealed_values().len(), 2);
            let first_value_word = c.signature[0].1.split_whitespace().next().unwrap();
            assert!(
                c.name.starts_with(first_value_word),
                "name {:?} does not reveal {:?}",
                c.name,
                first_value_word
            );
        }
    }

    #[test]
    fn class_names_unique() {
        let pool = AttributePool::synthesize(20, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let classes = generate_classes(&pool, 50, 3, 1, &mut rng);
        let mut names: Vec<&String> = classes.iter().map(|c| &c.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let pool = AttributePool::synthesize(20, 4);
        let a = generate_classes(&pool, 5, 3, 1, &mut StdRng::seed_from_u64(7));
        let b = generate_classes(&pool, 5, 3, 1, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.signature, y.signature);
        }
    }
}
