//! The latent concept space: a hidden unit vector per word.

use std::collections::HashMap;

use cem_tensor::init::randn_value;
use rand::Rng;

/// Maps words to fixed random unit vectors. Two pieces of data (a caption
/// and an image, a vertex label and a patch) are semantically related in the
//  synthetic world exactly when they share concepts.
#[derive(Debug, Clone)]
pub struct ConceptSpace {
    dim: usize,
    vectors: HashMap<String, Vec<f32>>,
}

impl ConceptSpace {
    pub fn new(dim: usize) -> Self {
        ConceptSpace { dim, vectors: HashMap::new() }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Register `word` with a fresh random unit vector if unseen; returns
    /// its concept vector. Registration order (not call count) determines
    /// the vector, so generators must register deterministically.
    pub fn ensure<R: Rng>(&mut self, word: &str, rng: &mut R) -> &[f32] {
        if !self.vectors.contains_key(word) {
            let mut v: Vec<f32> = (0..self.dim).map(|_| randn_value(rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
            for x in v.iter_mut() {
                *x /= norm;
            }
            self.vectors.insert(word.to_string(), v);
        }
        self.vectors.get(word).unwrap()
    }

    /// Concept vector of a registered word.
    pub fn get(&self, word: &str) -> Option<&[f32]> {
        self.vectors.get(word).map(Vec::as_slice)
    }

    /// Mean concept of several words (zero vector if none are registered).
    pub fn blend(&self, words: &[&str]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut count = 0usize;
        for w in words {
            if let Some(v) = self.vectors.get(*w) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                count += 1;
            }
        }
        if count > 0 {
            for a in acc.iter_mut() {
                *a /= count as f32;
            }
        }
        acc
    }

    /// Cosine similarity between two registered words (0 if either missing).
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        match (self.get(a), self.get(b)) {
            (Some(x), Some(y)) => x.iter().zip(y).map(|(a, b)| a * b).sum(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vectors_are_unit_norm() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cs = ConceptSpace::new(8);
        let v = cs.ensure("white", &mut rng).to_vec();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cs = ConceptSpace::new(8);
        let a = cs.ensure("white", &mut rng).to_vec();
        let b = cs.ensure("white", &mut rng).to_vec();
        assert_eq!(a, b);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn distinct_words_nearly_orthogonal_in_high_dim() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cs = ConceptSpace::new(64);
        cs.ensure("white", &mut rng);
        cs.ensure("black", &mut rng);
        assert!(cs.similarity("white", "black").abs() < 0.5);
        assert!((cs.similarity("white", "white") - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blend_averages_known_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cs = ConceptSpace::new(4);
        cs.ensure("a", &mut rng);
        cs.ensure("b", &mut rng);
        let blend = cs.blend(&["a", "b", "unknown"]);
        let expect: Vec<f32> = cs
            .get("a")
            .unwrap()
            .iter()
            .zip(cs.get("b").unwrap())
            .map(|(x, y)| (x + y) / 2.0)
            .collect();
        for (u, v) in blend.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn blend_of_unknowns_is_zero() {
        let cs = ConceptSpace::new(4);
        assert_eq!(cs.blend(&["nope"]), vec![0.0; 4]);
    }
}
