//! Adaptive brownout: deterministically cap the richest reachable tier
//! under sustained pressure, before breakers trip and deadlines blow.
//!
//! CrossEM's tier ladder (soft prompt → cached proximity → hard prompt →
//! zero-shot, DESIGN.md §11) is a natural brownout ladder: each rung costs
//! fewer virtual units per request, so capping the ladder at a cheaper rung
//! raises the throughput a wave's work budget can sustain — trading ranking
//! quality for survival, deliberately, instead of by timeout.
//!
//! The controller runs once per wave boundary on the open-loop clock. It
//! watches two pressure signals:
//!
//! * **queue occupancy** — admission-queue depth over capacity at the wave
//!   boundary, and
//! * **deadline-miss rate** — (expired + deadline-exceeded) over completed
//!   requests, summed over a sliding window of recent waves.
//!
//! Either signal above its high watermark **demotes** one rung (Full →
//! Cached → Hard → Zero), clearing the miss window so stale misses from the
//! pre-demotion regime cannot cascade straight to the floor. Recovery has
//! hysteresis: only after `recovery_waves` *consecutive* calm waves
//! (occupancy at or under the low watermark, window miss rate under the
//! threshold) does the controller **promote** one rung back, so a borderline
//! load cannot flap between tiers wave-to-wave. Everything is integer/IEEE
//! arithmetic over deterministic inputs — replays are bit-identical at any
//! thread count.

use std::collections::VecDeque;

use crate::tiers::Tier;

/// Brownout policy knobs. All thresholds compare deterministic quantities,
/// so the demotion/promotion schedule replays exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Master switch: disabled keeps the cap pinned at [`Tier::Full`].
    pub enabled: bool,
    /// Waves in the sliding deadline-miss window.
    pub window_waves: usize,
    /// Queue occupancy (depth / capacity) at or above which a wave counts
    /// as pressured.
    pub high_watermark: f32,
    /// Occupancy at or below which a wave can count as calm.
    pub low_watermark: f32,
    /// Window miss rate at or above which a wave counts as pressured.
    pub miss_high: f32,
    /// Consecutive calm waves required before one rung is re-promoted.
    pub recovery_waves: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enabled: true,
            window_waves: 8,
            high_watermark: 0.75,
            low_watermark: 0.25,
            miss_high: 0.05,
            recovery_waves: 4,
        }
    }
}

impl BrownoutConfig {
    pub fn validate(&self) {
        assert!(self.window_waves >= 1, "brownout window_waves must be positive");
        assert!(
            0.0 < self.low_watermark && self.low_watermark < self.high_watermark,
            "brownout watermarks must satisfy 0 < low < high"
        );
        assert!(self.high_watermark <= 1.0, "brownout high_watermark above 1.0");
        assert!(self.miss_high > 0.0, "brownout miss_high must be positive");
        assert!(self.recovery_waves >= 1, "brownout recovery_waves must be positive");
    }
}

/// What the controller saw at one wave boundary.
#[derive(Debug, Clone, Copy)]
pub struct WaveObservation {
    /// Admission-queue depth after this boundary's arrivals were admitted.
    pub queue_depth: usize,
    pub queue_capacity: usize,
    /// Requests of the previous wave that missed their deadline (expired in
    /// the queue or resolved `DeadlineExceeded`).
    pub missed: u64,
    /// Requests the previous wave completed (served + missed).
    pub completed: u64,
}

/// A cap change worth tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutShift {
    /// Pressure pushed the cap one rung down the ladder.
    Demoted { from: Tier, to: Tier },
    /// A sustained calm streak re-promoted one rung.
    Promoted { from: Tier, to: Tier },
}

/// The per-service brownout state machine. `level` indexes [`Tier::ALL`]:
/// the richest tier the ladder may start at this wave.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: usize,
    calm_streak: u32,
    /// Per-wave `(missed, completed)` samples, newest last.
    window: VecDeque<(u64, u64)>,
}

impl BrownoutController {
    pub fn new(config: BrownoutConfig) -> Self {
        config.validate();
        BrownoutController { config, level: 0, calm_streak: 0, window: VecDeque::new() }
    }

    /// The richest tier the ladder may currently start at.
    pub fn cap(&self) -> Tier {
        Tier::ALL[self.level]
    }

    /// Whether any brownout is currently in force.
    pub fn active(&self) -> bool {
        self.level > 0
    }

    /// Miss rate over the current window (0 when nothing completed yet).
    pub fn window_miss_rate(&self) -> f32 {
        let (missed, completed) =
            self.window.iter().fold((0u64, 0u64), |(m, c), &(wm, wc)| (m + wm, c + wc));
        if completed == 0 {
            0.0
        } else {
            missed as f32 / completed as f32
        }
    }

    /// Fold one wave-boundary observation; returns the cap change, if any.
    /// At most one rung moves per wave, in either direction.
    pub fn observe(&mut self, obs: WaveObservation) -> Option<BrownoutShift> {
        if !self.config.enabled {
            return None;
        }
        self.window.push_back((obs.missed, obs.completed));
        while self.window.len() > self.config.window_waves {
            self.window.pop_front();
        }
        let occupancy = obs.queue_depth as f32 / obs.queue_capacity.max(1) as f32;
        let miss_rate = self.window_miss_rate();

        let pressured =
            occupancy >= self.config.high_watermark || miss_rate >= self.config.miss_high;
        let calm = occupancy <= self.config.low_watermark && miss_rate < self.config.miss_high;

        if pressured {
            self.calm_streak = 0;
            if self.level + 1 < Tier::COUNT {
                let from = self.cap();
                self.level += 1;
                // Misses accrued under the old cap say nothing about the
                // new one; a stale window must not cascade demotions.
                self.window.clear();
                return Some(BrownoutShift::Demoted { from, to: self.cap() });
            }
        } else if calm {
            self.calm_streak += 1;
            if self.calm_streak >= self.config.recovery_waves && self.level > 0 {
                let from = self.cap();
                self.level -= 1;
                self.calm_streak = 0;
                return Some(BrownoutShift::Promoted { from, to: self.cap() });
            }
        } else {
            // Middling pressure: neither demote nor let the calm streak grow.
            self.calm_streak = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(BrownoutConfig { recovery_waves: 2, ..BrownoutConfig::default() })
    }

    fn quiet(depth: usize) -> WaveObservation {
        WaveObservation { queue_depth: depth, queue_capacity: 100, missed: 0, completed: 50 }
    }

    #[test]
    fn occupancy_pressure_demotes_one_rung_per_wave() {
        let mut c = controller();
        assert_eq!(c.cap(), Tier::Full);
        assert_eq!(
            c.observe(quiet(80)),
            Some(BrownoutShift::Demoted { from: Tier::Full, to: Tier::Cached })
        );
        assert_eq!(
            c.observe(quiet(90)),
            Some(BrownoutShift::Demoted { from: Tier::Cached, to: Tier::Hard })
        );
        assert_eq!(c.cap(), Tier::Hard);
    }

    #[test]
    fn miss_rate_pressure_demotes_and_window_clears() {
        let mut c = controller();
        let missing =
            WaveObservation { queue_depth: 10, queue_capacity: 100, missed: 10, completed: 50 };
        assert_eq!(
            c.observe(missing),
            Some(BrownoutShift::Demoted { from: Tier::Full, to: Tier::Cached })
        );
        // The window was cleared: one clean wave shows a zero miss rate, so
        // the stale 20% cannot push the cap further down.
        assert_eq!(c.observe(quiet(10)), None);
        assert_eq!(c.cap(), Tier::Cached);
    }

    #[test]
    fn recovery_needs_a_consecutive_calm_streak() {
        let mut c = controller();
        c.observe(quiet(80)); // demote to cached
        assert_eq!(c.observe(quiet(5)), None, "first calm wave only starts the streak");
        // A middling wave (between watermarks) resets the streak.
        assert_eq!(c.observe(quiet(50)), None);
        assert_eq!(c.observe(quiet(5)), None);
        assert_eq!(
            c.observe(quiet(5)),
            Some(BrownoutShift::Promoted { from: Tier::Cached, to: Tier::Full })
        );
        assert!(!c.active());
    }

    #[test]
    fn floor_and_ceiling_are_absorbing() {
        let mut c = controller();
        for _ in 0..10 {
            c.observe(quiet(100));
        }
        assert_eq!(c.cap(), Tier::Zero, "demotion stops at the floor");
        for _ in 0..20 {
            c.observe(quiet(0));
        }
        assert_eq!(c.cap(), Tier::Full, "promotion stops at the ceiling");
        assert_eq!(c.observe(quiet(0)), None);
    }

    #[test]
    fn disabled_controller_never_moves() {
        let mut c = BrownoutController::new(BrownoutConfig {
            enabled: false,
            ..BrownoutConfig::default()
        });
        for _ in 0..10 {
            assert_eq!(c.observe(quiet(100)), None);
        }
        assert_eq!(c.cap(), Tier::Full);
    }
}
