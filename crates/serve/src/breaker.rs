//! Per-component circuit breakers with a deterministic probe schedule.
//!
//! One breaker guards each fallible pipeline component (the soft-prompt
//! encoder behind the full tier, the frozen-feature cache behind the cached
//! tier, the proximity/hard-prompt prep behind the hard tier; the zero-shot
//! floor is unguarded by design). State machine:
//!
//! ```text
//!            consecutive failures ≥ threshold
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                            │ cooldown ticks elapse
//!     │ probe succeeds                             ▼
//!     └──────────────────────────────────────── HalfOpen
//!                    probe fails → Open (new cooldown)
//! ```
//!
//! Time is the service's **fold tick** (requests folded so far), not wall
//! clock, and each trip's cooldown is `cooldown_base` plus SplitMix64
//! jitter over `(service seed, component, trip count)` — so the open/probe
//! schedule replays exactly under a fixed seed.

use crate::config::BreakerConfig;
use crate::retry::splitmix64;

/// The fallible pipeline components, one breaker each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Soft-prompt encoder behind [`crate::tiers::Tier::Full`].
    SoftEncoder,
    /// Frozen-feature cache behind [`crate::tiers::Tier::Cached`].
    FeatureCache,
    /// Proximity / hard-prompt preparation behind [`crate::tiers::Tier::Hard`].
    Prep,
}

impl Component {
    pub const COUNT: usize = 3;
    pub const ALL: [Component; Component::COUNT] =
        [Component::SoftEncoder, Component::FeatureCache, Component::Prep];

    pub fn index(self) -> usize {
        match self {
            Component::SoftEncoder => 0,
            Component::FeatureCache => 1,
            Component::Prep => 2,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Component::SoftEncoder => "soft_encoder",
            Component::FeatureCache => "feature_cache",
            Component::Prep => "prep",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// A state change worth tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed → Open (threshold reached).
    Tripped,
    /// HalfOpen → Open (probe failed).
    Reopened,
    /// HalfOpen → Closed (probe succeeded).
    Recovered,
}

#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    seed: u64,
    state: BreakerState,
    consecutive_failures: u32,
    /// Fold tick at which an open breaker half-opens.
    open_until: u64,
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig, seed: u64, component: Component) -> Self {
        config.validate();
        CircuitBreaker {
            config,
            seed: splitmix64(seed, component.index() as u64 + 1),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: 0,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total Closed→Open and HalfOpen→Open transitions.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Advance open→half-open when the cooldown has elapsed. Called at wave
    /// boundaries before the snapshot is taken.
    pub fn refresh(&mut self, tick: u64) {
        if self.state == BreakerState::Open && tick >= self.open_until {
            self.state = BreakerState::HalfOpen;
        }
    }

    /// Deterministic cooldown for the upcoming trip.
    fn cooldown(&self) -> u64 {
        let jitter = if self.config.cooldown_jitter == 0 {
            0
        } else {
            splitmix64(self.seed, self.trips) % (self.config.cooldown_jitter + 1)
        };
        self.config.cooldown_base + jitter
    }

    fn trip(&mut self, tick: u64) {
        self.open_until = tick + self.cooldown();
        self.trips += 1;
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
    }

    /// Fold one component outcome (in arrival order). Outcomes folded while
    /// the breaker is already open — stragglers from the same wave as the
    /// trip — are ignored, keeping the trace independent of wave size.
    pub fn record(&mut self, tick: u64, success: bool) -> Option<BreakerTransition> {
        match (self.state, success) {
            (BreakerState::Open, _) => None,
            (BreakerState::Closed, true) => {
                self.consecutive_failures = 0;
                None
            }
            (BreakerState::Closed, false) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(tick);
                    Some(BreakerTransition::Tripped)
                } else {
                    None
                }
            }
            (BreakerState::HalfOpen, true) => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
                Some(BreakerTransition::Recovered)
            }
            (BreakerState::HalfOpen, false) => {
                self.trip(tick);
                Some(BreakerTransition::Reopened)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerConfig { failure_threshold: 3, cooldown_base: 5, cooldown_jitter: 0 },
            9,
            Component::SoftEncoder,
        )
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        assert_eq!(b.record(1, false), None);
        assert_eq!(b.record(2, true), None, "success resets the streak");
        assert_eq!(b.record(3, false), None);
        assert_eq!(b.record(4, false), None);
        assert_eq!(b.record(5, false), Some(BreakerTransition::Tripped));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_ignores_stragglers_then_half_opens() {
        let mut b = breaker();
        for t in 0..3 {
            b.record(t, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.record(3, false), None, "straggler ignored");
        b.refresh(4);
        assert_eq!(b.state(), BreakerState::Open, "cooldown not elapsed");
        b.refresh(2 + 5);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_outcome_decides_the_next_state() {
        let mut b = breaker();
        for t in 0..3 {
            b.record(t, false);
        }
        b.refresh(100);
        assert_eq!(b.record(100, true), Some(BreakerTransition::Recovered));
        assert_eq!(b.state(), BreakerState::Closed);

        for t in 101..104 {
            b.record(t, false);
        }
        b.refresh(200);
        assert_eq!(b.record(200, false), Some(BreakerTransition::Reopened));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 3);
    }

    #[test]
    fn cooldown_schedule_is_seed_deterministic() {
        let config = BreakerConfig { failure_threshold: 1, cooldown_base: 8, cooldown_jitter: 6 };
        let run = |seed: u64| {
            let mut b = CircuitBreaker::new(config, seed, Component::Prep);
            let mut opens = Vec::new();
            for t in 0..6u64 {
                b.record(t * 100, false);
                opens.push(b.open_until);
                b.refresh(u64::MAX);
            }
            opens
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "expected seed-dependent cooldown jitter");
    }
}
