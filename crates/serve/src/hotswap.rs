//! Zero-downtime model-generation hot-swap.
//!
//! A [`Generation`] is one complete serving artefact: a generation number
//! plus the four-tier [`ServeIndex`] scored by that model. Generations
//! round-trip through the CEMT container ([`cem_tensor::io::StateDict`]),
//! which CRC-checks every entry on load — a torn or bit-rotted generation
//! file fails to parse instead of serving garbage.
//!
//! [`GenerationStore`] keeps generations durable with the same
//! `latest`/`prev` rotation discipline the training checkpoints use
//! ([`crossem::checkpoint::CheckpointManager`]): publishing a new
//! generation displaces the old `latest` to `prev` only after the incoming
//! file is fsynced, so a crash mid-publish always leaves one loadable
//! generation on disk, and a corrupt `latest` falls back to `prev`.
//!
//! The swap protocol on the serving side (see `service.rs`):
//!
//! 1. load the incoming generation (CRC + schema + shape verified here);
//! 2. [`MatchService::stage`](crate::MatchService) the result — a failed
//!    load is **rejected** on the spot (`serve.hotswap.reject`) and the old
//!    generation keeps serving;
//! 3. a staged generation **promotes at the next wave boundary**
//!    (`serve.hotswap.promote`). Waves execute against one frozen index
//!    borrow, so in-flight requests are never dropped or mixed: every
//!    response carries the generation id it was scored against, and a wave
//!    is entirely one generation.

use std::fmt;
use std::path::Path;

use cem_tensor::io::{CheckpointError, StateDict};
use cem_tensor::Tensor;
use crossem::checkpoint::{generation_of, stamp_generation, CheckpointManager};

use crate::shard::{ShardError, ShardedIndex};
use crate::tiers::{ServeIndex, Tier};

/// Schema version of the generation layout inside the CEMT container.
pub const GENERATION_SCHEMA: u64 = 1;

/// Why an incoming generation could not be promoted.
#[derive(Debug)]
pub enum SwapError {
    /// The container failed to read (CRC mismatch, torn file, IO error).
    Checkpoint(CheckpointError),
    /// The container parsed but lacks a required entry or metadata key.
    MissingEntry(String),
    /// The container was written by a different generation schema.
    Schema { expected: u64, found: u64 },
    /// The incoming index does not match the serving catalogue shape.
    ShapeMismatch { expected: (usize, usize), found: (usize, usize) },
    /// The incoming generation is not newer than the one serving.
    StaleGeneration { current: u64, incoming: u64 },
    /// The store holds no generation at all.
    Empty,
    /// The generation's shard sections failed to decode (corrupt posting
    /// list, bad layout, wrong shard schema).
    Shard(ShardError),
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Checkpoint(e) => write!(f, "generation container unreadable: {e}"),
            SwapError::MissingEntry(name) => {
                write!(f, "generation is missing required entry {name:?}")
            }
            SwapError::Schema { expected, found } => {
                write!(f, "generation schema {found} does not match this build ({expected})")
            }
            SwapError::ShapeMismatch { expected, found } => write!(
                f,
                "generation shape {}x{} does not match the serving catalogue {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            SwapError::StaleGeneration { current, incoming } => {
                write!(f, "generation {incoming} is not newer than the serving generation {current}")
            }
            SwapError::Empty => write!(f, "the generation store is empty"),
            SwapError::Shard(e) => write!(f, "generation shard sections rejected: {e}"),
        }
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwapError::Checkpoint(e) => Some(e),
            SwapError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShardError> for SwapError {
    fn from(e: ShardError) -> Self {
        SwapError::Shard(e)
    }
}

impl From<CheckpointError> for SwapError {
    fn from(e: CheckpointError) -> Self {
        SwapError::Checkpoint(e)
    }
}

/// One promotable serving artefact: a monotonically numbered model
/// generation, its four-tier score index, and (optionally) the sharded ANN
/// index built from the same catalogue. Shards ride in the same CEMT
/// container as additional CRC'd entries, so they publish through the
/// identical rotation/promotion path; a generation without shards serves
/// dense-only.
pub struct Generation {
    pub id: u64,
    pub index: ServeIndex,
    pub shards: Option<ShardedIndex>,
}

impl Generation {
    pub fn new(id: u64, index: ServeIndex) -> Self {
        Generation { id, index, shards: None }
    }

    /// A generation carrying a sharded ANN index. The shards must describe
    /// the same catalogue shape as the dense index.
    pub fn with_shards(
        id: u64,
        index: ServeIndex,
        shards: ShardedIndex,
    ) -> Result<Self, SwapError> {
        if shards.entities() != index.entities() || shards.images() != index.images() {
            return Err(SwapError::ShapeMismatch {
                expected: (index.entities(), index.images()),
                found: (shards.entities(), shards.images()),
            });
        }
        Ok(Generation { id, index, shards: Some(shards) })
    }

    /// Serialise into a CEMT state dict: one `[entities × images]` tensor
    /// per tier plus schema/shape/generation metadata, and — when present —
    /// the shard sections (`shard.*` entries, see `cem-serve::shard`).
    pub fn to_state_dict(&self) -> StateDict {
        let mut dict = StateDict::new();
        for tier in Tier::ALL {
            dict.insert(
                format!("tier.{}", tier.label()),
                Tensor::from_vec(
                    self.index.tier_rows(tier).to_vec(),
                    &[self.index.entities(), self.index.images()],
                ),
            );
        }
        dict.insert_meta("schema", GENERATION_SCHEMA);
        dict.insert_meta("entities", self.index.entities() as u64);
        dict.insert_meta("images", self.index.images() as u64);
        stamp_generation(&mut dict, self.id);
        if let Some(shards) = &self.shards {
            shards.write_state_dict(&mut dict);
        }
        dict
    }

    /// Decode a generation, verifying schema, metadata, and per-tier
    /// shapes. (Per-entry CRCs were already verified by the CEMT reader.)
    pub fn from_state_dict(dict: &StateDict) -> Result<Generation, SwapError> {
        let meta = |name: &str| {
            dict.meta(name).ok_or_else(|| SwapError::MissingEntry(name.to_string()))
        };
        let schema = meta("schema")?;
        if schema != GENERATION_SCHEMA {
            return Err(SwapError::Schema { expected: GENERATION_SCHEMA, found: schema });
        }
        let id = generation_of(dict).ok_or_else(|| SwapError::MissingEntry("generation".into()))?;
        let entities = meta("entities")? as usize;
        let images = meta("images")? as usize;
        let mut matrices: [Vec<f32>; Tier::COUNT] = std::array::from_fn(|_| Vec::new());
        for tier in Tier::ALL {
            let name = format!("tier.{}", tier.label());
            let tensor = dict.get(&name).ok_or(SwapError::MissingEntry(name))?;
            let rows = tensor.to_vec();
            if rows.len() != entities * images {
                return Err(SwapError::ShapeMismatch {
                    expected: (entities, images),
                    found: (tensor.dims().first().copied().unwrap_or(0),
                            tensor.dims().get(1).copied().unwrap_or(0)),
                });
            }
            matrices[tier.index()] = rows;
        }
        // Shard sections are optional (pre-shard generations stay loadable)
        // but when present they must decode cleanly and match the catalogue.
        let shards = ShardedIndex::read_state_dict(dict)?;
        if let Some(s) = &shards {
            if s.entities() != entities || s.images() != images {
                return Err(SwapError::ShapeMismatch {
                    expected: (entities, images),
                    found: (s.entities(), s.images()),
                });
            }
        }
        Ok(Generation { id, index: ServeIndex::new(entities, images, matrices), shards })
    }

    /// Load a generation from one specific CEMT file — no fallback. This is
    /// the strict path the swap drills use to show a corrupt incoming file
    /// being rejected at the CRC.
    pub fn load_path(path: impl AsRef<Path>) -> Result<Generation, SwapError> {
        let dict = StateDict::load(path)?;
        Generation::from_state_dict(&dict)
    }
}

/// Durable generation store: `latest`/`prev` rotation over CEMT files,
/// reusing the checkpoint manager's crash-safe publish ordering.
pub struct GenerationStore {
    manager: CheckpointManager,
}

impl GenerationStore {
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Result<Self, CheckpointError> {
        Ok(GenerationStore { manager: CheckpointManager::new(dir)? })
    }

    /// Durably publish `generation` as the new `latest`, demoting the
    /// current `latest` to `prev` only after the incoming file is fsynced.
    pub fn publish(&self, generation: &Generation) -> Result<(), CheckpointError> {
        self.manager.save(&generation.to_state_dict())
    }

    /// Load the freshest intact generation, falling back from a damaged
    /// `latest` to `prev`. `Err(SwapError::Empty)` when nothing is stored.
    pub fn load(&self) -> Result<Generation, SwapError> {
        match self.manager.load()? {
            Some((dict, _source)) => Generation::from_state_dict(&dict),
            None => Err(SwapError::Empty),
        }
    }

    /// Path of the `latest` generation file (corruption drills damage it).
    pub fn latest_path(&self) -> std::path::PathBuf {
        self.manager.latest_path()
    }

    pub fn prev_path(&self) -> std::path::PathBuf {
        self.manager.prev_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(base: f32) -> ServeIndex {
        let m = |b: f32| (0..6).map(|i| b + i as f32).collect::<Vec<f32>>();
        ServeIndex::new(2, 3, [m(base), m(base + 10.0), m(base + 20.0), m(base + 30.0)])
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cem_hotswap_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generation_round_trips_through_the_container() {
        let generation = Generation::new(7, index(1.0));
        let decoded = Generation::from_state_dict(&generation.to_state_dict()).unwrap();
        assert_eq!(decoded.id, 7);
        assert_eq!(decoded.index.entities(), 2);
        for tier in Tier::ALL {
            assert_eq!(decoded.index.tier_rows(tier), generation.index.tier_rows(tier));
            for e in 0..2 {
                assert_eq!(
                    decoded.index.row_crc(tier, e),
                    generation.index.row_crc(tier, e),
                    "row checksums must be rebuilt identically"
                );
            }
        }
    }

    #[test]
    fn store_rotates_and_falls_back_from_a_corrupt_latest() {
        let dir = tmp_dir("rotate");
        let store = GenerationStore::new(&dir).unwrap();
        assert!(matches!(store.load(), Err(SwapError::Empty)));

        store.publish(&Generation::new(1, index(0.0))).unwrap();
        store.publish(&Generation::new(2, index(5.0))).unwrap();
        assert_eq!(store.load().unwrap().id, 2);

        // Bit-rot the latest file: the strict path rejects it at the CRC,
        // the fallback path serves the previous generation.
        let bytes = std::fs::read(store.latest_path()).unwrap();
        let mut damaged = bytes.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x40;
        std::fs::write(store.latest_path(), &damaged).unwrap();
        assert!(matches!(
            Generation::load_path(store.latest_path()),
            Err(SwapError::Checkpoint(_))
        ));
        assert_eq!(store.load().unwrap().id, 1, "fallback must serve prev");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A generation carrying shard sections publishes through the same
    /// store rotation and decodes with bit-identical shard serving state.
    #[test]
    fn shard_sections_ride_the_generation_container() {
        use crate::shard::ShardedIndex;
        let dim = 4;
        let queries = vec![0.25f32; 2 * dim];
        let embeddings: Vec<f32> = (0..3 * dim).map(|i| (i as f32 * 0.3).cos()).collect();
        let shards = ShardedIndex::build(queries, 2, &embeddings, 3, dim, 2, 8, 13);
        let generation = Generation::with_shards(9, index(1.0), shards).unwrap();

        let dir = tmp_dir("shards");
        let store = GenerationStore::new(&dir).unwrap();
        store.publish(&generation).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.id, 9);
        let decoded = loaded.shards.expect("shards must survive the round trip");
        let original = generation.shards.as_ref().unwrap();
        assert_eq!(decoded.nclusters(), original.nclusters());
        let a = original.score_wave(&[0, 1], decoded.nclusters(), 1, 0, 1).unwrap();
        let b = decoded.score_wave(&[0, 1], decoded.nclusters(), 1, 0, 1).unwrap();
        assert_eq!(a.rankings, b.rankings);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Mismatched shard/catalogue shapes are rejected at construction and
    /// at decode.
    #[test]
    fn shard_shape_mismatch_is_rejected() {
        use crate::shard::ShardedIndex;
        let dim = 4;
        let queries = vec![0.5f32; 2 * dim];
        let embeddings = vec![0.1f32; 5 * dim]; // 5 images ≠ catalogue's 3
        let shards = ShardedIndex::build(queries, 2, &embeddings, 5, dim, 2, 8, 13);
        assert!(matches!(
            Generation::with_shards(9, index(1.0), shards),
            Err(SwapError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn missing_tier_and_wrong_schema_are_rejected() {
        let generation = Generation::new(3, index(2.0));
        let mut dict = generation.to_state_dict();
        dict.insert_meta("schema", GENERATION_SCHEMA + 1);
        assert!(matches!(
            Generation::from_state_dict(&dict),
            Err(SwapError::Schema { .. })
        ));

        let mut dict = StateDict::new();
        dict.insert_meta("schema", GENERATION_SCHEMA);
        dict.insert_meta("generation", 3);
        dict.insert_meta("entities", 2);
        dict.insert_meta("images", 3);
        assert!(matches!(
            Generation::from_state_dict(&dict),
            Err(SwapError::MissingEntry(_))
        ));
    }
}
