//! The graceful-degradation ladder and the precomputed score index behind
//! it.
//!
//! Each tier is one way to score an entity against the image repository,
//! ordered richest-first:
//!
//! 1. [`Tier::Full`] — the tuned CrossEM⁺ soft-prompt matching matrix;
//! 2. [`Tier::Cached`] — frozen-feature proximity from
//!    [`crossem::FeatureCache`] (PCP Alg. 2 phases 1–2, pristine towers);
//! 3. [`Tier::Hard`] — hard-encoding prompt scores (Eq. 5 / Example 2);
//! 4. [`Tier::Zero`] — the Eq. 4 zero-shot floor, `"a photo of {label}"`.
//!
//! [`ServeIndex`] holds one flat `[entities × images]` `f32` matrix per
//! tier plus a CRC-32 per row. Flat vectors — not [`cem_tensor::Tensor`],
//! which is `Rc<RefCell<…>>` and not `Send` — so worker threads can score
//! against shared borrows, and per-row checksums let the cached tier detect
//! storage corruption before it serves garbage.

use cem_clip::{Clip, Image, Tokenizer};
use cem_data::EmDataset;
use cem_tensor::crc::crc32;
use cem_tensor::{no_grad, Tensor};
use crossem::prompt::{baseline_prompt, hard_prompt, HardPromptOptions};
use crossem::FeatureCache;

use crate::breaker::Component;

/// One rung of the degradation ladder, richest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Tuned CrossEM⁺ soft-prompt matching.
    Full,
    /// Frozen-feature proximity served from the feature cache.
    Cached,
    /// Hard-encoding prompt scores.
    Hard,
    /// Zero-shot baseline (Eq. 4) — the infallible floor.
    Zero,
}

impl Tier {
    pub const COUNT: usize = 4;
    /// Degradation order: a request walks this list front to back.
    pub const ALL: [Tier; Tier::COUNT] = [Tier::Full, Tier::Cached, Tier::Hard, Tier::Zero];

    pub fn index(self) -> usize {
        match self {
            Tier::Full => 0,
            Tier::Cached => 1,
            Tier::Hard => 2,
            Tier::Zero => 3,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Cached => "cached",
            Tier::Hard => "hard",
            Tier::Zero => "zero",
        }
    }

    /// The breaker-guarded component this tier depends on. `None` for the
    /// zero-shot floor: it must stay reachable no matter what is tripped.
    pub fn component(self) -> Option<Component> {
        match self {
            Tier::Full => Some(Component::SoftEncoder),
            Tier::Cached => Some(Component::FeatureCache),
            Tier::Hard => Some(Component::Prep),
            Tier::Zero => None,
        }
    }
}

/// Precomputed per-tier score matrices with per-row checksums. Built once
/// on the main thread (tier construction runs the non-`Send` model); served
/// read-only from worker threads.
pub struct ServeIndex {
    entities: usize,
    images: usize,
    data: [Vec<f32>; Tier::COUNT],
    row_crc: [Vec<u32>; Tier::COUNT],
}

impl ServeIndex {
    /// Assemble the index from one `[entities × images]` row-major matrix
    /// per tier (ladder order: full, cached, hard, zero).
    pub fn new(entities: usize, images: usize, matrices: [Vec<f32>; Tier::COUNT]) -> Self {
        assert!(entities > 0 && images > 0, "ServeIndex: empty catalogue");
        for (tier, matrix) in Tier::ALL.iter().zip(&matrices) {
            assert_eq!(
                matrix.len(),
                entities * images,
                "ServeIndex: {} tier matrix shape mismatch",
                tier.label()
            );
        }
        let row_crc = std::array::from_fn(|t| {
            matrices[t].chunks_exact(images).map(row_checksum).collect()
        });
        ServeIndex { entities, images, data: matrices, row_crc }
    }

    pub fn entities(&self) -> usize {
        self.entities
    }

    pub fn images(&self) -> usize {
        self.images
    }

    /// The score row for `entity` at `tier`.
    pub fn row(&self, tier: Tier, entity: usize) -> &[f32] {
        let start = entity * self.images;
        &self.data[tier.index()][start..start + self.images]
    }

    /// The checksum recorded for `entity`'s row at `tier` when the index
    /// was built.
    pub fn row_crc(&self, tier: Tier, entity: usize) -> u32 {
        self.row_crc[tier.index()][entity]
    }

    /// Whether `row` still matches the checksum recorded at build time.
    pub fn verify_row(&self, tier: Tier, entity: usize, row: &[f32]) -> bool {
        row_checksum(row) == self.row_crc(tier, entity)
    }

    /// The full `[entities × images]` matrix of one tier as a tensor
    /// (reporting/accuracy paths; the hot path reads [`ServeIndex::row`]).
    pub fn tier_matrix(&self, tier: Tier) -> Tensor {
        Tensor::from_vec(self.data[tier.index()].clone(), &[self.entities, self.images])
    }

    /// The raw row-major matrix of one tier (generation serialisation).
    pub fn tier_rows(&self, tier: Tier) -> &[f32] {
        &self.data[tier.index()]
    }
}

/// CRC-32 over a score row's little-endian f32 bytes.
pub fn row_checksum(row: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(row.len() * 4);
    for v in row {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

/// Score every entity prompt against every image with the frozen dual
/// encoder, returning the row-major `[entities × images]` matrix.
fn prompt_scores(clip: &Clip, tokenizer: &Tokenizer, dataset: &EmDataset, prompts: &[String]) -> Vec<f32> {
    no_grad(|| {
        let encoded: Vec<Vec<usize>> =
            prompts.iter().map(|p| tokenizer.encode(p, 77).0).collect();
        let text = clip.encode_texts(&encoded);
        let refs: Vec<&Image> = dataset.images.iter().collect();
        let mut parts = Vec::new();
        for chunk in refs.chunks(64) {
            parts.push(clip.encode_images(chunk));
        }
        let images = Tensor::concat_rows(&parts);
        clip.similarity_logits(&text, &images).to_vec()
    })
}

/// [`Tier::Zero`] scores: the Eq. 4 `"a photo of {label}"` baseline,
/// identical to the `cem-baselines` CLIP row by construction.
pub fn zero_shot_scores(clip: &Clip, tokenizer: &Tokenizer, dataset: &EmDataset) -> Vec<f32> {
    let prompts: Vec<String> = (0..dataset.entity_count())
        .map(|e| baseline_prompt(dataset.entity_label(e), true))
        .collect();
    prompt_scores(clip, tokenizer, dataset, &prompts)
}

/// [`Tier::Hard`] scores: each entity queried with its hard-encoding
/// prompt `f_pro^h(v)` over the d-hop neighbourhood.
pub fn hard_prompt_scores(
    clip: &Clip,
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    options: &HardPromptOptions,
) -> Vec<f32> {
    let prompts: Vec<String> = dataset
        .entities
        .iter()
        .map(|&v| hard_prompt(&dataset.graph, v, options))
        .collect();
    prompt_scores(clip, tokenizer, dataset, &prompts)
}

/// [`Tier::Cached`] scores: the frozen-feature proximity matrix out of the
/// feature cache. Compute this with the *pristine* pre-trained model
/// (before tuning mutates the text tower) so the cache fingerprint matches
/// the entries the CrossEM⁺ preprocessing already populated.
pub fn cached_proximity_scores(
    cache: &FeatureCache,
    clip: &Clip,
    tokenizer: &Tokenizer,
    dataset: &EmDataset,
    hops: usize,
) -> Vec<f32> {
    cache.proximity(clip, tokenizer, dataset, hops).data().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_index() -> ServeIndex {
        let m = |b: f32| (0..6).map(|i| b + i as f32).collect::<Vec<f32>>();
        ServeIndex::new(2, 3, [m(0.0), m(10.0), m(20.0), m(30.0)])
    }

    #[test]
    fn ladder_order_and_components() {
        assert_eq!(Tier::ALL[0], Tier::Full);
        assert_eq!(Tier::ALL[3], Tier::Zero);
        assert_eq!(Tier::Zero.component(), None, "the floor must be breaker-free");
        for tier in Tier::ALL {
            assert_eq!(Tier::ALL[tier.index()], tier);
        }
    }

    #[test]
    fn rows_slice_the_right_tier() {
        let index = tiny_index();
        assert_eq!(index.row(Tier::Full, 1), &[3.0, 4.0, 5.0]);
        assert_eq!(index.row(Tier::Zero, 0), &[30.0, 31.0, 32.0]);
    }

    #[test]
    fn checksums_catch_corruption() {
        let index = tiny_index();
        let clean = index.row(Tier::Cached, 0).to_vec();
        assert!(index.verify_row(Tier::Cached, 0, &clean));
        let mut corrupt = clean;
        let bits = corrupt[1].to_bits() ^ 0x0040_0000;
        corrupt[1] = f32::from_bits(bits);
        assert!(!index.verify_row(Tier::Cached, 0, &corrupt));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_is_rejected() {
        let m = vec![0.0f32; 6];
        ServeIndex::new(2, 3, [m.clone(), m.clone(), m, vec![0.0; 5]]);
    }
}
