//! The embedded matching service: admission control, wave-parallel
//! execution, deadlines, retries, breakers, and the degradation ladder.
//!
//! # Execution model
//!
//! Admitted requests drain in **waves** of `config.wave`. At each wave
//! boundary the breakers advance (`Open` → `HalfOpen` when their cooldown
//! elapses) and their states are snapshotted; every request in the wave
//! executes against that frozen snapshot on the `cem_tensor::par` worker
//! pool. When the wave joins, each request's component observations fold
//! into the breakers **in arrival order**. Workers therefore never mutate
//! shared state, and the fold is a serial left-to-right reduction — which
//! is why responses, breaker transitions, and retry traces are bit-identical
//! at 1 and N threads.
//!
//! A `HalfOpen` component admits exactly one probe per wave: slot 0. Every
//! other slot treats the component as open and degrades past its tier.
//!
//! # Request pipeline
//!
//! Each request walks the tier ladder (full → cached → hard → zero).
//! Between stages it checks its virtual-unit deadline budget. Per tier it
//! runs a bounded retry loop: transient failures (worker panic caught via
//! `catch_unwind` at the pool boundary, attempt timeouts from latency
//! spikes) back off with seeded jitter and retry; non-transient failures
//! (NaN-poisoned scores, checksum-detected corruption) degrade to the next
//! tier immediately. The zero-shot floor ignores injected faults and its
//! NaN-safe ranking always returns a permutation, so every admitted request
//! resolves as served, or deadline-exceeded — never a process abort.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crossem::matcher::rank_row;

use crate::breaker::{BreakerState, BreakerTransition, CircuitBreaker, Component};
use crate::config::ServeConfig;
use crate::fault::{FaultKind, ServeFault, PANIC_MARKER};
use crate::request::{ComponentEvent, ExecOutcome, MatchRequest, Outcome, Response};
use crate::retry::{splitmix64, Backoff};
use crate::tiers::{ServeIndex, Tier};

/// Aggregate counters over everything a service instance has processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    pub admitted: u64,
    pub shed: u64,
    /// Served-response count per tier, ladder order.
    pub served: [u64; Tier::COUNT],
    pub deadline_exceeded: u64,
    /// Total retries across all requests and tiers.
    pub retries: u64,
    /// Total breaker trips (Closed→Open and HalfOpen→Open).
    pub breaker_trips: u64,
}

impl ServeStats {
    pub fn served_total(&self) -> u64 {
        self.served.iter().sum()
    }
}

/// The embedded matching service. Owns the breakers and the fold clock;
/// borrows the precomputed score index.
pub struct MatchService<'a> {
    config: ServeConfig,
    index: &'a ServeIndex,
    breakers: [CircuitBreaker; Component::COUNT],
    /// Requests folded so far — the deterministic clock breakers run on.
    tick: u64,
    stats: ServeStats,
    trace: Vec<String>,
}

impl<'a> MatchService<'a> {
    pub fn new(config: ServeConfig, index: &'a ServeIndex) -> Self {
        config.validate();
        let breakers =
            Component::ALL.map(|c| CircuitBreaker::new(config.breaker, config.seed, c));
        MatchService { config, index, breakers, tick: 0, stats: ServeStats::default(), trace: Vec::new() }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The deterministic event trace: admission sheds, retries,
    /// degradations, breaker transitions. No wall-clock content.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    pub fn breaker_state(&self, component: Component) -> BreakerState {
        self.breakers[component.index()].state()
    }

    pub fn breaker_trips(&self, component: Component) -> u64 {
        self.breakers[component.index()].trips()
    }

    /// Process one burst of requests. Requests beyond `max_queue_depth`
    /// are shed at admission; the rest execute in waves. Responses come
    /// back in request order.
    pub fn run(&mut self, requests: &[MatchRequest], faults: &dyn ServeFault) -> Vec<Response> {
        let admitted = requests.len().min(self.config.max_queue_depth);
        self.stats.admitted += admitted as u64;
        cem_obs::counter_add!("serve.admit", admitted as u64);
        for request in &requests[admitted..] {
            self.stats.shed += 1;
            cem_obs::counter_add!("serve.shed", 1);
            self.trace.push(format!(
                "req {}: shed at admission (queue depth {})",
                request.id, self.config.max_queue_depth
            ));
        }

        let mut responses = Vec::with_capacity(requests.len());
        let mut wave_start = 0;
        while wave_start < admitted {
            let wave = &requests[wave_start..(wave_start + self.config.wave).min(admitted)];
            self.run_wave(wave, faults, &mut responses);
            wave_start += wave.len();
        }

        for request in &requests[admitted..] {
            responses.push(Response {
                id: request.id,
                entity: request.entity,
                outcome: Outcome::Shed,
                cost_units: 0,
                retries: 0,
            });
        }
        responses
    }

    fn run_wave(
        &mut self,
        wave: &[MatchRequest],
        faults: &dyn ServeFault,
        responses: &mut Vec<Response>,
    ) {
        for breaker in &mut self.breakers {
            breaker.refresh(self.tick);
        }
        let states: [BreakerState; Component::COUNT] =
            std::array::from_fn(|i| self.breakers[i].state());

        // Parallel execution against the frozen breaker snapshot. Slots are
        // plain data; `par_chunks_mut` hands each worker a disjoint block.
        let mut slots: Vec<Option<ExecOutcome>> = wave.iter().map(|_| None).collect();
        let config = &self.config;
        let index = self.index;
        cem_tensor::par::par_chunks_mut(
            &mut slots,
            1,
            cem_tensor::par::max_threads(),
            |start, block| {
                for (offset, slot) in block.iter_mut().enumerate() {
                    let slot_idx = start + offset;
                    let allowed: [bool; Component::COUNT] =
                        std::array::from_fn(|c| match states[c] {
                            BreakerState::Closed => true,
                            BreakerState::Open => false,
                            // One probe per wave: slot 0.
                            BreakerState::HalfOpen => slot_idx == 0,
                        });
                    *slot = Some(execute_request(config, index, &wave[slot_idx], allowed, faults));
                }
            },
        );

        // Serial fold in arrival order: the only place breakers mutate.
        for (slot_idx, slot) in slots.into_iter().enumerate() {
            let exec = slot.expect("wave slot left unfilled");
            let request = &wave[slot_idx];
            self.tick += 1;
            self.trace.extend(exec.trace);
            for event in &exec.events {
                let breaker = &mut self.breakers[event.component.index()];
                if let Some(transition) = breaker.record(self.tick, event.success) {
                    let verb = match transition {
                        BreakerTransition::Tripped => "tripped",
                        BreakerTransition::Reopened => "reopened",
                        BreakerTransition::Recovered => "recovered",
                    };
                    self.trace.push(format!(
                        "tick {}: breaker {} {}",
                        self.tick,
                        event.component.label(),
                        verb
                    ));
                    if transition != BreakerTransition::Recovered {
                        self.stats.breaker_trips += 1;
                        cem_obs::counter_add!("serve.breaker_trip", 1);
                    }
                }
            }
            self.stats.retries += exec.retries as u64;
            cem_obs::counter_add!("serve.retry", exec.retries);
            match &exec.outcome {
                Outcome::Served { tier, .. } => {
                    self.stats.served[tier.index()] += 1;
                    record_tier_span(*tier, exec.wall_nanos);
                }
                Outcome::DeadlineExceeded => {
                    self.stats.deadline_exceeded += 1;
                    cem_obs::counter_add!("serve.deadline_exceeded", 1);
                }
                Outcome::Shed => unreachable!("admitted requests are never shed"),
            }
            responses.push(Response {
                id: request.id,
                entity: request.entity,
                outcome: exec.outcome,
                cost_units: exec.cost_units,
                retries: exec.retries,
            });
        }
    }
}

/// Record a served request's wall time under its tier's span. The macro
/// route needs one literal per call site, so the four families are named
/// out longhand.
fn record_tier_span(tier: Tier, nanos: u64) {
    if !cem_obs::enabled() {
        return;
    }
    let registry = cem_obs::global();
    let stats = match tier {
        Tier::Full => registry.span_stats("serve.match.full"),
        Tier::Cached => registry.span_stats("serve.match.cached"),
        Tier::Hard => registry.span_stats("serve.match.hard"),
        Tier::Zero => registry.span_stats("serve.match.zero"),
    };
    stats.record(nanos);
}

/// What one tier attempt produced. `units` is the virtual cost the attempt
/// charged (tier cost, stretched by spikes, capped at the attempt timeout).
enum AttemptResult {
    Success { units: u64, ranking: Vec<usize> },
    /// Retriable: worker panic or attempt timeout.
    Transient { units: u64, reason: &'static str },
    /// Not retriable: degrade to the next tier.
    Degrade { units: u64, reason: &'static str },
}

/// Scoring verdict from inside the pool boundary.
enum TierScore {
    Ranked(Vec<usize>),
    Corrupt,
    Poisoned,
}

/// Pure per-request pipeline: no shared mutable state, all decisions off
/// the virtual clock. Runs on worker threads.
fn execute_request(
    config: &ServeConfig,
    index: &ServeIndex,
    request: &MatchRequest,
    allowed: [bool; Component::COUNT],
    faults: &dyn ServeFault,
) -> ExecOutcome {
    let started = Instant::now();
    let mut cost: u64 = 0;
    let mut retries: u32 = 0;
    let mut events: Vec<ComponentEvent> = Vec::new();
    let mut trace: Vec<String> = Vec::new();
    let mut outcome: Option<Outcome> = None;

    'ladder: for tier in Tier::ALL {
        if let Some(component) = tier.component() {
            if !allowed[component.index()] {
                trace.push(format!(
                    "req {}: skip {} (breaker {} open)",
                    request.id,
                    tier.label(),
                    component.label()
                ));
                continue;
            }
        }
        if cost >= config.deadline_units {
            trace.push(format!(
                "req {}: deadline before {} ({} units)",
                request.id,
                tier.label(),
                cost
            ));
            outcome = Some(Outcome::DeadlineExceeded);
            break 'ladder;
        }

        let backoff =
            Backoff::new(config.retry, splitmix64(request.seed, 0x7EE5 + tier.index() as u64));
        let mut attempt: u32 = 0;
        loop {
            match attempt_tier(config, index, request, tier, attempt, faults) {
                AttemptResult::Success { units, ranking } => {
                    cost += units;
                    if let Some(component) = tier.component() {
                        events.push(ComponentEvent { component, success: true });
                    }
                    outcome = Some(Outcome::Served { tier, ranking });
                    break 'ladder;
                }
                AttemptResult::Transient { units, reason } => {
                    cost += units;
                    if let Some(component) = tier.component() {
                        events.push(ComponentEvent { component, success: false });
                    }
                    trace.push(format!(
                        "req {}: {} attempt {} failed ({reason})",
                        request.id,
                        tier.label(),
                        attempt
                    ));
                    if attempt >= config.retry.max_retries {
                        trace.push(format!(
                            "req {}: {} retries exhausted, degrading",
                            request.id,
                            tier.label()
                        ));
                        break;
                    }
                    attempt += 1;
                    retries += 1;
                    let delay = backoff.delay(attempt);
                    cost += delay;
                    trace.push(format!(
                        "req {}: {} retry {attempt} after {delay} units",
                        request.id,
                        tier.label()
                    ));
                    if cost >= config.deadline_units {
                        trace.push(format!(
                            "req {}: deadline during {} backoff ({} units)",
                            request.id,
                            tier.label(),
                            cost
                        ));
                        outcome = Some(Outcome::DeadlineExceeded);
                        break 'ladder;
                    }
                }
                AttemptResult::Degrade { units, reason } => {
                    cost += units;
                    if let Some(component) = tier.component() {
                        events.push(ComponentEvent { component, success: false });
                    }
                    trace.push(format!(
                        "req {}: {} degraded ({reason})",
                        request.id,
                        tier.label()
                    ));
                    break;
                }
            }
        }
    }

    ExecOutcome {
        outcome: outcome.expect("ladder must resolve: the zero-shot floor is infallible"),
        cost_units: cost,
        retries,
        wall_nanos: started.elapsed().as_nanos() as u64,
        events,
        trace,
    }
}

/// One tier attempt: latency accounting, the `catch_unwind` pool boundary,
/// checksum verification, NaN-safe ranking, and the non-finite top-score
/// check. The zero tier skips fault injection entirely — it is the floor.
fn attempt_tier(
    config: &ServeConfig,
    index: &ServeIndex,
    request: &MatchRequest,
    tier: Tier,
    attempt: u32,
    faults: &dyn ServeFault,
) -> AttemptResult {
    let fault = if tier == Tier::Zero { None } else { faults.inject(request.id, tier, attempt) };

    let base = config.tier_cost[tier.index()];
    let stretched = match fault {
        Some(FaultKind::LatencySpike { units }) => base.saturating_add(units),
        _ => base,
    };
    if stretched > config.attempt_timeout_units {
        // Cancelled at the timeout boundary: only the timeout is charged.
        return AttemptResult::Transient {
            units: config.attempt_timeout_units,
            reason: "attempt timeout",
        };
    }

    let scored = catch_unwind(AssertUnwindSafe(|| {
        score_tier(index, request.entity, tier, fault, config.top_k)
    }));
    match scored {
        Err(_) => AttemptResult::Transient { units: stretched, reason: "worker panic" },
        Ok(TierScore::Corrupt) => {
            AttemptResult::Degrade { units: stretched, reason: "row checksum mismatch" }
        }
        Ok(TierScore::Poisoned) => {
            AttemptResult::Degrade { units: stretched, reason: "non-finite top score" }
        }
        Ok(TierScore::Ranked(ranking)) => AttemptResult::Success { units: stretched, ranking },
    }
}

/// Score `entity` at `tier` over a local copy of the index row, realising
/// the injected fault on the copy (the shared index stays pristine).
fn score_tier(
    index: &ServeIndex,
    entity: usize,
    tier: Tier,
    fault: Option<FaultKind>,
    top_k: usize,
) -> TierScore {
    if fault == Some(FaultKind::WorkerPanic) {
        panic!("{PANIC_MARKER}: entity {entity} tier {}", tier.label());
    }
    let mut row = index.row(tier, entity).to_vec();
    match fault {
        // A poisoned encoder emits NaN *output*: the checksum (which covers
        // the stored row, not the computation) has nothing to catch.
        Some(FaultKind::NanFeatures) => {
            for value in row.iter_mut() {
                *value = f32::NAN;
            }
        }
        // Storage damage: flip one bit of the local copy, then run the
        // integrity check every attempt runs.
        Some(FaultKind::CorruptCache) => {
            row[0] = f32::from_bits(row[0].to_bits() ^ 1);
            if !index.verify_row(tier, entity, &row) {
                return TierScore::Corrupt;
            }
        }
        _ => {
            if !index.verify_row(tier, entity, &row) {
                return TierScore::Corrupt;
            }
        }
    }
    let ranking = rank_row(&row, top_k);
    if let Some(&best) = ranking.first() {
        if !row[best].is_finite() {
            return TierScore::Poisoned;
        }
    }
    TierScore::Ranked(ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{silence_injected_panics, NoFaults};
    use cem_tensor::par::ThreadsGuard;

    /// 3 entities × 4 images; each tier's best image differs so tests can
    /// tell which tier served: full→0, cached→1, hard→2, zero→3.
    fn index() -> ServeIndex {
        let peaked = |best: usize| {
            let mut m = Vec::new();
            for e in 0..3 {
                for i in 0..4 {
                    m.push(if i == best { 9.0 + e as f32 } else { i as f32 * 0.1 });
                }
            }
            m
        };
        ServeIndex::new(3, 4, [peaked(0), peaked(1), peaked(2), peaked(3)])
    }

    fn config() -> ServeConfig {
        ServeConfig { top_k: 4, wave: 4, ..ServeConfig::default() }
    }

    /// Inject `kind` into every attempt of `tier` for request ids below
    /// `until_id`.
    struct TierFault {
        tier: Tier,
        kind: FaultKind,
        until_id: u64,
    }

    impl ServeFault for TierFault {
        fn inject(&self, request_id: u64, tier: Tier, _attempt: u32) -> Option<FaultKind> {
            (tier == self.tier && request_id < self.until_id).then_some(self.kind)
        }
    }

    #[test]
    fn clean_traffic_serves_everything_from_the_full_tier() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let requests = MatchRequest::stream(8, 3, 7);
        let responses = service.run(&requests, &NoFaults);
        assert_eq!(responses.len(), 8);
        for (request, response) in requests.iter().zip(&responses) {
            assert_eq!(response.id, request.id);
            match &response.outcome {
                Outcome::Served { tier, ranking } => {
                    assert_eq!(*tier, Tier::Full);
                    assert_eq!(ranking[0], 0, "full tier peaks at image 0");
                }
                other => panic!("expected served, got {other:?}"),
            }
        }
        assert_eq!(service.stats().served[Tier::Full.index()], 8);
        assert_eq!(service.stats().retries, 0);
    }

    #[test]
    fn corruption_degrades_to_the_cached_tier_without_retrying() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::CorruptCache, until_id: 1 };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        match &responses[0].outcome {
            Outcome::Served { tier, ranking } => {
                assert_eq!(*tier, Tier::Cached);
                assert_eq!(ranking[0], 1, "cached tier peaks at image 1");
            }
            other => panic!("expected cached-tier serve, got {other:?}"),
        }
        assert_eq!(responses[0].retries, 0, "corruption must not retry");
    }

    #[test]
    fn nan_poisoning_degrades_and_never_serves_garbage() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::NanFeatures, until_id: 4 };
        for response in service.run(&MatchRequest::stream(4, 3, 7), &fault) {
            assert_eq!(response.outcome.served_tier(), Some(Tier::Cached));
        }
    }

    #[test]
    fn panics_are_retried_then_degrade() {
        silence_injected_panics();
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 1 };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Cached));
        assert_eq!(responses[0].retries, config().retry.max_retries, "panic retries to the cap");
    }

    #[test]
    fn repeated_failures_trip_the_breaker_and_skip_the_tier() {
        silence_injected_panics();
        let index = index();
        let mut service = MatchService::new(
            ServeConfig { wave: 1, ..config() },
            &index,
        );
        // Enough panicking requests to blow the failure threshold, then a
        // long clean tail so the cooldown (8..=12 ticks) can elapse and a
        // probe can recover the tier.
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 2 };
        let requests = MatchRequest::stream(24, 3, 7);
        let responses = service.run(&requests, &fault);
        assert!(service.breaker_trips(Component::SoftEncoder) >= 1);
        assert!(service.stats().breaker_trips >= 1);
        // ...after which clean requests still degrade (tier skipped) until
        // the cooldown elapses and a probe recovers the tier.
        let skipped = service.trace().iter().any(|l| l.contains("skip full"));
        assert!(skipped, "expected breaker-open skips in {:?}", service.trace());
        let recovered = service.trace().iter().any(|l| l.contains("breaker soft_encoder recovered"));
        assert!(recovered, "expected a probe recovery in {:?}", service.trace());
        // Once recovered, the tail of the stream serves from full again.
        assert_eq!(responses.last().unwrap().outcome.served_tier(), Some(Tier::Full));
    }

    #[test]
    fn deadline_exhaustion_resolves_instead_of_hanging() {
        let index = index();
        let config = ServeConfig {
            deadline_units: 500,
            attempt_timeout_units: 450,
            tier_cost: [400, 400, 400, 400],
            ..config()
        };
        let mut service = MatchService::new(config, &index);
        // Full degrades on corruption (400 units), cached costs 400 more:
        // the deadline (500) fires before hard.
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::CorruptCache, until_id: 1 };
        let fault_cached = TierFault { tier: Tier::Cached, kind: FaultKind::CorruptCache, until_id: 1 };
        struct Both<'a>(&'a TierFault, &'a TierFault);
        impl ServeFault for Both<'_> {
            fn inject(&self, id: u64, tier: Tier, attempt: u32) -> Option<FaultKind> {
                self.0.inject(id, tier, attempt).or_else(|| self.1.inject(id, tier, attempt))
            }
        }
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &Both(&fault, &fault_cached));
        assert_eq!(responses[0].outcome, Outcome::DeadlineExceeded);
        assert_eq!(service.stats().deadline_exceeded, 1);
    }

    #[test]
    fn overload_sheds_the_tail_deterministically() {
        let index = index();
        let mut service =
            MatchService::new(ServeConfig { max_queue_depth: 3, ..config() }, &index);
        let responses = service.run(&MatchRequest::stream(5, 3, 7), &NoFaults);
        assert_eq!(service.stats().shed, 2);
        assert_eq!(service.stats().admitted, 3);
        assert_eq!(responses[3].outcome, Outcome::Shed);
        assert_eq!(responses[4].outcome, Outcome::Shed);
        assert!(responses[..3].iter().all(|r| matches!(r.outcome, Outcome::Served { .. })));
    }

    #[test]
    fn responses_and_traces_are_identical_at_one_and_four_threads() {
        silence_injected_panics();
        let index = index();
        let requests = MatchRequest::stream(40, 3, 11);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 9 };
        let run_with = |threads: usize| {
            let _guard = ThreadsGuard::new(threads);
            let mut service = MatchService::new(ServeConfig { wave: 8, ..config() }, &index);
            let responses = service.run(&requests, &fault);
            (responses, service.trace().to_vec(), service.stats().clone())
        };
        let (r1, t1, s1) = run_with(1);
        let (r4, t4, s4) = run_with(4);
        assert_eq!(r1, r4, "responses must be bit-identical across thread counts");
        assert_eq!(t1, t4, "breaker/retry traces must be identical across thread counts");
        assert_eq!(s1, s4);
    }

    #[test]
    fn latency_spikes_time_out_and_burn_bounded_budget() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault {
            tier: Tier::Full,
            kind: FaultKind::LatencySpike { units: 10_000 },
            until_id: 1,
        };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        // Spike exceeds the attempt timeout on every try: retried, then
        // degraded to cached.
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Cached));
        assert_eq!(responses[0].retries, config().retry.max_retries);
        let timeout_charge = config().attempt_timeout_units
            * (config().retry.max_retries as u64 + 1);
        assert!(responses[0].cost_units >= timeout_charge, "timeouts must charge the clock");
    }

    #[test]
    fn mild_spikes_slow_the_request_but_still_serve_full() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault {
            tier: Tier::Full,
            kind: FaultKind::LatencySpike { units: 100 },
            until_id: 1,
        };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Full));
        assert_eq!(responses[0].cost_units, config().tier_cost[0] + 100);
    }
}
