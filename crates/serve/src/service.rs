//! The embedded matching service: admission control, wave-parallel
//! execution, deadlines, retries, breakers, and the degradation ladder.
//!
//! # Execution model
//!
//! Admitted requests drain in **waves** of `config.wave`. At each wave
//! boundary the breakers advance (`Open` → `HalfOpen` when their cooldown
//! elapses) and their states are snapshotted; every request in the wave
//! executes against that frozen snapshot on the `cem_tensor::par` worker
//! pool. When the wave joins, each request's component observations fold
//! into the breakers **in arrival order**. Workers therefore never mutate
//! shared state, and the fold is a serial left-to-right reduction — which
//! is why responses, breaker transitions, and retry traces are bit-identical
//! at 1 and N threads.
//!
//! A `HalfOpen` component admits exactly one probe per wave: slot 0. Every
//! other slot treats the component as open and degrades past its tier.
//!
//! # Two front doors
//!
//! * [`MatchService::run`] — **closed-loop burst**: a batch of requests is
//!   all offered at once, the tail past `max_queue_depth` is shed, waves
//!   drain in request order with the full deadline budget each.
//! * [`MatchService::run_open_loop`] — **open-loop schedule**: arrivals
//!   carry their own virtual timestamps and the clock advances `wave_units`
//!   per wave whether or not the service keeps up. Arrivals park in a
//!   bounded EDF [`AdmissionQueue`]; overflow is shed queue-full, aged-out
//!   requests are shed [`Outcome::Expired`], and the
//!   [`BrownoutController`] caps the tier ladder per wave so a saturated
//!   service trades ranking quality for throughput instead of missing
//!   deadlines.
//!
//! # Hot-swap
//!
//! The service scores against an [`IndexSource`]: a borrowed static index
//! or an owned, numbered [`Generation`]. A staged generation promotes only
//! **at wave boundaries**, so a wave is entirely one generation — in-flight
//! requests are never dropped or scored against mixed indices. Every
//! [`Response`] carries the generation id it was scored against.
//!
//! # Request pipeline
//!
//! Each request walks the tier ladder (full → cached → hard → zero) from
//! the brownout cap down. Between stages it checks its remaining
//! virtual-unit budget and skips tiers whose attempt cost cannot fit. Per
//! tier it runs a bounded retry loop: transient failures (worker panic
//! caught via `catch_unwind` at the pool boundary, attempt timeouts from
//! latency spikes) back off with seeded jitter and retry; non-transient
//! failures (NaN-poisoned scores, checksum-detected corruption) degrade to
//! the next tier immediately. The zero-shot floor ignores injected faults
//! and its NaN-safe ranking always returns a permutation, so every executed
//! request resolves as served or deadline-exceeded — never a process abort.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crossem::matcher::rank_row;

use crate::breaker::{BreakerState, BreakerTransition, CircuitBreaker, Component};
use crate::brownout::{BrownoutController, BrownoutShift, WaveObservation};
use crate::config::ServeConfig;
use crate::fault::{FaultKind, ServeFault, PANIC_MARKER};
use crate::hotswap::{Generation, SwapError};
use crate::queue::AdmissionQueue;
use crate::request::{Arrival, ComponentEvent, ExecOutcome, MatchRequest, Outcome, Response};
use crate::retry::{splitmix64, Backoff};
use crate::shard::{ShardRanking, ShardedIndex};
use crate::tiers::{ServeIndex, Tier};

/// Aggregate counters over everything a service instance has processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    pub admitted: u64,
    /// Requests rejected at admission (burst tail drop or queue-full).
    pub shed: u64,
    /// Requests shed from the queue because their remaining budget could no
    /// longer cover the cheapest tier (open-loop only).
    pub expired: u64,
    /// Served-response count per tier, ladder order.
    pub served: [u64; Tier::COUNT],
    pub deadline_exceeded: u64,
    /// Executed requests that resolved with a broken scheduling invariant
    /// ([`Outcome::InternalError`]). Always zero in a healthy service.
    pub internal_errors: u64,
    /// Total retries across all requests and tiers.
    pub retries: u64,
    /// Total breaker trips (Closed→Open and HalfOpen→Open).
    pub breaker_trips: u64,
    /// Waves executed (burst and open-loop, including idle open-loop waves).
    pub waves: u64,
    /// Open-loop waves spent at each brownout cap, ladder order. Index 0
    /// (`Full`) counts un-browned-out waves.
    pub brownout_waves: [u64; Tier::COUNT],
    /// Generations promoted into service.
    pub hotswap_promotes: u64,
    /// Incoming generations rejected (unreadable, stale, or mis-shaped).
    pub hotswap_rejects: u64,
    /// Wave slots handed a cluster-pruned candidate ranking by the shard
    /// probe pre-pass (they may still degrade below `Full` for other
    /// reasons; see `cem-serve::shard` / DESIGN.md §13).
    pub ann_requests: u64,
    /// Shard probe pre-passes that failed integrity checks and fell the
    /// whole wave back to the dense full-tier scan.
    pub shard_fallbacks: u64,
}

impl ServeStats {
    pub fn served_total(&self) -> u64 {
        self.served.iter().sum()
    }
}

/// What the service scores against: a borrowed static index (the simple
/// construction path) or an owned, hot-swappable [`Generation`].
enum IndexSource<'a> {
    Borrowed { index: &'a ServeIndex, shards: Option<&'a ShardedIndex> },
    Owned(Box<Generation>),
}

impl IndexSource<'_> {
    fn index(&self) -> &ServeIndex {
        match self {
            IndexSource::Borrowed { index, .. } => index,
            IndexSource::Owned(generation) => &generation.index,
        }
    }

    /// The cluster-pruned shard index riding alongside the dense tiers,
    /// when one was built for this generation.
    fn shards(&self) -> Option<&ShardedIndex> {
        match self {
            IndexSource::Borrowed { shards, .. } => *shards,
            IndexSource::Owned(generation) => generation.shards.as_ref(),
        }
    }

    /// Generation id responses are tagged with; `0` for a borrowed index.
    fn generation(&self) -> u64 {
        match self {
            IndexSource::Borrowed { .. } => 0,
            IndexSource::Owned(generation) => generation.id,
        }
    }
}

/// One dequeued request ready for a wave: the virtual budget it has left
/// and the units it already spent parked in the admission queue.
#[derive(Debug, Clone, Copy)]
struct WaveSlot {
    request: MatchRequest,
    /// Remaining virtual budget for execution.
    budget: u64,
    /// Units spent queued before this wave.
    queue_units: u64,
}

/// The embedded matching service. Owns the breakers, the brownout
/// controller, and the fold clock; scores against an [`IndexSource`].
pub struct MatchService<'a> {
    config: ServeConfig,
    source: IndexSource<'a>,
    breakers: [CircuitBreaker; Component::COUNT],
    /// Requests folded so far — the deterministic clock breakers run on.
    tick: u64,
    stats: ServeStats,
    trace: Vec<String>,
    brownout: BrownoutController,
    /// A generation staged for promotion at the next wave boundary.
    staged: Option<Generation>,
    /// Mid-run swaps scheduled by open-loop wave index.
    swaps: Vec<(u64, Result<Generation, SwapError>)>,
}

impl<'a> MatchService<'a> {
    pub fn new(config: ServeConfig, index: &'a ServeIndex) -> Self {
        Self::build(config, IndexSource::Borrowed { index, shards: None })
    }

    /// Like [`MatchService::new`], but full-tier waves probe `shards` (the
    /// cluster-pruned ANN index) instead of dense-scanning the gallery.
    /// The dense tiers remain the verify/fallback path: a shard integrity
    /// failure falls the wave back to the dense scan.
    pub fn with_shards(
        config: ServeConfig,
        index: &'a ServeIndex,
        shards: &'a ShardedIndex,
    ) -> Self {
        assert_eq!(
            (index.entities(), index.images()),
            (shards.entities(), shards.images()),
            "shard index must cover the same catalogue as the dense tiers"
        );
        Self::build(config, IndexSource::Borrowed { index, shards: Some(shards) })
    }

    /// Construct around an owned generation, enabling zero-downtime
    /// hot-swap ([`MatchService::stage`] / [`MatchService::schedule_swap`]).
    pub fn with_generation(config: ServeConfig, generation: Generation) -> MatchService<'static> {
        MatchService::build(config, IndexSource::Owned(Box::new(generation)))
    }

    fn build(config: ServeConfig, source: IndexSource<'a>) -> MatchService<'a> {
        config.validate();
        let breakers =
            Component::ALL.map(|c| CircuitBreaker::new(config.breaker, config.seed, c));
        let brownout = BrownoutController::new(config.brownout);
        MatchService {
            config,
            source,
            breakers,
            tick: 0,
            stats: ServeStats::default(),
            trace: Vec::new(),
            brownout,
            staged: None,
            swaps: Vec::new(),
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The deterministic event trace: admission sheds, retries,
    /// degradations, breaker transitions, brownout shifts, swap events.
    /// No wall-clock content.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    pub fn breaker_state(&self, component: Component) -> BreakerState {
        self.breakers[component.index()].state()
    }

    pub fn breaker_trips(&self, component: Component) -> u64 {
        self.breakers[component.index()].trips()
    }

    /// The index currently serving.
    pub fn index(&self) -> &ServeIndex {
        self.source.index()
    }

    /// The generation currently serving (`0` while borrowing a static
    /// index).
    pub fn generation(&self) -> u64 {
        self.source.generation()
    }

    /// The richest tier the brownout controller currently allows.
    pub fn brownout_cap(&self) -> Tier {
        self.brownout.cap()
    }

    /// Stage `generation` for promotion at the next wave boundary. Stale
    /// ids and catalogue-shape mismatches are rejected on the spot
    /// (`serve.hotswap.reject`); the serving generation keeps answering
    /// either way.
    pub fn stage(&mut self, generation: Generation) -> Result<(), SwapError> {
        let current = self.source.index();
        let expected = (current.entities(), current.images());
        let found = (generation.index.entities(), generation.index.images());
        if expected != found {
            let err = SwapError::ShapeMismatch { expected, found };
            self.reject_swap(&err);
            return Err(err);
        }
        let current_id =
            self.staged.as_ref().map(|g| g.id).unwrap_or(0).max(self.source.generation());
        if generation.id <= current_id {
            let err = SwapError::StaleGeneration { current: current_id, incoming: generation.id };
            self.reject_swap(&err);
            return Err(err);
        }
        self.trace.push(format!("generation {} staged", generation.id));
        self.staged = Some(generation);
        Ok(())
    }

    /// Feed the service the result of an out-of-band generation load: `Ok`
    /// stages it, `Err` (CRC-rejected container, bad schema, …) is counted
    /// as a rejected swap. Returns whether the generation was staged.
    pub fn offer_swap(&mut self, incoming: Result<Generation, SwapError>) -> bool {
        match incoming {
            Ok(generation) => self.stage(generation).is_ok(),
            Err(err) => {
                self.reject_swap(&err);
                false
            }
        }
    }

    /// Schedule a swap to land at open-loop wave `at_wave` — the mid-run
    /// hot-swap drills use this to promote a generation under load.
    pub fn schedule_swap(&mut self, at_wave: u64, incoming: Result<Generation, SwapError>) {
        self.swaps.push((at_wave, incoming));
    }

    /// Promote the staged generation, if any. Runs automatically at wave
    /// boundaries; public so burst-mode callers can promote between runs.
    /// Returns whether a promotion happened.
    pub fn promote_staged(&mut self) -> bool {
        match self.staged.take() {
            Some(generation) => {
                self.trace.push(format!("generation {} promoted", generation.id));
                self.stats.hotswap_promotes += 1;
                cem_obs::counter_add!("serve.hotswap.promote", 1);
                self.source = IndexSource::Owned(Box::new(generation));
                true
            }
            None => false,
        }
    }

    fn reject_swap(&mut self, err: &SwapError) {
        self.stats.hotswap_rejects += 1;
        cem_obs::counter_add!("serve.hotswap.reject", 1);
        self.trace.push(format!("hot-swap rejected: {err}"));
    }

    fn shed_response(&self, request: &MatchRequest, outcome: Outcome, queue_units: u64) -> Response {
        Response {
            id: request.id,
            entity: request.entity,
            outcome,
            cost_units: 0,
            queue_units,
            retries: 0,
            generation: self.source.generation(),
        }
    }

    /// Process one closed-loop burst. Requests beyond `max_queue_depth`
    /// are shed at admission; the rest execute in waves with the full
    /// deadline budget each. Responses come back in request order.
    pub fn run(&mut self, requests: &[MatchRequest], faults: &dyn ServeFault) -> Vec<Response> {
        let admitted = requests.len().min(self.config.max_queue_depth);
        self.stats.admitted += admitted as u64;
        cem_obs::counter_add!("serve.admit", admitted as u64);
        for request in &requests[admitted..] {
            self.stats.shed += 1;
            cem_obs::counter_add!("serve.shed", 1);
            self.trace.push(format!(
                "req {}: shed at admission (queue depth {})",
                request.id, self.config.max_queue_depth
            ));
        }

        let mut responses = Vec::with_capacity(requests.len());
        let mut wave_start = 0;
        while wave_start < admitted {
            // A staged generation promotes at the wave boundary, never
            // inside a wave.
            self.promote_staged();
            let end = (wave_start + self.config.wave).min(admitted);
            let wave: Vec<WaveSlot> = requests[wave_start..end]
                .iter()
                .map(|&request| WaveSlot {
                    request,
                    budget: self.config.deadline_units,
                    queue_units: 0,
                })
                .collect();
            self.run_wave(&wave, Tier::Full, faults, &mut responses);
            wave_start = end;
        }
        self.promote_staged();

        for request in &requests[admitted..] {
            responses.push(self.shed_response(request, Outcome::Shed, 0));
        }
        responses
    }

    /// Drive an **open-loop** arrival schedule (sorted by arrival tick).
    /// The clock advances `wave_units` per wave whether or not the service
    /// keeps up; overflow arrivals are shed queue-full, aged-out queue
    /// entries are shed [`Outcome::Expired`], the brownout controller caps
    /// the ladder per wave, and scheduled swaps promote at their wave
    /// boundary. Responses come back in completion order.
    pub fn run_open_loop(&mut self, arrivals: &[Arrival], faults: &dyn ServeFault) -> Vec<Response> {
        assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "open-loop arrivals must be sorted by arrival tick"
        );
        let cheapest = self.config.cheapest_tier_cost();
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let mut responses = Vec::with_capacity(arrivals.len());
        let mut next = 0;
        let mut clock: u64 = 0;
        let mut wave_idx: u64 = 0;
        // The brownout controller folds the *previous* wave's outcomes at
        // each boundary; these carry them across the loop iteration.
        let mut last_missed: u64 = 0;
        let mut last_completed: u64 = 0;

        loop {
            // 1. Admit every arrival due by now; tail-drop past capacity.
            while next < arrivals.len() && arrivals[next].at <= clock {
                let arrival = arrivals[next];
                next += 1;
                match queue.offer(arrival.request, arrival.at, self.config.deadline_units) {
                    Ok(()) => {
                        self.stats.admitted += 1;
                        cem_obs::counter_add!("serve.admit", 1);
                    }
                    Err(_) => {
                        self.stats.shed += 1;
                        cem_obs::counter_add!("serve.shed", 1);
                        self.trace.push(format!(
                            "req {}: shed at admission (queue full at {})",
                            arrival.request.id, self.config.queue_capacity
                        ));
                        responses.push(self.shed_response(&arrival.request, Outcome::Shed, 0));
                    }
                }
            }
            if next >= arrivals.len() && queue.is_empty() {
                break;
            }

            // 2. Scheduled mid-run swaps land at their wave boundary; a
            // staged generation promotes before the wave executes.
            let mut later = Vec::new();
            for (at_wave, incoming) in std::mem::take(&mut self.swaps) {
                if at_wave <= wave_idx {
                    self.offer_swap(incoming);
                } else {
                    later.push((at_wave, incoming));
                }
            }
            self.swaps = later;
            self.promote_staged();

            // 3. Age-based expiry: shed whatever can no longer afford even
            // the cheapest tier, instead of burning a wave slot on it.
            let mut expired_now: u64 = 0;
            for queued in queue.expire(clock, cheapest) {
                expired_now += 1;
                self.stats.expired += 1;
                cem_obs::counter_add!("serve.expired", 1);
                self.trace.push(format!(
                    "req {}: expired in queue (waited {}, remaining {} < cheapest {})",
                    queued.request.id,
                    queued.waited(clock),
                    queued.remaining(clock),
                    cheapest
                ));
                responses.push(self.shed_response(
                    &queued.request,
                    Outcome::Expired,
                    queued.waited(clock),
                ));
            }

            cem_obs::gauge_set!("serve.queue_depth", queue.len() as f64);

            // 4. Brownout: previous wave's misses plus this boundary's
            // expiries, against the current queue depth.
            let shift = self.brownout.observe(WaveObservation {
                queue_depth: queue.len(),
                queue_capacity: self.config.queue_capacity,
                missed: last_missed + expired_now,
                completed: last_completed + expired_now,
            });
            if let Some(shift) = shift {
                self.trace.push(match shift {
                    BrownoutShift::Demoted { from, to } => format!(
                        "wave {wave_idx}: brownout demoted {} -> {}",
                        from.label(),
                        to.label()
                    ),
                    BrownoutShift::Promoted { from, to } => format!(
                        "wave {wave_idx}: brownout promoted {} -> {}",
                        from.label(),
                        to.label()
                    ),
                });
            }
            let cap = self.brownout.cap();
            self.stats.brownout_waves[cap.index()] += 1;
            record_brownout_wave(cap);

            // 5. Dequeue as many EDF-first requests as the wave's work
            // budget can execute at the capped tier — the mechanism by
            // which browning out raises sustainable throughput.
            let per_request = self.config.tier_cost[cap.index()].max(1);
            let fits = (self.config.wave_budget_units() / per_request).max(1) as usize;
            let batch = queue.take(self.config.wave.min(fits));
            let slots: Vec<WaveSlot> = batch
                .iter()
                .map(|q| WaveSlot {
                    request: q.request,
                    budget: q.remaining(clock),
                    queue_units: q.waited(clock),
                })
                .collect();
            let before = responses.len();
            self.run_wave(&slots, cap, faults, &mut responses);
            last_completed = (responses.len() - before) as u64;
            last_missed = responses[before..]
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::DeadlineExceeded))
                .count() as u64;

            clock = clock.saturating_add(self.config.wave_units);
            wave_idx += 1;
        }

        // Swaps scheduled past the end of the run still land.
        for (_, incoming) in std::mem::take(&mut self.swaps) {
            self.offer_swap(incoming);
        }
        self.promote_staged();
        responses
    }

    fn run_wave(
        &mut self,
        wave: &[WaveSlot],
        cap: Tier,
        faults: &dyn ServeFault,
        responses: &mut Vec<Response>,
    ) {
        self.stats.waves += 1;
        for breaker in &mut self.breakers {
            breaker.refresh(self.tick);
        }
        let states: [BreakerState; Component::COUNT] =
            std::array::from_fn(|i| self.breakers[i].state());

        // Shard probe pre-pass: slots that will attempt the full tier get a
        // cluster-pruned candidate ranking, scored as one coalesced batch
        // per probed cluster. Probe decisions are pure functions of
        // (wave, breaker snapshot, config), and the batched GEMM is
        // bit-identical to per-request scoring, so replay determinism is
        // untouched. A shard integrity failure falls the whole wave back to
        // the dense scan — the verify/fallback tier.
        let mut ann: Vec<Option<ShardRanking>> = wave.iter().map(|_| None).collect();
        if cap == Tier::Full {
            if let Some(shards) = self.source.shards() {
                let soft = states[Component::SoftEncoder.index()];
                let eligible: Vec<usize> = (0..wave.len())
                    .filter(|&slot| match soft {
                        BreakerState::Closed => true,
                        BreakerState::Open => false,
                        // The half-open probe slot is the only full-tier
                        // attempt this wave; everyone else degrades anyway.
                        BreakerState::HalfOpen => slot == 0,
                    })
                    .collect();
                if !eligible.is_empty() {
                    let entities: Vec<usize> =
                        eligible.iter().map(|&slot| wave[slot].request.entity).collect();
                    match shards.score_wave(
                        &entities,
                        self.config.nprobe,
                        self.config.min_batch,
                        self.config.top_k,
                        cem_tensor::par::max_threads(),
                    ) {
                        Ok(score) => {
                            self.stats.ann_requests += eligible.len() as u64;
                            cem_obs::counter_add!("serve.probe.requests", eligible.len() as u64);
                            for (slot, ranking) in eligible.into_iter().zip(score.rankings) {
                                ann[slot] = Some(ranking);
                            }
                        }
                        Err(err) => {
                            self.stats.shard_fallbacks += 1;
                            cem_obs::counter_add!("serve.probe.fallback", 1);
                            self.trace.push(format!(
                                "wave shard probe failed ({err}), dense fallback"
                            ));
                        }
                    }
                }
            }
        }

        // Parallel execution against the frozen breaker snapshot and one
        // frozen index borrow: a wave is entirely one generation. Slots are
        // plain data; `par_chunks_mut` hands each worker a disjoint block.
        let mut slots: Vec<Option<ExecOutcome>> = wave.iter().map(|_| None).collect();
        let config = &self.config;
        let index = self.source.index();
        let generation = self.source.generation();
        let ann = &ann;
        cem_tensor::par::par_chunks_mut(
            &mut slots,
            1,
            cem_tensor::par::max_threads(),
            |start, block| {
                for (offset, slot) in block.iter_mut().enumerate() {
                    let slot_idx = start + offset;
                    let allowed: [bool; Component::COUNT] =
                        std::array::from_fn(|c| match states[c] {
                            BreakerState::Closed => true,
                            BreakerState::Open => false,
                            // One probe per wave: slot 0.
                            BreakerState::HalfOpen => slot_idx == 0,
                        });
                    let ws = &wave[slot_idx];
                    *slot = Some(execute_request(
                        config,
                        index,
                        &ws.request,
                        allowed,
                        faults,
                        ws.budget,
                        cap,
                        ann[slot_idx].as_ref(),
                    ));
                }
            },
        );

        // Serial fold in arrival order: the only place breakers mutate.
        for (slot_idx, slot) in slots.into_iter().enumerate() {
            let exec = slot.expect("wave slot left unfilled");
            let ws = &wave[slot_idx];
            self.tick += 1;
            self.trace.extend(exec.trace);
            for event in &exec.events {
                let breaker = &mut self.breakers[event.component.index()];
                if let Some(transition) = breaker.record(self.tick, event.success) {
                    let verb = match transition {
                        BreakerTransition::Tripped => "tripped",
                        BreakerTransition::Reopened => "reopened",
                        BreakerTransition::Recovered => "recovered",
                    };
                    self.trace.push(format!(
                        "tick {}: breaker {} {}",
                        self.tick,
                        event.component.label(),
                        verb
                    ));
                    if transition != BreakerTransition::Recovered {
                        self.stats.breaker_trips += 1;
                        cem_obs::counter_add!("serve.breaker_trip", 1);
                    }
                }
            }
            self.stats.retries += exec.retries as u64;
            cem_obs::counter_add!("serve.retry", exec.retries);
            let outcome = match exec.outcome {
                Outcome::Served { tier, ranking } => {
                    self.stats.served[tier.index()] += 1;
                    record_tier_span(tier, exec.wall_nanos);
                    Outcome::Served { tier, ranking }
                }
                Outcome::DeadlineExceeded => {
                    self.stats.deadline_exceeded += 1;
                    cem_obs::counter_add!("serve.deadline_exceeded", 1);
                    Outcome::DeadlineExceeded
                }
                // Execution can only produce served or deadline-exceeded;
                // anything else means a scheduling invariant broke. Surface
                // it as a typed error response plus a counter — a degraded
                // answer the caller can see, never a service panic.
                Outcome::Shed | Outcome::Expired | Outcome::InternalError => {
                    self.stats.internal_errors += 1;
                    cem_obs::counter_add!("serve.internal_error", 1);
                    self.trace.push(format!(
                        "req {}: internal error (unexpected execution outcome)",
                        ws.request.id
                    ));
                    Outcome::InternalError
                }
            };
            responses.push(Response {
                id: ws.request.id,
                entity: ws.request.entity,
                outcome,
                cost_units: exec.cost_units,
                queue_units: ws.queue_units,
                retries: exec.retries,
                generation,
            });
        }
    }
}

/// Record a served request's wall time under its tier's span. The macro
/// route needs one literal per call site, so the four families are named
/// out longhand.
fn record_tier_span(tier: Tier, nanos: u64) {
    if !cem_obs::enabled() {
        return;
    }
    let registry = cem_obs::global();
    let stats = match tier {
        Tier::Full => registry.span_stats("serve.match.full"),
        Tier::Cached => registry.span_stats("serve.match.cached"),
        Tier::Hard => registry.span_stats("serve.match.hard"),
        Tier::Zero => registry.span_stats("serve.match.zero"),
    };
    stats.record(nanos);
}

/// Count one open-loop wave spent at brownout cap `cap` (same
/// literal-per-rung pattern as [`record_tier_span`]).
fn record_brownout_wave(cap: Tier) {
    if !cem_obs::enabled() {
        return;
    }
    let registry = cem_obs::global();
    let counter = match cap {
        Tier::Full => registry.counter("serve.brownout.full"),
        Tier::Cached => registry.counter("serve.brownout.cached"),
        Tier::Hard => registry.counter("serve.brownout.hard"),
        Tier::Zero => registry.counter("serve.brownout.zero"),
    };
    counter.add(1);
}

/// What one tier attempt produced. `units` is the virtual cost the attempt
/// charged (tier cost, stretched by spikes, capped at the attempt timeout).
enum AttemptResult {
    Success { units: u64, ranking: Vec<usize> },
    /// Retriable: worker panic or attempt timeout.
    Transient { units: u64, reason: &'static str },
    /// Not retriable: degrade to the next tier.
    Degrade { units: u64, reason: &'static str },
}

/// Scoring verdict from inside the pool boundary.
enum TierScore {
    Ranked(Vec<usize>),
    Corrupt,
    Poisoned,
}

/// Pure per-request pipeline: no shared mutable state, all decisions off
/// the virtual clock. Runs on worker threads. `budget` is the request's
/// remaining virtual allowance (full deadline in burst mode, deadline
/// minus queue wait in open-loop mode); `cap` is the richest tier the
/// brownout controller allows this wave.
#[allow(clippy::too_many_arguments)]
fn execute_request(
    config: &ServeConfig,
    index: &ServeIndex,
    request: &MatchRequest,
    allowed: [bool; Component::COUNT],
    faults: &dyn ServeFault,
    budget: u64,
    cap: Tier,
    ann: Option<&ShardRanking>,
) -> ExecOutcome {
    let started = Instant::now();
    let mut cost: u64 = 0;
    let mut retries: u32 = 0;
    let mut events: Vec<ComponentEvent> = Vec::new();
    let mut trace: Vec<String> = Vec::new();
    let mut outcome: Option<Outcome> = None;

    'ladder: for tier in Tier::ALL {
        if tier.index() < cap.index() {
            trace.push(format!(
                "req {}: skip {} (brownout cap {})",
                request.id,
                tier.label(),
                cap.label()
            ));
            continue;
        }
        if let Some(component) = tier.component() {
            if !allowed[component.index()] {
                trace.push(format!(
                    "req {}: skip {} (breaker {} open)",
                    request.id,
                    tier.label(),
                    component.label()
                ));
                continue;
            }
        }
        if cost >= budget {
            trace.push(format!(
                "req {}: deadline before {} ({} units)",
                request.id,
                tier.label(),
                cost
            ));
            outcome = Some(Outcome::DeadlineExceeded);
            break 'ladder;
        }
        // Affordability: an attempt that cannot possibly finish inside the
        // remaining budget is skipped, not burned.
        let tier_cost = config.tier_cost[tier.index()];
        if cost.saturating_add(tier_cost) > budget {
            trace.push(format!(
                "req {}: skip {} (cost {tier_cost} over remaining budget {})",
                request.id,
                tier.label(),
                budget - cost
            ));
            continue;
        }

        let backoff =
            Backoff::new(config.retry, splitmix64(request.seed, 0x7EE5 + tier.index() as u64));
        let mut attempt: u32 = 0;
        loop {
            match attempt_tier(config, index, request, tier, attempt, faults, ann) {
                AttemptResult::Success { units, ranking } => {
                    cost += units;
                    if let Some(component) = tier.component() {
                        events.push(ComponentEvent { component, success: true });
                    }
                    outcome = Some(Outcome::Served { tier, ranking });
                    break 'ladder;
                }
                AttemptResult::Transient { units, reason } => {
                    cost += units;
                    if let Some(component) = tier.component() {
                        events.push(ComponentEvent { component, success: false });
                    }
                    trace.push(format!(
                        "req {}: {} attempt {} failed ({reason})",
                        request.id,
                        tier.label(),
                        attempt
                    ));
                    if attempt >= config.retry.max_retries {
                        trace.push(format!(
                            "req {}: {} retries exhausted, degrading",
                            request.id,
                            tier.label()
                        ));
                        break;
                    }
                    attempt += 1;
                    retries += 1;
                    let delay = backoff.delay(attempt);
                    cost += delay;
                    trace.push(format!(
                        "req {}: {} retry {attempt} after {delay} units",
                        request.id,
                        tier.label()
                    ));
                    if cost >= budget {
                        trace.push(format!(
                            "req {}: deadline during {} backoff ({} units)",
                            request.id,
                            tier.label(),
                            cost
                        ));
                        outcome = Some(Outcome::DeadlineExceeded);
                        break 'ladder;
                    }
                }
                AttemptResult::Degrade { units, reason } => {
                    cost += units;
                    if let Some(component) = tier.component() {
                        events.push(ComponentEvent { component, success: false });
                    }
                    trace.push(format!(
                        "req {}: {} degraded ({reason})",
                        request.id,
                        tier.label()
                    ));
                    break;
                }
            }
        }
    }

    // The ladder can run dry when every remaining rung was unaffordable —
    // equivalent to the deadline having already fired.
    let outcome = outcome.unwrap_or_else(|| {
        trace.push(format!("req {}: no affordable tier within budget {budget}", request.id));
        Outcome::DeadlineExceeded
    });

    ExecOutcome {
        outcome,
        cost_units: cost,
        retries,
        wall_nanos: started.elapsed().as_nanos() as u64,
        events,
        trace,
    }
}

/// One tier attempt: latency accounting, the `catch_unwind` pool boundary,
/// checksum verification, NaN-safe ranking, and the non-finite top-score
/// check. The zero tier skips fault injection entirely — it is the floor.
fn attempt_tier(
    config: &ServeConfig,
    index: &ServeIndex,
    request: &MatchRequest,
    tier: Tier,
    attempt: u32,
    faults: &dyn ServeFault,
    ann: Option<&ShardRanking>,
) -> AttemptResult {
    let fault = if tier == Tier::Zero { None } else { faults.inject(request.id, tier, attempt) };

    let base = config.tier_cost[tier.index()];
    let stretched = match fault {
        Some(FaultKind::LatencySpike { units }) => base.saturating_add(units),
        _ => base,
    };
    if stretched > config.attempt_timeout_units {
        // Cancelled at the timeout boundary: only the timeout is charged.
        return AttemptResult::Transient {
            units: config.attempt_timeout_units,
            reason: "attempt timeout",
        };
    }

    let scored = catch_unwind(AssertUnwindSafe(|| {
        score_tier(index, request.entity, tier, fault, config.top_k, ann)
    }));
    match scored {
        Err(_) => AttemptResult::Transient { units: stretched, reason: "worker panic" },
        Ok(TierScore::Corrupt) => {
            AttemptResult::Degrade { units: stretched, reason: "row checksum mismatch" }
        }
        Ok(TierScore::Poisoned) => {
            AttemptResult::Degrade { units: stretched, reason: "non-finite top score" }
        }
        Ok(TierScore::Ranked(ranking)) => AttemptResult::Success { units: stretched, ranking },
    }
}

/// Score `entity` at `tier` over a local copy of the index row, realising
/// the injected fault on the copy (the shared index stays pristine).
fn score_tier(
    index: &ServeIndex,
    entity: usize,
    tier: Tier,
    fault: Option<FaultKind>,
    top_k: usize,
    ann: Option<&ShardRanking>,
) -> TierScore {
    if fault == Some(FaultKind::WorkerPanic) {
        panic!("{PANIC_MARKER}: entity {entity} tier {}", tier.label());
    }
    // A cluster-pruned candidate ranking from the wave pre-pass replaces
    // the full tier's dense row scan. Injected faults still land on this
    // path — a poisoned encoder poisons probed scores the same way it
    // poisons a dense row, and cache corruption of the shard payload is
    // the integrity failure the stored CRCs exist to catch. An empty probe
    // result (all probed clusters empty) falls through to the dense scan.
    if tier == Tier::Full {
        if let Some(ranking) = ann {
            if !ranking.ids.is_empty() {
                match fault {
                    Some(FaultKind::NanFeatures) => return TierScore::Poisoned,
                    Some(FaultKind::CorruptCache) => return TierScore::Corrupt,
                    _ => {}
                }
                if !ranking.finite {
                    return TierScore::Poisoned;
                }
                return TierScore::Ranked(ranking.ids.clone());
            }
        }
    }
    let mut row = index.row(tier, entity).to_vec();
    match fault {
        // A poisoned encoder emits NaN *output*: the checksum (which covers
        // the stored row, not the computation) has nothing to catch.
        Some(FaultKind::NanFeatures) => {
            for value in row.iter_mut() {
                *value = f32::NAN;
            }
        }
        // Storage damage: flip one bit of the local copy, then run the
        // integrity check every attempt runs.
        Some(FaultKind::CorruptCache) => {
            row[0] = f32::from_bits(row[0].to_bits() ^ 1);
            if !index.verify_row(tier, entity, &row) {
                return TierScore::Corrupt;
            }
        }
        _ => {
            if !index.verify_row(tier, entity, &row) {
                return TierScore::Corrupt;
            }
        }
    }
    let ranking = rank_row(&row, top_k);
    if let Some(&best) = ranking.first() {
        if !row[best].is_finite() {
            return TierScore::Poisoned;
        }
    }
    TierScore::Ranked(ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brownout::BrownoutConfig;
    use crate::fault::{silence_injected_panics, NoFaults};
    use cem_tensor::par::ThreadsGuard;

    /// 3 entities × 4 images; each tier's best image differs so tests can
    /// tell which tier served: full→0, cached→1, hard→2, zero→3.
    fn index() -> ServeIndex {
        index_with(|best| best)
    }

    /// Like [`index`], but each tier's peak image is remapped through
    /// `peak` — lets hot-swap tests build a *distinguishable* second
    /// generation over the same catalogue shape.
    fn index_with(peak: impl Fn(usize) -> usize) -> ServeIndex {
        let peaked = |best: usize| {
            let mut m = Vec::new();
            for e in 0..3 {
                for i in 0..4 {
                    m.push(if i == best { 9.0 + e as f32 } else { i as f32 * 0.1 });
                }
            }
            m
        };
        ServeIndex::new(3, 4, [peaked(peak(0)), peaked(peak(1)), peaked(peak(2)), peaked(peak(3))])
    }

    fn config() -> ServeConfig {
        ServeConfig { top_k: 4, wave: 4, ..ServeConfig::default() }
    }

    fn arrivals(n: usize, gap: u64, seed: u64) -> Vec<Arrival> {
        MatchRequest::stream(n, 3, seed)
            .into_iter()
            .enumerate()
            .map(|(i, request)| Arrival { at: i as u64 * gap, request })
            .collect()
    }

    /// Inject `kind` into every attempt of `tier` for request ids below
    /// `until_id`.
    struct TierFault {
        tier: Tier,
        kind: FaultKind,
        until_id: u64,
    }

    impl ServeFault for TierFault {
        fn inject(&self, request_id: u64, tier: Tier, _attempt: u32) -> Option<FaultKind> {
            (tier == self.tier && request_id < self.until_id).then_some(self.kind)
        }
    }

    #[test]
    fn clean_traffic_serves_everything_from_the_full_tier() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let requests = MatchRequest::stream(8, 3, 7);
        let responses = service.run(&requests, &NoFaults);
        assert_eq!(responses.len(), 8);
        for (request, response) in requests.iter().zip(&responses) {
            assert_eq!(response.id, request.id);
            assert_eq!(response.generation, 0, "borrowed index serves generation 0");
            assert_eq!(response.queue_units, 0, "burst mode never queues");
            match &response.outcome {
                Outcome::Served { tier, ranking } => {
                    assert_eq!(*tier, Tier::Full);
                    assert_eq!(ranking[0], 0, "full tier peaks at image 0");
                }
                other => panic!("expected served, got {other:?}"),
            }
        }
        assert_eq!(service.stats().served[Tier::Full.index()], 8);
        assert_eq!(service.stats().retries, 0);
        assert_eq!(service.stats().internal_errors, 0);
        assert_eq!(service.stats().waves, 2);
    }

    #[test]
    fn corruption_degrades_to_the_cached_tier_without_retrying() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::CorruptCache, until_id: 1 };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        match &responses[0].outcome {
            Outcome::Served { tier, ranking } => {
                assert_eq!(*tier, Tier::Cached);
                assert_eq!(ranking[0], 1, "cached tier peaks at image 1");
            }
            other => panic!("expected cached-tier serve, got {other:?}"),
        }
        assert_eq!(responses[0].retries, 0, "corruption must not retry");
    }

    #[test]
    fn nan_poisoning_degrades_and_never_serves_garbage() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::NanFeatures, until_id: 4 };
        for response in service.run(&MatchRequest::stream(4, 3, 7), &fault) {
            assert_eq!(response.outcome.served_tier(), Some(Tier::Cached));
        }
    }

    #[test]
    fn panics_are_retried_then_degrade() {
        silence_injected_panics();
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 1 };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Cached));
        assert_eq!(responses[0].retries, config().retry.max_retries, "panic retries to the cap");
    }

    #[test]
    fn repeated_failures_trip_the_breaker_and_skip_the_tier() {
        silence_injected_panics();
        let index = index();
        let mut service = MatchService::new(
            ServeConfig { wave: 1, ..config() },
            &index,
        );
        // Enough panicking requests to blow the failure threshold, then a
        // long clean tail so the cooldown (8..=12 ticks) can elapse and a
        // probe can recover the tier.
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 2 };
        let requests = MatchRequest::stream(24, 3, 7);
        let responses = service.run(&requests, &fault);
        assert!(service.breaker_trips(Component::SoftEncoder) >= 1);
        assert!(service.stats().breaker_trips >= 1);
        // ...after which clean requests still degrade (tier skipped) until
        // the cooldown elapses and a probe recovers the tier.
        let skipped = service.trace().iter().any(|l| l.contains("skip full"));
        assert!(skipped, "expected breaker-open skips in {:?}", service.trace());
        let recovered = service.trace().iter().any(|l| l.contains("breaker soft_encoder recovered"));
        assert!(recovered, "expected a probe recovery in {:?}", service.trace());
        // Once recovered, the tail of the stream serves from full again.
        assert_eq!(responses.last().unwrap().outcome.served_tier(), Some(Tier::Full));
    }

    #[test]
    fn deadline_exhaustion_resolves_instead_of_hanging() {
        let index = index();
        let config = ServeConfig {
            deadline_units: 500,
            attempt_timeout_units: 450,
            tier_cost: [400, 400, 400, 400],
            ..config()
        };
        let mut service = MatchService::new(config, &index);
        // Full degrades on corruption (400 units); every later rung's cost
        // no longer fits the 500-unit budget, so the ladder runs dry.
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::CorruptCache, until_id: 1 };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        assert_eq!(responses[0].outcome, Outcome::DeadlineExceeded);
        assert_eq!(service.stats().deadline_exceeded, 1);
    }

    #[test]
    fn overload_sheds_the_tail_deterministically() {
        let index = index();
        let mut service =
            MatchService::new(ServeConfig { max_queue_depth: 3, ..config() }, &index);
        let responses = service.run(&MatchRequest::stream(5, 3, 7), &NoFaults);
        assert_eq!(service.stats().shed, 2);
        assert_eq!(service.stats().admitted, 3);
        assert_eq!(responses[3].outcome, Outcome::Shed);
        assert_eq!(responses[4].outcome, Outcome::Shed);
        assert!(responses[..3].iter().all(|r| matches!(r.outcome, Outcome::Served { .. })));
    }

    #[test]
    fn responses_and_traces_are_identical_at_one_and_four_threads() {
        silence_injected_panics();
        let index = index();
        let requests = MatchRequest::stream(40, 3, 11);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 9 };
        let run_with = |threads: usize| {
            let _guard = ThreadsGuard::new(threads);
            let mut service = MatchService::new(ServeConfig { wave: 8, ..config() }, &index);
            let responses = service.run(&requests, &fault);
            (responses, service.trace().to_vec(), service.stats().clone())
        };
        let (r1, t1, s1) = run_with(1);
        let (r4, t4, s4) = run_with(4);
        assert_eq!(r1, r4, "responses must be bit-identical across thread counts");
        assert_eq!(t1, t4, "breaker/retry traces must be identical across thread counts");
        assert_eq!(s1, s4);
    }

    #[test]
    fn latency_spikes_time_out_and_burn_bounded_budget() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault {
            tier: Tier::Full,
            kind: FaultKind::LatencySpike { units: 10_000 },
            until_id: 1,
        };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        // Spike exceeds the attempt timeout on every try: retried, then
        // degraded to cached.
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Cached));
        assert_eq!(responses[0].retries, config().retry.max_retries);
        let timeout_charge = config().attempt_timeout_units
            * (config().retry.max_retries as u64 + 1);
        assert!(responses[0].cost_units >= timeout_charge, "timeouts must charge the clock");
    }

    #[test]
    fn mild_spikes_slow_the_request_but_still_serve_full() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        let fault = TierFault {
            tier: Tier::Full,
            kind: FaultKind::LatencySpike { units: 100 },
            until_id: 1,
        };
        let responses = service.run(&MatchRequest::stream(1, 3, 7), &fault);
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Full));
        assert_eq!(responses[0].cost_units, config().tier_cost[0] + 100);
    }

    // ---- open loop ----

    #[test]
    fn open_loop_serves_a_light_schedule_and_tracks_queue_wait() {
        let index = index();
        // One arrival per wave (gap == wave_units): the queue never builds.
        let mut service = MatchService::new(config(), &index);
        let responses = service.run_open_loop(&arrivals(6, 400, 7), &NoFaults);
        assert_eq!(responses.len(), 6);
        for response in &responses {
            assert_eq!(response.outcome.served_tier(), Some(Tier::Full));
            assert_eq!(response.queue_units, 0, "an un-backlogged queue serves same-wave");
        }
        assert_eq!(service.stats().admitted, 6);
        assert_eq!(service.stats().shed + service.stats().expired, 0);
        assert_eq!(service.brownout_cap(), Tier::Full);
    }

    #[test]
    fn open_loop_sheds_queue_full_then_expires_the_backlog() {
        let index = index();
        let config = ServeConfig {
            deadline_units: 500,
            queue_capacity: 64,
            brownout: BrownoutConfig { enabled: false, ..BrownoutConfig::default() },
            ..config()
        };
        let mut service = MatchService::new(config, &index);
        // 100 arrivals at t=0 against capacity 64: 36 shed at admission.
        // Serving 4/wave at 400 units/wave, a 500-unit deadline expires the
        // backlog at the second boundary: waves 0 and 1 serve 8, the rest
        // age out.
        let responses = service.run_open_loop(&arrivals(100, 0, 7), &NoFaults);
        assert_eq!(responses.len(), 100, "every arrival gets a response");
        assert_eq!(service.stats().shed, 36);
        assert_eq!(service.stats().served_total(), 8);
        assert_eq!(service.stats().expired, 56);
        let expired: Vec<&Response> =
            responses.iter().filter(|r| r.outcome == Outcome::Expired).collect();
        assert_eq!(expired.len(), 56);
        assert!(expired.iter().all(|r| r.queue_units >= 800), "expiry happens after aging");
    }

    #[test]
    fn brownout_demotes_under_saturation_and_raises_throughput() {
        let index = index();
        let make = |enabled: bool| ServeConfig {
            wave: 32,
            queue_capacity: 64,
            // Tight enough that the full-tier drain rate (8 requests per
            // 400-unit wave) cannot clear a 64-deep backlog in time.
            deadline_units: 1_200,
            brownout: BrownoutConfig { enabled, ..BrownoutConfig::default() },
            ..config()
        };
        // 200 arrivals at t=0: the queue saturates instantly (occupancy
        // 1.0 ≥ high watermark), so the controller demotes to cached at
        // wave 0 — 26 requests/wave instead of 8 fit the work budget.
        let mut browned = MatchService::new(make(true), &index);
        browned.run_open_loop(&arrivals(200, 0, 7), &NoFaults);
        assert!(browned.stats().brownout_waves[Tier::Cached.index()] > 0);
        assert!(browned.stats().served[Tier::Cached.index()] > 0);
        assert!(
            browned.trace().iter().any(|l| l.contains("brownout demoted full -> cached")),
            "expected a demotion in {:?}",
            browned.trace()
        );

        let mut control = MatchService::new(make(false), &index);
        control.run_open_loop(&arrivals(200, 0, 7), &NoFaults);
        assert_eq!(control.brownout_cap(), Tier::Full);
        assert!(
            browned.stats().served_total() > control.stats().served_total(),
            "brownout must serve more of the burst ({} vs {})",
            browned.stats().served_total(),
            control.stats().served_total()
        );
        assert!(
            browned.stats().expired <= control.stats().expired,
            "brownout must not increase expiry"
        );
    }

    #[test]
    fn brownout_recovers_after_the_burst_drains() {
        let index = index();
        let config = ServeConfig {
            wave: 32,
            queue_capacity: 64,
            brownout: BrownoutConfig { recovery_waves: 2, ..BrownoutConfig::default() },
            ..config()
        };
        let mut service = MatchService::new(config, &index);
        // A saturating burst, then a long calm tail of one arrival per wave
        // so the controller sees consecutive calm boundaries.
        let mut schedule = arrivals(64, 0, 7);
        for (i, request) in MatchRequest::stream(12, 3, 8).into_iter().enumerate() {
            schedule.push(Arrival {
                at: 2_000 + i as u64 * 400,
                request: MatchRequest { id: 100 + i as u64, ..request },
            });
        }
        service.run_open_loop(&schedule, &NoFaults);
        assert!(
            service.trace().iter().any(|l| l.contains("brownout promoted")),
            "expected a promotion in {:?}",
            service.trace()
        );
        assert_eq!(service.brownout_cap(), Tier::Full, "calm tail must restore the cap");
    }

    #[test]
    fn hot_swap_promotes_at_a_wave_boundary_without_mixing() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        // Generation 1 peaks every tier one image later (mod 4) — a served
        // ranking betrays which generation scored it.
        let swapped = Generation::new(1, index_with(|best| (best + 1) % 4));
        service.schedule_swap(2, Ok(swapped));
        // One arrival per wave over 6 waves; the swap lands at wave 2.
        let responses = service.run_open_loop(&arrivals(6, 400, 7), &NoFaults);
        assert_eq!(service.stats().hotswap_promotes, 1);
        assert_eq!(service.generation(), 1);
        let mut last_generation = 0;
        for response in &responses {
            assert!(
                response.generation >= last_generation,
                "generations must promote monotonically, never mix backwards"
            );
            last_generation = response.generation;
            let expected_peak = if response.generation == 0 { 0 } else { 1 };
            match &response.outcome {
                Outcome::Served { tier: Tier::Full, ranking } => {
                    assert_eq!(
                        ranking[0], expected_peak,
                        "response must be scored entirely by its own generation"
                    );
                }
                other => panic!("expected full-tier serve, got {other:?}"),
            }
        }
        assert!(responses.iter().any(|r| r.generation == 0));
        assert!(responses.iter().any(|r| r.generation == 1));
    }

    #[test]
    fn corrupt_stale_and_misshaped_swaps_are_rejected() {
        let index = index();
        let mut service = MatchService::new(config(), &index);
        // A load failure (e.g. CRC-rejected container) is counted, not fatal.
        assert!(!service.offer_swap(Err(SwapError::Empty)));
        // A catalogue-shape mismatch is rejected.
        let wrong_shape = ServeIndex::new(2, 2, std::array::from_fn(|_| vec![0.0; 4]));
        assert!(matches!(
            service.stage(Generation::new(5, wrong_shape)),
            Err(SwapError::ShapeMismatch { .. })
        ));
        // Promote generation 2, then try to stage 2 again: stale.
        assert!(service.stage(Generation::new(2, index_with(|b| b))).is_ok());
        assert!(service.promote_staged());
        assert!(matches!(
            service.stage(Generation::new(2, index_with(|b| b))),
            Err(SwapError::StaleGeneration { current: 2, incoming: 2 })
        ));
        assert_eq!(service.stats().hotswap_rejects, 3);
        assert_eq!(service.stats().hotswap_promotes, 1);
        assert_eq!(service.generation(), 2, "rejections never disturb the serving generation");
    }

    #[test]
    fn open_loop_replay_is_identical_at_one_and_four_threads() {
        silence_injected_panics();
        let schedule = arrivals(120, 30, 11);
        let run_with = |threads: usize| {
            let _guard = ThreadsGuard::new(threads);
            let index = index();
            let config = ServeConfig {
                wave: 8,
                queue_capacity: 16,
                ..config()
            };
            let mut service = MatchService::new(config, &index);
            service.schedule_swap(4, Ok(Generation::new(1, index_with(|b| (b + 1) % 4))));
            service.schedule_swap(7, Err(SwapError::Empty));
            let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 9 };
            let responses = service.run_open_loop(&schedule, &fault);
            (responses, service.trace().to_vec(), service.stats().clone())
        };
        let (r1, t1, s1) = run_with(1);
        let (r4, t4, s4) = run_with(4);
        assert_eq!(r1, r4, "open-loop responses must be bit-identical across thread counts");
        assert_eq!(t1, t4, "open-loop traces must be identical across thread counts");
        assert_eq!(s1, s4);
        assert_eq!(s1.hotswap_promotes, 1);
        assert_eq!(s1.hotswap_rejects, 1);
    }

    // ---- shard-probed full tier ----

    /// Deterministic unit-normalised vectors (no external RNG in tests).
    fn vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(n * dim);
        for i in 0..n {
            let row: Vec<f32> = (0..dim)
                .map(|d| (splitmix64(seed, (i * dim + d) as u64) >> 40) as f32
                    / (1u64 << 24) as f32
                    - 0.5)
                .collect();
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            out.extend(row.into_iter().map(|v| v / norm));
        }
        out
    }

    /// A shard index plus a [`ServeIndex`] whose full-tier matrix is the
    /// shard panels' own dense scores — so at `nprobe = nclusters` the
    /// probed ranking and the dense scan are bit-identical.
    fn shard_fixture() -> (ServeIndex, ShardedIndex) {
        let (entities, images, dim, nclusters) = (6, 40, 8, 4);
        let queries = vectors(entities, dim, 5);
        let embeddings = vectors(images, dim, 6);
        let shards =
            ShardedIndex::build(queries, entities, &embeddings, images, dim, nclusters, 8, 7);
        let full = shards.dense_scores(1);
        let alt = |offset: f32| {
            (0..entities * images).map(|i| i as f32 * 0.01 + offset).collect::<Vec<f32>>()
        };
        let index = ServeIndex::new(entities, images, [full, alt(0.1), alt(0.2), alt(0.3)]);
        (index, shards)
    }

    fn shard_config() -> ServeConfig {
        ServeConfig { top_k: 10, wave: 4, nclusters: 4, nprobe: 4, ..ServeConfig::default() }
    }

    #[test]
    fn full_probe_shard_service_matches_the_dense_service_bitwise() {
        let (index, shards) = shard_fixture();
        let requests = MatchRequest::stream(16, shards.entities(), 7);

        let mut dense = MatchService::new(shard_config(), &index);
        let dense_responses = dense.run(&requests, &NoFaults);

        let mut probed = MatchService::with_shards(shard_config(), &index, &shards);
        let probed_responses = probed.run(&requests, &NoFaults);

        assert_eq!(
            probed_responses, dense_responses,
            "nprobe = nclusters over the same panels must reproduce the dense scan"
        );
        assert_eq!(probed.stats().ann_requests, 16);
        assert_eq!(probed.stats().shard_fallbacks, 0);
        assert_eq!(dense.stats().ann_requests, 0, "the dense service never probes");
    }

    #[test]
    fn corrupt_shards_fall_the_wave_back_to_the_dense_scan() {
        let (index, mut shards) = shard_fixture();
        let victim = (0..shards.nclusters()).find(|&c| !shards.shard(c).is_empty()).unwrap();
        shards.corrupt_shard_for_tests(victim);
        let requests = MatchRequest::stream(8, shards.entities(), 7);

        let mut dense = MatchService::new(shard_config(), &index);
        let dense_responses = dense.run(&requests, &NoFaults);

        let mut probed = MatchService::with_shards(shard_config(), &index, &shards);
        let probed_responses = probed.run(&requests, &NoFaults);

        assert_eq!(
            probed_responses, dense_responses,
            "a failed probe pre-pass must serve exactly what the dense scan serves"
        );
        assert!(probed.stats().shard_fallbacks >= 1);
        assert_eq!(probed.stats().ann_requests, 0);
        assert!(
            probed.trace().iter().any(|l| l.contains("dense fallback")),
            "expected a fallback note in {:?}",
            probed.trace()
        );
    }

    #[test]
    fn injected_faults_land_on_the_probed_path_too() {
        let (index, shards) = shard_fixture();
        // A poisoned encoder poisons probed scores exactly like dense rows:
        // the request degrades to cached instead of serving garbage.
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::NanFeatures, until_id: 4 };
        let mut service = MatchService::with_shards(shard_config(), &index, &shards);
        for response in service.run(&MatchRequest::stream(4, shards.entities(), 7), &fault) {
            assert_eq!(response.outcome.served_tier(), Some(Tier::Cached));
        }
        // Cache corruption on the probed path is an integrity failure.
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::CorruptCache, until_id: 1 };
        let mut service = MatchService::with_shards(shard_config(), &index, &shards);
        let responses = service.run(&MatchRequest::stream(1, shards.entities(), 7), &fault);
        assert_eq!(responses[0].outcome.served_tier(), Some(Tier::Cached));
        assert_eq!(responses[0].retries, 0, "corruption must not retry");
    }

    #[test]
    fn shard_probed_replay_is_identical_at_one_and_four_threads() {
        silence_injected_panics();
        let (index, shards) = shard_fixture();
        let requests = MatchRequest::stream(40, shards.entities(), 11);
        let fault = TierFault { tier: Tier::Full, kind: FaultKind::WorkerPanic, until_id: 9 };
        let run_with = |threads: usize| {
            let _guard = ThreadsGuard::new(threads);
            let mut service = MatchService::with_shards(
                ServeConfig { wave: 8, nprobe: 2, min_batch: 2, ..shard_config() },
                &index,
                &shards,
            );
            let responses = service.run(&requests, &fault);
            (responses, service.trace().to_vec(), service.stats().clone())
        };
        let (r1, t1, s1) = run_with(1);
        let (r4, t4, s4) = run_with(4);
        assert_eq!(r1, r4, "probed responses must be bit-identical across thread counts");
        assert_eq!(t1, t4);
        assert_eq!(s1, s4);
        assert!(s1.ann_requests > 0, "the probe pre-pass must have run");
    }
}
