//! Bounded exponential backoff with deterministic seeded jitter.
//!
//! Jitter derives from the *request seed* via SplitMix64, never from wall
//! clock or a shared RNG stream, so the full retry schedule of a request is
//! a pure function of `(RetryConfig, request seed)` — identical across
//! runs, machines, and thread counts.

use crate::config::RetryConfig;

/// SplitMix64: statistically independent streams from one seed (the same
/// mixer the checkpoint layer uses for per-epoch shuffle seeds).
pub fn splitmix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic backoff schedule for one (request, tier) attempt chain.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    config: RetryConfig,
    seed: u64,
}

impl Backoff {
    pub fn new(config: RetryConfig, seed: u64) -> Self {
        Backoff { config, seed }
    }

    /// Virtual-unit delay before retry number `retry` (1-based). The raw
    /// delay doubles per retry from `base_delay`, gains up to +50%
    /// seeded jitter, and is clamped to `max_delay`.
    pub fn delay(&self, retry: u32) -> u64 {
        assert!(retry >= 1, "retry numbering is 1-based");
        let doublings = (retry - 1).min(63);
        let raw = self.config.base_delay.saturating_mul(1u64 << doublings);
        let jitter = splitmix64(self.seed, retry as u64) % (raw / 2 + 1);
        raw.saturating_add(jitter).min(self.config.max_delay)
    }

    /// The full schedule: one delay per permitted retry.
    pub fn schedule(&self) -> Vec<u64> {
        (1..=self.config.max_retries).map(|r| self.delay(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let config = RetryConfig { max_retries: 5, base_delay: 10, max_delay: 200 };
        let a = Backoff::new(config, 42).schedule();
        let b = Backoff::new(config, 42).schedule();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&d| (10..=200).contains(&d)), "{a:?}");
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let config = RetryConfig { max_retries: 8, base_delay: 64, max_delay: 100_000 };
        let a = Backoff::new(config, 1).schedule();
        let b = Backoff::new(config, 2).schedule();
        assert_ne!(a, b, "expected jitter to separate seeds");
    }

    #[test]
    fn raw_delay_doubles_until_the_cap() {
        // Zero jitter span is impossible (raw/2+1 ≥ 1), so compare lower
        // bounds: delay(r) ≥ base·2^(r-1) until the cap kicks in.
        let config = RetryConfig { max_retries: 6, base_delay: 8, max_delay: 1_000_000 };
        let backoff = Backoff::new(config, 7);
        for r in 1..=6u32 {
            assert!(backoff.delay(r) >= 8u64 << (r - 1));
        }
    }

    #[test]
    fn huge_retry_counts_saturate_instead_of_overflowing() {
        // The call must not overflow/panic; with max_delay at the ceiling
        // the saturated raw delay clamps to exactly u64::MAX.
        let config = RetryConfig { max_retries: 80, base_delay: u64::MAX / 2, max_delay: u64::MAX };
        let backoff = Backoff::new(config, 3);
        assert_eq!(backoff.delay(80), u64::MAX);
    }
}
