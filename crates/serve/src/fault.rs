//! Fault injection surface of the serving path.
//!
//! The service consults a [`ServeFault`] implementation before every tier
//! attempt; production callers pass [`NoFaults`], drill harnesses pass a
//! scripted plan (see `cem_bench::faults::ServeFaultPlan`). Faults are keyed
//! by `(request id, tier, attempt)` so a schedule is deterministic data, not
//! a random process — the same plan replays identically at any thread count.

use crate::tiers::Tier;

/// Marker embedded in every injected worker panic so the panic-hook filter
/// and the `catch_unwind` boundary can tell drills from genuine bugs.
pub const PANIC_MARKER: &str = "cem-serve injected worker panic";

/// One injectable failure, mirroring the four chaos drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt takes `units` extra virtual cost units. A spike pushing
    /// the attempt past `attempt_timeout_units` cancels it as a transient
    /// timeout; a milder spike just burns deadline budget.
    LatencySpike { units: u64 },
    /// The scoring closure panics mid-attempt (caught at the pool boundary
    /// via `catch_unwind`); transient, retriable.
    WorkerPanic,
    /// The component's feature output is NaN-poisoned — scores compute but
    /// rank garbage. Detected by the non-finite top-score check; degrades
    /// to the next tier immediately (retrying won't unpoison an encoder).
    NanFeatures,
    /// The tier's cached score row is bit-corrupted in storage. Caught by
    /// the per-row checksum; degrades immediately.
    CorruptCache,
}

/// A deterministic fault schedule. `Sync` because workers consult it in
/// parallel; implementations must answer from immutable data.
pub trait ServeFault: Sync {
    /// The fault to inject into attempt `attempt` (0-based) of `tier` for
    /// request `request_id`, if any.
    fn inject(&self, request_id: u64, tier: Tier, attempt: u32) -> Option<FaultKind>;
}

/// The production schedule: nothing ever fails on purpose.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl ServeFault for NoFaults {
    fn inject(&self, _request_id: u64, _tier: Tier, _attempt: u32) -> Option<FaultKind> {
        None
    }
}

/// Suppress the default "thread panicked" stderr noise for *injected*
/// panics only; real panics still print through the previous hook. Safe to
/// call from multiple tests — the hook installs once per process.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains(PANIC_MARKER))
                .or_else(|| {
                    info.payload().downcast_ref::<String>().map(|s| s.contains(PANIC_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_injects() {
        assert_eq!(NoFaults.inject(0, Tier::Full, 0), None);
        assert_eq!(NoFaults.inject(u64::MAX, Tier::Zero, 7), None);
    }

    #[test]
    fn injected_panics_are_catchable_and_silent() {
        silence_injected_panics();
        let caught = std::panic::catch_unwind(|| panic!("{PANIC_MARKER}: drill"));
        assert!(caught.is_err());
        let message = caught.unwrap_err();
        let text = message.downcast_ref::<String>().cloned().unwrap();
        assert!(text.contains(PANIC_MARKER));
    }
}
