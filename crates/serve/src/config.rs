//! Serving policy knobs: deadlines, retry budgets, breaker thresholds, and
//! admission control.
//!
//! Everything latency-like is expressed in **virtual cost units**, not wall
//! clock: each tier attempt charges a deterministic cost, injected latency
//! spikes add units, and retry backoff delays add units. Deadlines are
//! budgets over this virtual clock, so the same request stream produces the
//! same deadline/degradation decisions on any machine at any thread count
//! (the determinism contract of DESIGN.md §11). Wall-clock latency is still
//! *measured* per request for reporting, but never consulted for decisions.

use crate::brownout::BrownoutConfig;
use crate::tiers::Tier;

/// Bounded exponential backoff policy for transient tier failures (worker
/// panics, attempt timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries per tier attempt beyond the first try. `0` disables retry.
    pub max_retries: u32,
    /// Virtual-unit delay before the first retry; doubles per attempt.
    pub base_delay: u64,
    /// Hard cap on any single backoff delay (after jitter).
    pub max_delay: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { max_retries: 2, base_delay: 16, max_delay: 500 }
    }
}

impl RetryConfig {
    pub fn validate(&self) {
        assert!(self.base_delay > 0, "retry base_delay must be positive");
        assert!(self.max_delay >= self.base_delay, "retry max_delay below base_delay");
    }
}

/// Circuit-breaker policy shared by the per-component breakers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (in fold order) before the breaker trips open.
    pub failure_threshold: u32,
    /// Requests the breaker stays open before half-opening for a probe.
    pub cooldown_base: u64,
    /// Upper bound on the deterministic per-trip cooldown jitter.
    pub cooldown_jitter: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown_base: 8, cooldown_jitter: 4 }
    }
}

impl BreakerConfig {
    pub fn validate(&self) {
        assert!(self.failure_threshold >= 1, "breaker failure_threshold must be positive");
        assert!(self.cooldown_base >= 1, "breaker cooldown_base must be positive");
    }
}

/// Full service policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Seed for every service-side deterministic schedule (breaker cooldown
    /// jitter). Request-side jitter derives from each request's own seed.
    pub seed: u64,
    /// Per-request virtual budget; exceeded → `DeadlineExceeded`, checked
    /// between pipeline stages.
    pub deadline_units: u64,
    /// A single tier attempt (tier cost + latency spike) exceeding this is
    /// cancelled as a timeout — a transient, retriable failure.
    pub attempt_timeout_units: u64,
    /// Deterministic cost of one attempt per tier, indexed by [`Tier`].
    /// Richer tiers cost more, mirroring their real relative latency.
    pub tier_cost: [u64; Tier::COUNT],
    /// Images returned per served request (ranking depth).
    pub top_k: usize,
    /// Requests beyond this backlog are shed at admission (closed-loop
    /// burst mode, [`crate::MatchService::run`]).
    pub max_queue_depth: usize,
    /// Requests executed per scheduling wave; breaker state is snapshotted
    /// at wave boundaries and outcomes folded back in arrival order.
    pub wave: usize,
    /// Open-loop admission queue bound ([`crate::MatchService::run_open_loop`]);
    /// arrivals past this depth are shed as queue-full.
    pub queue_capacity: usize,
    /// Virtual units one open-loop wave slot represents: the clock advances
    /// by this much per wave, and arrivals are admitted against it.
    pub wave_units: u64,
    /// Parallel service lanes the open-loop wave budget models: one wave
    /// can spend up to `wave_units × lanes` cost units, so capping the
    /// ladder at a cheaper tier fits more requests per wave.
    pub lanes: usize,
    /// Clusters the shard builder partitions the image gallery into
    /// (IVF posting lists; see `cem-serve::shard` / DESIGN.md §13).
    pub nclusters: usize,
    /// Clusters a request probes, ranked by centroid score. Larger raises
    /// recall toward the dense scan (`nprobe = nclusters` is bit-identical
    /// to it) at proportionally more scoring work.
    pub nprobe: usize,
    /// Minimum wave slots probing the same cluster before their queries
    /// coalesce into one batched GEMM against the shard panel; smaller
    /// groups score row-by-row. Purely a throughput knob — both paths are
    /// bit-identical (the packed kernel's schedule depends only on `dim`).
    pub min_batch: usize,
    pub retry: RetryConfig,
    pub breaker: BreakerConfig,
    pub brownout: BrownoutConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0,
            deadline_units: 4_000,
            attempt_timeout_units: 900,
            tier_cost: [400, 120, 250, 60],
            top_k: 10,
            max_queue_depth: 4_096,
            wave: 64,
            queue_capacity: 512,
            wave_units: 400,
            lanes: 8,
            nclusters: 64,
            nprobe: 8,
            min_batch: 2,
            retry: RetryConfig::default(),
            breaker: BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
        }
    }
}

impl ServeConfig {
    pub fn validate(&self) {
        assert!(self.deadline_units > 0, "deadline_units must be positive");
        assert!(self.attempt_timeout_units > 0, "attempt_timeout_units must be positive");
        assert!(self.tier_cost.iter().all(|&c| c > 0), "tier costs must be positive");
        assert!(self.top_k >= 1, "top_k must be positive");
        assert!(self.max_queue_depth >= 1, "max_queue_depth must be positive");
        assert!(self.wave >= 1, "wave must be positive");
        assert!(self.queue_capacity >= 1, "queue_capacity must be positive");
        assert!(self.wave_units >= 1, "wave_units must be positive");
        assert!(self.lanes >= 1, "lanes must be positive");
        assert!(self.nclusters >= 1, "nclusters must be positive");
        assert!(self.nprobe >= 1, "nprobe must be positive");
        assert!(self.nprobe <= self.nclusters, "nprobe cannot exceed nclusters");
        assert!(self.min_batch >= 1, "min_batch must be positive");
        assert!(
            self.deadline_units >= self.cheapest_tier_cost(),
            "deadline_units below the cheapest tier cost: nothing could ever serve"
        );
        self.retry.validate();
        self.breaker.validate();
        self.brownout.validate();
    }

    /// The cheapest single-attempt cost on the ladder — the floor an aged
    /// queued request must still be able to afford.
    pub fn cheapest_tier_cost(&self) -> u64 {
        *self.tier_cost.iter().min().expect("tier_cost is non-empty")
    }

    /// Cost units one open-loop wave may spend executing requests.
    pub fn wave_budget_units(&self) -> u64 {
        self.wave_units.saturating_mul(self.lanes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ServeConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "max_delay")]
    fn inverted_retry_bounds_rejected() {
        RetryConfig { base_delay: 100, max_delay: 10, ..RetryConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "wave")]
    fn zero_wave_rejected() {
        ServeConfig { wave: 0, ..ServeConfig::default() }.validate();
    }

    #[test]
    fn wave_budget_and_cheapest_tier_derive_from_the_knobs() {
        let config = ServeConfig::default();
        assert_eq!(config.cheapest_tier_cost(), 60, "zero tier is the cheapest by default");
        assert_eq!(config.wave_budget_units(), 400 * 8);
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn zero_lanes_rejected() {
        ServeConfig { lanes: 0, ..ServeConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "nprobe")]
    fn overprobing_rejected() {
        ServeConfig { nclusters: 4, nprobe: 5, ..ServeConfig::default() }.validate();
    }
}
