//! Request/response types for the embedded matching service.

use crate::breaker::Component;
use crate::tiers::Tier;

/// One entity-match query. `seed` drives every per-request deterministic
/// schedule (retry jitter); callers typically derive it from `(service
/// seed, request id)` via [`crate::retry::splitmix64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchRequest {
    pub id: u64,
    /// Entity index into the serving index.
    pub entity: usize,
    pub seed: u64,
}

impl MatchRequest {
    /// The conventional request stream: ids `0..n`, entities round-robin
    /// over the catalogue, seeds derived from `seed` per id.
    pub fn stream(n: usize, entities: usize, seed: u64) -> Vec<MatchRequest> {
        (0..n)
            .map(|i| MatchRequest {
                id: i as u64,
                entity: i % entities,
                seed: crate::retry::splitmix64(seed, i as u64),
            })
            .collect()
    }
}

/// One open-loop arrival: a request plus the virtual tick at which it
/// reaches the service. Open-loop streams must be sorted by `at` — the
/// generator controls the schedule, the service never pushes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual tick of arrival on the service clock.
    pub at: u64,
    pub request: MatchRequest,
}

/// How a request resolved. Every admitted request resolves — the zero-shot
/// floor cannot fail — so the non-served resolutions are admission
/// shedding, queue expiry, deadline exhaustion, and (defensively) a typed
/// internal scheduling error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Served from `tier` with the top-k image ranking, best first.
    Served { tier: Tier, ranking: Vec<usize> },
    /// Rejected at admission: the queue was at capacity.
    Shed,
    /// Shed from the queue before execution: the remaining budget could no
    /// longer cover even the cheapest tier.
    Expired,
    /// The virtual budget ran out before any tier completed.
    DeadlineExceeded,
    /// A scheduling invariant broke (an admitted request resolved as shed).
    /// Never expected in practice; surfaced as a degraded response plus the
    /// `serve.internal_error` counter instead of a service panic.
    InternalError,
}

impl Outcome {
    pub fn served_tier(&self) -> Option<Tier> {
        match self {
            Outcome::Served { tier, .. } => Some(*tier),
            _ => None,
        }
    }
}

/// The service's answer to one request. Deliberately contains *only*
/// deterministic fields — wall time is reported through the `cem-obs`
/// span histograms instead — so the determinism contract can be stated as
/// plain equality: same seed + same fault schedule → `==` responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub id: u64,
    pub entity: usize,
    pub outcome: Outcome,
    /// Virtual cost units consumed executing (tier attempts + spikes +
    /// backoff). Zero for requests that never executed.
    pub cost_units: u64,
    /// Virtual units spent waiting in the admission queue before execution
    /// (always zero in closed-loop burst mode).
    pub queue_units: u64,
    /// Retries spent across all tiers.
    pub retries: u32,
    /// The model generation this response was scored against (0 when the
    /// service borrows a static index).
    pub generation: u64,
}

impl Response {
    /// End-to-end virtual latency: queue wait plus execution cost.
    pub fn latency_units(&self) -> u64 {
        self.queue_units + self.cost_units
    }
}

/// One component observation produced while executing a request, folded
/// into the breakers in arrival order after the wave joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ComponentEvent {
    pub component: Component,
    pub success: bool,
}

/// Everything a worker hands back to the fold step. Plain data (`Send`).
#[derive(Debug, Clone)]
pub(crate) struct ExecOutcome {
    pub outcome: Outcome,
    pub cost_units: u64,
    pub retries: u32,
    pub wall_nanos: u64,
    pub events: Vec<ComponentEvent>,
    /// Deterministic trace lines (retries, degradations, skips) — wall
    /// clock never appears in these.
    pub trace: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_round_robin() {
        let a = MatchRequest::stream(5, 3, 42);
        let b = MatchRequest::stream(5, 3, 42);
        assert_eq!(a, b);
        assert_eq!(a[4].entity, 1);
        assert_ne!(a[0].seed, a[1].seed);
        let c = MatchRequest::stream(5, 3, 43);
        assert_ne!(a[0].seed, c[0].seed, "stream seed must feed request seeds");
    }

    #[test]
    fn served_tier_projects_only_served() {
        let served = Outcome::Served { tier: Tier::Hard, ranking: vec![1, 0] };
        assert_eq!(served.served_tier(), Some(Tier::Hard));
        assert_eq!(Outcome::Shed.served_tier(), None);
        assert_eq!(Outcome::Expired.served_tier(), None);
        assert_eq!(Outcome::DeadlineExceeded.served_tier(), None);
        assert_eq!(Outcome::InternalError.served_tier(), None);
    }

    #[test]
    fn latency_is_queue_wait_plus_cost() {
        let response = Response {
            id: 0,
            entity: 0,
            outcome: Outcome::DeadlineExceeded,
            cost_units: 120,
            queue_units: 400,
            retries: 0,
            generation: 0,
        };
        assert_eq!(response.latency_units(), 520);
    }
}
