//! Sharded cluster-pruned ANN index: sub-quadratic serving over the image
//! gallery (DESIGN.md §13).
//!
//! The dense [`ServeIndex`](crate::ServeIndex) scores every request against
//! every image — O(entities × images) memory and a full scan per request,
//! which cannot reach gallery sizes in the hundreds of thousands. This
//! module generalises the paper's PCP machinery (k-means partitions +
//! proximity pruning, Alg. 2) into an IVF-style inverted index:
//!
//! * **Build**: image embeddings are clustered with
//!   [`crossem::kmeans::kmeans_flat_seeded`]. Each cluster becomes a
//!   [`Shard`]: a posting list of image ids plus the member embeddings,
//!   packed once into a resident GEMM panel
//!   ([`cem_tensor::pack::pack_b_t`]) and covered by a CRC-32.
//! * **Probe**: a query scores every cluster centroid (cheap — `nclusters`
//!   dot products) and keeps the top-`nprobe` clusters by
//!   (score desc, cluster asc). Probing is a pure function of
//!   `(query, index, config)` — no clocks, no thread count — so replay is
//!   bit-identical.
//! * **Wave-batched scoring**: [`ShardedIndex::score_wave`] takes a whole
//!   wave of dequeued requests, groups them by probed cluster, and issues
//!   **one** query-matrix × shard-panel GEMM per (cluster, wave) through
//!   [`cem_tensor::kernels::gemm_prepacked_with_threads`]. The packed
//!   kernel's per-element schedule depends only on `k = dim`, so the
//!   coalesced batch is bit-identical to per-request scoring — batching is
//!   purely a throughput lever (it amortises panel traffic across the
//!   wave), never a value change.
//! * **Selection**: per-request candidates are ranked under the exact
//!   ranking order of [`crossem::matcher::rank_row`] — score descending by
//!   [`score_cmp`] (NaN sinks), image id ascending on ties — so with
//!   `nprobe = nclusters` the IVF result is bit-identical to the dense
//!   scan.
//! * **Durability**: shards serialise as CRC'd CEMT v2 entries
//!   (`shard.<i>.ids` / `shard.<i>.emb` plus a stored per-shard checksum)
//!   and ride inside the existing [`Generation`](crate::Generation)
//!   container, so they publish through the hot-swap path. A shard whose
//!   checksum fails — at decode or at serve time — yields a typed
//!   [`ShardError`] and the service falls back to the dense tier.
//! * **Incremental rebuild**: [`ShardedIndex::add_images`] assigns new
//!   images to their nearest centroid (the exact Lloyd assignment rule via
//!   [`crossem::kmeans::nearest_centroid`]) and repacks only the touched
//!   shards.

use std::collections::BTreeMap;
use std::fmt;

use cem_tensor::io::StateDict;
use cem_tensor::kernels::{dot, gemm_prepacked_with_threads};
use cem_tensor::pack::{pack_b_t, PackedB};
use cem_tensor::Tensor;
use crossem::checkpoint::{shard_entry_key, shard_schema_of, stamp_shard_schema};
use crossem::kmeans::{kmeans_flat_seeded, nearest_centroid};
use crossem::matcher::score_cmp;

/// Schema version of the shard sections inside a CEMT container.
pub const SHARD_SCHEMA: u64 = 1;

/// Image ids are stored as exactly-representable `f32` tensor entries in
/// the CEMT container, which is lossless only below 2²⁴.
const MAX_IMAGES: usize = 1 << 24;

/// Why a sharded index could not be built, decoded, or served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard's recomputed checksum does not match its stored CRC — the
    /// posting list or embedding panel is damaged. Serving falls back to
    /// the dense tier.
    Corrupt { shard: usize },
    /// The container parsed but lacks a required shard entry or meta key.
    MissingEntry(String),
    /// The container's shard sections use a different layout version.
    Schema { expected: u64, found: u64 },
    /// An entry's element count disagrees with the recorded layout.
    Shape { what: &'static str, expected: usize, found: usize },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Corrupt { shard } => {
                write!(f, "shard {shard} failed its checksum (corrupt posting list or panel)")
            }
            ShardError::MissingEntry(name) => {
                write!(f, "shard sections are missing required entry {name:?}")
            }
            ShardError::Schema { expected, found } => {
                write!(f, "shard schema {found} does not match this build ({expected})")
            }
            ShardError::Shape { what, expected, found } => {
                write!(f, "shard entry {what} has {found} elements, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// One cluster's slice of the gallery: the posting list of image ids, the
/// member embeddings (row-major `[len × dim]`), a CRC-32 over both, and the
/// embeddings re-packed once into a resident panel for the packed GEMM.
pub struct Shard {
    ids: Vec<u32>,
    embeddings: Vec<f32>,
    crc: u32,
    panel: PackedB,
}

impl Shard {
    fn new(ids: Vec<u32>, embeddings: Vec<f32>, dim: usize) -> Shard {
        debug_assert_eq!(embeddings.len(), ids.len() * dim);
        let crc = shard_checksum(&ids, &embeddings);
        let panel = pack_b_t(&embeddings, ids.len(), dim);
        Shard { ids, embeddings, crc, panel }
    }

    /// Images in this shard.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Posting list of image ids, in ascending id order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Stored CRC-32 over the posting list and embeddings.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// Recompute the checksum and compare against the stored CRC.
    pub fn verify(&self) -> bool {
        shard_checksum(&self.ids, &self.embeddings) == self.crc
    }
}

/// CRC-32 over a shard's posting list and embedding payload (LE bytes).
fn shard_checksum(ids: &[u32], embeddings: &[f32]) -> u32 {
    let mut hasher = cem_tensor::crc::Hasher::new();
    for &id in ids {
        hasher.update(&id.to_le_bytes());
    }
    for &v in embeddings {
        hasher.update(&v.to_le_bytes());
    }
    hasher.finalize()
}

/// One request's ANN ranking: top-k image ids, best first, plus whether the
/// best score was finite (a NaN-topped ranking must degrade exactly like
/// the dense tier's poisoned-row path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRanking {
    pub ids: Vec<usize>,
    pub finite: bool,
}

/// Aggregate result of scoring one wave through the shard index.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveScore {
    /// Per input slot, in input order.
    pub rankings: Vec<ShardRanking>,
    /// Total (slot, cluster) probe pairs in the wave.
    pub probed_clusters: u64,
    /// Distinct clusters the wave touched (each verified + scored once).
    pub distinct_clusters: u64,
    /// Total candidate images scored across all slots.
    pub candidates: u64,
    /// Coalesced multi-row GEMM calls issued.
    pub batched_gemms: u64,
    /// Single-row GEMM calls issued (groups below `min_batch`).
    pub single_gemms: u64,
    /// Mean fraction of the gallery scored per request
    /// (`candidates / (slots × images)`); the dense scan is 1.0.
    pub probed_fraction: f64,
}

/// The sharded ANN index: query embeddings, cluster centroids, and one
/// [`Shard`] per cluster. Everything a probe decision reads is immutable
/// between waves, so probe schedules are pure functions of
/// `(query, index, config)`.
pub struct ShardedIndex {
    dim: usize,
    entities: usize,
    images: usize,
    /// Entity/query embeddings, row-major `[entities × dim]`.
    queries: Vec<f32>,
    /// Cluster centroids, row-major `[nclusters × dim]`.
    centroids: Vec<f32>,
    shards: Vec<Shard>,
}

impl ShardedIndex {
    /// Cluster `embeddings` (`[images × dim]`, row-major) into `nclusters`
    /// shards with seeded k-means and pack each shard's panel. `queries`
    /// are the entity embeddings requests score with (`[entities × dim]`).
    ///
    /// `nclusters` is clamped to the image count. Posting lists come out in
    /// ascending image-id order (the k-means assignment scan is in id
    /// order), which the dense-equivalence selection rule relies on.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        queries: Vec<f32>,
        entities: usize,
        embeddings: &[f32],
        images: usize,
        dim: usize,
        nclusters: usize,
        kmeans_iters: usize,
        seed: u64,
    ) -> ShardedIndex {
        assert!(dim > 0, "shard build: zero-dimensional embeddings");
        assert!(entities > 0, "shard build: no query entities");
        assert!(images > 0, "shard build: no images");
        assert!(images < MAX_IMAGES, "shard build: image ids must stay below 2^24");
        assert_eq!(queries.len(), entities * dim, "shard build: queries shape");
        assert_eq!(embeddings.len(), images * dim, "shard build: embeddings shape");
        let result =
            kmeans_flat_seeded(embeddings, images, dim, nclusters.max(1), kmeans_iters, seed);
        let k = result.k;
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (i, &c) in result.assignments.iter().enumerate() {
            members[c].push(i as u32);
        }
        let shards = members
            .into_iter()
            .map(|ids| {
                let mut rows = Vec::with_capacity(ids.len() * dim);
                for &id in &ids {
                    let id = id as usize;
                    rows.extend_from_slice(&embeddings[id * dim..(id + 1) * dim]);
                }
                Shard::new(ids, rows, dim)
            })
            .collect();
        cem_obs::counter_add!("serve.shard.build", 1);
        ShardedIndex { dim, entities, images, queries, centroids: result.centroids, shards }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn entities(&self) -> usize {
        self.entities
    }

    pub fn images(&self) -> usize {
        self.images
    }

    pub fn nclusters(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, cluster: usize) -> &Shard {
        &self.shards[cluster]
    }

    /// Entity query embedding row.
    pub fn query(&self, entity: usize) -> &[f32] {
        &self.queries[entity * self.dim..(entity + 1) * self.dim]
    }

    /// Verify every shard's checksum; `Err` names the first damaged shard.
    pub fn verify(&self) -> Result<(), ShardError> {
        for (c, shard) in self.shards.iter().enumerate() {
            if !shard.verify() {
                return Err(ShardError::Corrupt { shard: c });
            }
        }
        Ok(())
    }

    /// Top-`nprobe` clusters for `entity` by centroid score, ranked
    /// (score desc via [`score_cmp`], cluster asc). Pure function of
    /// `(query, index, nprobe)`: no clocks, no thread count, no mutation —
    /// the replay-determinism contract for probe schedules.
    pub fn probe(&self, entity: usize, nprobe: usize) -> Vec<usize> {
        let q = self.query(entity);
        let dim = self.dim;
        let mut scored: Vec<(usize, f32)> = (0..self.nclusters())
            .map(|c| (c, dot(q, &self.centroids[c * dim..(c + 1) * dim])))
            .collect();
        scored.sort_unstable_by(|a, b| score_cmp(b.1, a.1).then(a.0.cmp(&b.0)));
        scored.truncate(nprobe.clamp(1, self.nclusters()));
        scored.into_iter().map(|(c, _)| c).collect()
    }

    /// Score one wave of requests (`entities[slot]` per wave slot) through
    /// the probed shards, coalescing each cluster's slots into one batched
    /// GEMM against the resident panel when the group reaches `min_batch`
    /// rows. Returns per-slot top-`top_k` rankings (`top_k = 0` keeps all
    /// candidates) in input order.
    ///
    /// Every probed shard's CRC is verified once per wave before any
    /// scoring; a damaged shard fails the whole wave with a typed error so
    /// the caller can fall back to the dense tier.
    ///
    /// Determinism: probe order, group composition, and candidate order are
    /// derived purely from slot/cluster indices; the packed kernel's
    /// schedule depends only on `dim`; final selection uses the strict
    /// total order (score desc, id asc). Results are bit-identical at any
    /// thread count and to per-request (`min_batch = ∞`) scoring.
    pub fn score_wave(
        &self,
        entities: &[usize],
        nprobe: usize,
        min_batch: usize,
        top_k: usize,
        threads: usize,
    ) -> Result<WaveScore, ShardError> {
        let probes: Vec<Vec<usize>> = entities.iter().map(|&e| self.probe(e, nprobe)).collect();
        // Group wave slots by probed cluster: BTreeMap iterates clusters in
        // ascending order, slots were pushed in ascending slot order.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (slot, probe) in probes.iter().enumerate() {
            for &c in probe {
                groups.entry(c).or_default().push(slot);
            }
        }
        for &c in groups.keys() {
            if !self.shards[c].verify() {
                return Err(ShardError::Corrupt { shard: c });
            }
        }
        let mut candidates: Vec<Vec<(u32, f32)>> = entities
            .iter()
            .map(|_| Vec::with_capacity(nprobe * self.images / self.nclusters().max(1) + 1))
            .collect();
        let dim = self.dim;
        let mut batched_gemms = 0u64;
        let mut single_gemms = 0u64;
        let mut q_buf: Vec<f32> = Vec::new();
        for (&c, slots) in &groups {
            let shard = &self.shards[c];
            let len = shard.len();
            if len == 0 {
                continue;
            }
            let b = slots.len();
            q_buf.clear();
            for &slot in slots {
                q_buf.extend_from_slice(self.query(entities[slot]));
            }
            let mut out = vec![0.0f32; b * len];
            if b >= min_batch.max(1) {
                gemm_prepacked_with_threads(&q_buf, &shard.panel, &mut out, b, threads);
                batched_gemms += 1;
            } else {
                for (bi, row) in out.chunks_exact_mut(len).enumerate() {
                    gemm_prepacked_with_threads(
                        &q_buf[bi * dim..(bi + 1) * dim],
                        &shard.panel,
                        row,
                        1,
                        threads,
                    );
                }
                single_gemms += b as u64;
            }
            for (bi, &slot) in slots.iter().enumerate() {
                let row = &out[bi * len..(bi + 1) * len];
                candidates[slot].extend(shard.ids.iter().zip(row).map(|(&id, &s)| (id, s)));
            }
        }
        let mut total_candidates = 0u64;
        let rankings: Vec<ShardRanking> = candidates
            .into_iter()
            .map(|mut c| {
                total_candidates += c.len() as u64;
                take_top_k(&mut c, top_k)
            })
            .collect();
        let probed_clusters: u64 = probes.iter().map(|p| p.len() as u64).sum();
        let probed_fraction = if entities.is_empty() {
            0.0
        } else {
            total_candidates as f64 / (entities.len() as f64 * self.images as f64)
        };
        cem_obs::counter_add!("serve.probe.clusters", probed_clusters);
        cem_obs::counter_add!("serve.probe.candidates", total_candidates);
        cem_obs::counter_add!("serve.probe.batched_gemm", batched_gemms);
        cem_obs::counter_add!("serve.probe.single_gemm", single_gemms);
        cem_obs::gauge_set!("serve.probe.fraction", probed_fraction);
        Ok(WaveScore {
            rankings,
            probed_clusters,
            distinct_clusters: groups.len() as u64,
            candidates: total_candidates,
            batched_gemms,
            single_gemms,
            probed_fraction,
        })
    }

    /// The full dense score matrix `[entities × images]`, computed through
    /// the same resident shard panels as [`score_wave`] — one
    /// all-entities GEMM per shard, scattered into image-id columns. Since
    /// the packed kernel's per-element schedule depends only on `dim`,
    /// every score here is bit-identical to the wave-batched path: this is
    /// the dense oracle for recall measurement and the verify/fallback
    /// tier's Full matrix.
    pub fn dense_scores(&self, threads: usize) -> Vec<f32> {
        let mut matrix = vec![0.0f32; self.entities * self.images];
        let mut out: Vec<f32> = Vec::new();
        for shard in &self.shards {
            let len = shard.len();
            if len == 0 {
                continue;
            }
            out.clear();
            out.resize(self.entities * len, 0.0);
            gemm_prepacked_with_threads(&self.queries, &shard.panel, &mut out, self.entities, threads);
            for (e, row) in out.chunks_exact(len).enumerate() {
                let dst = &mut matrix[e * self.images..(e + 1) * self.images];
                for (&id, &s) in shard.ids.iter().zip(row) {
                    dst[id as usize] = s;
                }
            }
        }
        matrix
    }

    /// One request's dense scan: score `entity` against every image through
    /// the shard panels and rank the full row — the per-request cost the
    /// probed path is measured against.
    pub fn dense_rank(&self, entity: usize, top_k: usize, threads: usize) -> Vec<usize> {
        let mut row = vec![0.0f32; self.images];
        let mut out: Vec<f32> = Vec::new();
        for shard in &self.shards {
            let len = shard.len();
            if len == 0 {
                continue;
            }
            out.clear();
            out.resize(len, 0.0);
            gemm_prepacked_with_threads(self.query(entity), &shard.panel, &mut out, 1, threads);
            for (&id, &s) in shard.ids.iter().zip(&out) {
                row[id as usize] = s;
            }
        }
        crossem::matcher::rank_row(&row, top_k)
    }

    /// Assign new images (`[count × dim]`, ids continuing from the current
    /// gallery) to their nearest centroids and rebuild only the touched
    /// shards' checksums and panels. Returns the touched cluster indices,
    /// ascending. Centroids are left as built — probes stay pure functions
    /// of the (now larger) index.
    pub fn add_images(&mut self, new_embeddings: &[f32]) -> Vec<usize> {
        assert_eq!(new_embeddings.len() % self.dim, 0, "add_images: ragged embeddings");
        let count = new_embeddings.len() / self.dim;
        assert!(self.images + count < MAX_IMAGES, "add_images: image ids must stay below 2^24");
        let k = self.nclusters();
        let mut staged: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for j in 0..count {
            let p = &new_embeddings[j * self.dim..(j + 1) * self.dim];
            let c = nearest_centroid(p, &self.centroids, k, self.dim);
            staged.entry(c).or_default().push(j);
        }
        let touched: Vec<usize> = staged.keys().copied().collect();
        for (&c, rows) in &staged {
            let shard = &mut self.shards[c];
            for &j in rows {
                shard.ids.push((self.images + j) as u32);
                shard
                    .embeddings
                    .extend_from_slice(&new_embeddings[j * self.dim..(j + 1) * self.dim]);
            }
            shard.crc = shard_checksum(&shard.ids, &shard.embeddings);
            shard.panel = pack_b_t(&shard.embeddings, shard.ids.len(), self.dim);
        }
        self.images += count;
        cem_obs::counter_add!("serve.shard.incremental_rebuild", touched.len() as u64);
        touched
    }

    /// Write the shard sections into an existing CEMT dict (the
    /// [`Generation`](crate::Generation) container): schema + layout meta,
    /// query/centroid tensors, and per-shard posting/embedding entries with
    /// a stored CRC. Empty shards write only their `len = 0` meta.
    pub fn write_state_dict(&self, dict: &mut StateDict) {
        stamp_shard_schema(dict, SHARD_SCHEMA);
        dict.insert_meta("shard.nclusters", self.nclusters() as u64);
        dict.insert_meta("shard.dim", self.dim as u64);
        dict.insert_meta("shard.entities", self.entities as u64);
        dict.insert_meta("shard.images", self.images as u64);
        dict.insert(
            "shard.queries",
            Tensor::from_vec(self.queries.clone(), &[self.entities, self.dim]),
        );
        dict.insert(
            "shard.centroids",
            Tensor::from_vec(self.centroids.clone(), &[self.nclusters(), self.dim]),
        );
        for (c, shard) in self.shards.iter().enumerate() {
            dict.insert_meta(shard_entry_key(c, "len"), shard.len() as u64);
            dict.insert_meta(shard_entry_key(c, "crc"), shard.crc as u64);
            if shard.is_empty() {
                continue;
            }
            let ids: Vec<f32> = shard.ids.iter().map(|&id| id as f32).collect();
            dict.insert(shard_entry_key(c, "ids"), Tensor::from_vec(ids, &[shard.len()]));
            dict.insert(
                shard_entry_key(c, "emb"),
                Tensor::from_vec(shard.embeddings.clone(), &[shard.len(), self.dim]),
            );
        }
    }

    /// Decode shard sections from a CEMT dict. `Ok(None)` when the dict
    /// carries no shard sections at all (pre-shard generations stay
    /// loadable); otherwise every section must parse, shapes must agree
    /// with the recorded layout, and each shard's recomputed checksum must
    /// match its stored CRC ([`ShardError::Corrupt`] otherwise — defense in
    /// depth on top of the container's per-entry CRC).
    pub fn read_state_dict(dict: &StateDict) -> Result<Option<ShardedIndex>, ShardError> {
        let schema = match shard_schema_of(dict) {
            None => return Ok(None),
            Some(s) => s,
        };
        if schema != SHARD_SCHEMA {
            return Err(ShardError::Schema { expected: SHARD_SCHEMA, found: schema });
        }
        let meta = |name: &str| {
            dict.meta(name).ok_or_else(|| ShardError::MissingEntry(name.to_string()))
        };
        let nclusters = meta("shard.nclusters")? as usize;
        let dim = meta("shard.dim")? as usize;
        let entities = meta("shard.entities")? as usize;
        let images = meta("shard.images")? as usize;
        let tensor = |name: String, want: usize| -> Result<Vec<f32>, ShardError> {
            let t = dict.get(&name).ok_or_else(|| ShardError::MissingEntry(name.clone()))?;
            let data = t.to_vec();
            if data.len() != want {
                return Err(ShardError::Shape {
                    what: "tensor entry",
                    expected: want,
                    found: data.len(),
                });
            }
            Ok(data)
        };
        let queries = tensor("shard.queries".into(), entities * dim)?;
        let centroids = tensor("shard.centroids".into(), nclusters * dim)?;
        let mut shards = Vec::with_capacity(nclusters);
        let mut total = 0usize;
        for c in 0..nclusters {
            let len = meta(&shard_entry_key(c, "len"))? as usize;
            let stored_crc = meta(&shard_entry_key(c, "crc"))? as u32;
            total += len;
            let (ids, embeddings) = if len == 0 {
                (Vec::new(), Vec::new())
            } else {
                let raw_ids = tensor(shard_entry_key(c, "ids"), len)?;
                let ids: Vec<u32> = raw_ids.iter().map(|&v| v as u32).collect();
                let embeddings = tensor(shard_entry_key(c, "emb"), len * dim)?;
                (ids, embeddings)
            };
            let shard = Shard::new(ids, embeddings, dim);
            if shard.crc != stored_crc {
                return Err(ShardError::Corrupt { shard: c });
            }
            shards.push(shard);
        }
        if total != images {
            return Err(ShardError::Shape { what: "posting lists", expected: images, found: total });
        }
        Ok(Some(ShardedIndex { dim, entities, images, queries, centroids, shards }))
    }

    /// Serialise into a standalone CEMT dict (shards only).
    pub fn to_state_dict(&self) -> StateDict {
        let mut dict = StateDict::new();
        self.write_state_dict(&mut dict);
        dict
    }

    /// Decode a standalone shard dict; missing sections are an error here.
    pub fn from_state_dict(dict: &StateDict) -> Result<ShardedIndex, ShardError> {
        ShardedIndex::read_state_dict(dict)?
            .ok_or_else(|| ShardError::MissingEntry("shard.schema".into()))
    }

    /// Flip a bit in one shard's embeddings without updating its CRC, so
    /// tests and drills can exercise the corrupt-shard → dense-fallback
    /// path. Not part of the serving API.
    #[doc(hidden)]
    pub fn corrupt_shard_for_tests(&mut self, cluster: usize) {
        let shard = &mut self.shards[cluster];
        assert!(!shard.is_empty(), "cannot corrupt an empty shard");
        let flipped = f32::from_bits(shard.embeddings[0].to_bits() ^ 1);
        shard.embeddings[0] = flipped;
        shard.panel = pack_b_t(&shard.embeddings, shard.ids.len(), self.dim);
    }
}

/// Keep the best `k` candidates under the strict total order
/// (score desc via [`score_cmp`], image id asc) — the exact ranking rule of
/// [`crossem::matcher::rank_row`], so dense and probed rankings agree
/// whenever they see the same candidate scores. `k = 0` keeps all.
fn take_top_k(candidates: &mut Vec<(u32, f32)>, k: usize) -> ShardRanking {
    let cmp =
        |a: &(u32, f32), b: &(u32, f32)| score_cmp(b.1, a.1).then(a.0.cmp(&b.0));
    let keep = if k == 0 { candidates.len() } else { k.min(candidates.len()) };
    if keep == 0 {
        return ShardRanking { ids: Vec::new(), finite: true };
    }
    if keep < candidates.len() {
        candidates.select_nth_unstable_by(keep - 1, cmp);
        candidates.truncate(keep);
    }
    candidates.sort_unstable_by(cmp);
    let finite = candidates[0].1.is_finite();
    ShardRanking { ids: candidates.iter().map(|&(id, _)| id as usize).collect(), finite }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::splitmix64;

    /// Deterministic clustered embeddings: `centers` Gaussian-ish blobs on
    /// the unit sphere, `n` points cycling through them.
    fn blobs(n: usize, dim: usize, centers: usize, seed: u64) -> Vec<f32> {
        let mut centroid = vec![0.0f32; centers * dim];
        for (j, v) in centroid.iter_mut().enumerate() {
            *v = unit(seed ^ 0xC0FFEE, j as u64) * 2.0 - 1.0;
        }
        let mut out = Vec::with_capacity(n * dim);
        for i in 0..n {
            let c = i % centers;
            let base = &centroid[c * dim..(c + 1) * dim];
            let mut row: Vec<f32> = base
                .iter()
                .enumerate()
                .map(|(d, &b)| b + 0.1 * (unit(seed, (i * dim + d) as u64) - 0.5))
                .collect();
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            row.iter_mut().for_each(|v| *v /= norm);
            out.extend_from_slice(&row);
        }
        out
    }

    fn unit(seed: u64, i: u64) -> f32 {
        (splitmix64(seed, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 40) as f32
            / (1u64 << 24) as f32
    }

    fn small_index() -> ShardedIndex {
        let (images, entities, dim) = (200, 12, 8);
        let embeddings = blobs(images, dim, 5, 11);
        let queries = blobs(entities, dim, 5, 12);
        ShardedIndex::build(queries, entities, &embeddings, images, dim, 5, 12, 7)
    }

    #[test]
    fn build_partitions_the_gallery() {
        let index = small_index();
        assert_eq!(index.images(), 200);
        let total: usize = (0..index.nclusters()).map(|c| index.shard(c).len()).sum();
        assert_eq!(total, 200);
        index.verify().unwrap();
        // Posting lists are ascending (k-means assignment scans in id order).
        for c in 0..index.nclusters() {
            let ids = index.shard(c).ids();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "cluster {c} ids not ascending");
        }
    }

    #[test]
    fn probe_is_pure_and_bounded() {
        let index = small_index();
        for e in 0..index.entities() {
            let a = index.probe(e, 2);
            let b = index.probe(e, 2);
            assert_eq!(a, b);
            assert_eq!(a.len(), 2);
            let all = index.probe(e, usize::MAX);
            assert_eq!(all.len(), index.nclusters(), "nprobe clamps to nclusters");
        }
    }

    /// nprobe = nclusters covers every image, so the IVF ranking must be
    /// bit-identical to the dense scan through the same panels.
    #[test]
    fn full_probe_equals_dense_scan() {
        let index = small_index();
        let slots: Vec<usize> = (0..index.entities()).collect();
        let wave = index.score_wave(&slots, index.nclusters(), 2, 10, 1).unwrap();
        for (e, ranking) in wave.rankings.iter().enumerate() {
            assert_eq!(ranking.ids, index.dense_rank(e, 10, 1), "entity {e}");
            assert!(ranking.finite);
        }
        assert!((wave.probed_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wave_scoring_is_batch_and_thread_invariant() {
        let index = small_index();
        let slots: Vec<usize> = (0..index.entities()).chain(0..index.entities()).collect();
        let base = index.score_wave(&slots, 2, 2, 5, 1).unwrap();
        for threads in [2usize, 4] {
            let got = index.score_wave(&slots, 2, 2, 5, threads).unwrap();
            assert_eq!(base.rankings, got.rankings, "threads={threads}");
        }
        // min_batch beyond any group size forces per-request GEMMs — same bits.
        let unbatched = index.score_wave(&slots, 2, usize::MAX, 5, 3).unwrap();
        assert_eq!(base.rankings, unbatched.rankings);
        assert_eq!(unbatched.batched_gemms, 0);
        assert!(unbatched.single_gemms > 0);
    }

    #[test]
    fn cemt_round_trip_preserves_everything() {
        let index = small_index();
        let decoded = ShardedIndex::from_state_dict(&index.to_state_dict()).unwrap();
        assert_eq!(decoded.dim(), index.dim());
        assert_eq!(decoded.images(), index.images());
        assert_eq!(decoded.nclusters(), index.nclusters());
        for c in 0..index.nclusters() {
            assert_eq!(decoded.shard(c).ids(), index.shard(c).ids());
            assert_eq!(decoded.shard(c).crc(), index.shard(c).crc());
        }
        let slots: Vec<usize> = (0..index.entities()).collect();
        let a = index.score_wave(&slots, 3, 2, 10, 2).unwrap();
        let b = decoded.score_wave(&slots, 3, 2, 10, 2).unwrap();
        assert_eq!(a.rankings, b.rankings, "decoded index must serve identical rankings");
    }

    #[test]
    fn tampered_payload_is_a_typed_corrupt_error() {
        let mut index = small_index();
        // Damage one embedding value without refreshing the stored CRC; the
        // container then carries a stale checksum over tampered payload.
        let victim = (0..index.nclusters()).find(|&c| !index.shard(c).is_empty()).unwrap();
        index.corrupt_shard_for_tests(victim);
        let dict = index.to_state_dict();
        let err = ShardedIndex::from_state_dict(&dict).map(|_| ()).unwrap_err();
        assert_eq!(err, ShardError::Corrupt { shard: victim });
    }

    #[test]
    fn runtime_corruption_fails_the_wave() {
        let mut index = small_index();
        let victim = (0..index.nclusters()).find(|&c| !index.shard(c).is_empty()).unwrap();
        index.corrupt_shard_for_tests(victim);
        let slots: Vec<usize> = (0..index.entities()).collect();
        let err = index.score_wave(&slots, index.nclusters(), 2, 10, 1).unwrap_err();
        assert_eq!(err, ShardError::Corrupt { shard: victim });
    }

    #[test]
    fn add_images_rebuilds_only_touched_shards() {
        let mut index = small_index();
        let before: Vec<u32> = (0..index.nclusters()).map(|c| index.shard(c).crc()).collect();
        let extra = blobs(7, index.dim(), 2, 99);
        let touched = index.add_images(&extra);
        assert!(!touched.is_empty());
        assert_eq!(index.images(), 207);
        index.verify().unwrap();
        for (c, &was) in before.iter().enumerate() {
            let changed = index.shard(c).crc() != was;
            assert_eq!(changed, touched.contains(&c), "cluster {c}");
        }
        // New ids are probeable: a full probe covers the grown gallery.
        let slots: Vec<usize> = (0..index.entities()).collect();
        let wave = index.score_wave(&slots, index.nclusters(), 2, 0, 1).unwrap();
        for r in &wave.rankings {
            assert_eq!(r.ids.len(), 207);
        }
    }

    #[test]
    fn nan_poisoned_queries_are_flagged_not_ranked_first() {
        let (images, entities, dim) = (50, 2, 4);
        let embeddings = blobs(images, dim, 3, 21);
        let mut queries = blobs(entities, dim, 3, 22);
        queries[0] = f32::NAN;
        let index = ShardedIndex::build(queries, entities, &embeddings, images, dim, 3, 8, 5);
        let wave = index.score_wave(&[0, 1], index.nclusters(), 1, 5, 1).unwrap();
        assert!(!wave.rankings[0].finite, "NaN query must be flagged");
        assert!(wave.rankings[1].finite);
    }
}
