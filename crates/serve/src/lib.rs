//! `cem-serve`: fault-tolerant embedded matching service for CrossEM.
//!
//! The training side of the repo answers "how do we tune the prompts"; this
//! crate answers "how do we keep answering match queries when components
//! misbehave". It wraps the precomputed per-tier score matrices
//! ([`ServeIndex`]) in a service ([`MatchService`]) with:
//!
//! * **deadlines** — per-request virtual-unit budgets checked between
//!   pipeline stages;
//! * **bounded retry** — exponential backoff with jitter seeded from the
//!   request, never from wall clock ([`retry::Backoff`]);
//! * **circuit breakers** — one per fallible component, tripping on
//!   consecutive failures and half-opening on a seeded probe schedule
//!   ([`breaker::CircuitBreaker`]);
//! * **admission control** — bursts beyond the queue depth are shed;
//! * **graceful degradation** — the tier ladder full → cached → hard →
//!   zero-shot ([`Tier`]), with the zero-shot Eq. 4 floor infallible.
//!
//! Everything decision-relevant runs on a virtual cost-unit clock, so a
//! fixed `(seed, fault schedule)` reproduces responses, breaker
//! transitions, and retry traces bit-identically at any thread count. See
//! DESIGN.md §11 for the full determinism contract.

pub mod breaker;
pub mod brownout;
pub mod config;
pub mod fault;
pub mod hotswap;
pub mod queue;
pub mod request;
pub mod retry;
pub mod service;
pub mod shard;
pub mod tiers;

pub use breaker::{BreakerState, BreakerTransition, CircuitBreaker, Component};
pub use brownout::{BrownoutConfig, BrownoutController, BrownoutShift, WaveObservation};
pub use config::{BreakerConfig, RetryConfig, ServeConfig};
pub use fault::{silence_injected_panics, FaultKind, NoFaults, ServeFault, PANIC_MARKER};
pub use hotswap::{Generation, GenerationStore, SwapError, GENERATION_SCHEMA};
pub use queue::{AdmissionQueue, QueuedRequest, ShedCause};
pub use request::{Arrival, MatchRequest, Outcome, Response};
pub use retry::{splitmix64, Backoff};
pub use service::{MatchService, ServeStats};
pub use shard::{Shard, ShardError, ShardRanking, ShardedIndex, WaveScore, SHARD_SCHEMA};
pub use tiers::{
    cached_proximity_scores, hard_prompt_scores, zero_shot_scores, ServeIndex, Tier,
};
