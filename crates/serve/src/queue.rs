//! Bounded deterministic admission queue with deadline-aware dequeue.
//!
//! The queue orders requests **earliest-expiring-first**: the dequeue key is
//! `(absolute deadline, arrival tick, request id)`, so requests whose virtual
//! budget runs out soonest are served first and ties break in arrival order
//! (the id is the arrival sequence number within a stream). Because the key
//! is intrinsic to the request — never an insertion counter — the drain
//! order is a pure function of the queued *set*: offering the same batch of
//! arrivals in any permutation yields the identical dequeue order
//! (property-tested in `crates/serve/tests/proptest_queue.rs`).
//!
//! Two shedding rules, both pure functions of deterministic inputs:
//!
//! * **Queue-full** — an offer beyond `capacity` is rejected outright
//!   (tail drop). Depth therefore never exceeds the bound.
//! * **Age-based expiry** — a queued request whose remaining budget at the
//!   current virtual tick can no longer cover even the cheapest tier's cost
//!   is shed before execution instead of burning a wave slot to produce a
//!   guaranteed `DeadlineExceeded`. [`AdmissionQueue::is_expired`] is the
//!   whole rule: `deadline − now < cheapest_cost`.

use std::collections::BTreeMap;

use crate::request::MatchRequest;

/// A request parked in the admission queue, with its position on the
/// service's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    pub request: MatchRequest,
    /// Virtual tick at which the request arrived (entered the queue).
    pub arrival: u64,
    /// Absolute virtual tick at which the request's budget is exhausted
    /// (`arrival + deadline_units`).
    pub deadline: u64,
}

impl QueuedRequest {
    /// Budget left at virtual tick `now`.
    pub fn remaining(&self, now: u64) -> u64 {
        self.deadline.saturating_sub(now)
    }

    /// Virtual units spent waiting in the queue as of `now`.
    pub fn waited(&self, now: u64) -> u64 {
        now.saturating_sub(self.arrival)
    }
}

/// Why the queue refused (or evicted) a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The queue was at capacity when the request arrived.
    QueueFull,
    /// The request aged out: its remaining budget can no longer cover the
    /// cheapest tier.
    Expired,
}

/// Bounded earliest-expiring-first admission queue.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    capacity: usize,
    /// EDF order: `(deadline, arrival, id)`. The id is unique per stream,
    /// making the key total — iteration order is a pure function of the
    /// queued set, independent of insertion order.
    entries: BTreeMap<(u64, u64, u64), QueuedRequest>,
}

impl AdmissionQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "admission queue capacity must be positive");
        AdmissionQueue { capacity, entries: BTreeMap::new() }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queue occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f32 {
        self.entries.len() as f32 / self.capacity as f32
    }

    /// Offer a request arriving at virtual tick `now` with a budget of
    /// `deadline_units`. Rejected with [`ShedCause::QueueFull`] when the
    /// queue is at capacity — depth never exceeds the bound.
    pub fn offer(
        &mut self,
        request: MatchRequest,
        now: u64,
        deadline_units: u64,
    ) -> Result<(), ShedCause> {
        if self.entries.len() >= self.capacity {
            return Err(ShedCause::QueueFull);
        }
        let queued = QueuedRequest {
            request,
            arrival: now,
            deadline: now.saturating_add(deadline_units),
        };
        self.entries.insert((queued.deadline, queued.arrival, request.id), queued);
        Ok(())
    }

    /// The age-based shed rule: at tick `now`, is `queued`'s remaining
    /// budget too small to cover the cheapest tier? A pure function of
    /// `(deadline, clock)` — no queue state, no wall clock.
    pub fn is_expired(queued: &QueuedRequest, now: u64, cheapest_cost: u64) -> bool {
        queued.remaining(now) < cheapest_cost
    }

    /// Remove and return every queued request that [`Self::is_expired`] at
    /// `now`, in EDF order. Expired entries are exactly the leading span of
    /// the deadline-ordered map.
    pub fn expire(&mut self, now: u64, cheapest_cost: u64) -> Vec<QueuedRequest> {
        let mut expired = Vec::new();
        while let Some(entry) = self.entries.first_entry() {
            if Self::is_expired(entry.get(), now, cheapest_cost) {
                expired.push(entry.remove());
            } else {
                break;
            }
        }
        expired
    }

    /// Dequeue up to `n` requests in earliest-expiring-first order.
    pub fn take(&mut self, n: usize) -> Vec<QueuedRequest> {
        let mut batch = Vec::with_capacity(n.min(self.entries.len()));
        while batch.len() < n {
            match self.entries.pop_first() {
                Some((_, queued)) => batch.push(queued),
                None => break,
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> MatchRequest {
        MatchRequest { id, entity: id as usize % 3, seed: id.wrapping_mul(97) }
    }

    #[test]
    fn dequeue_is_earliest_expiring_first_with_arrival_tie_break() {
        let mut queue = AdmissionQueue::new(8);
        // Same arrival tick, same budget: ties break by id (arrival order).
        queue.offer(request(2), 0, 100).unwrap();
        queue.offer(request(0), 0, 100).unwrap();
        queue.offer(request(1), 0, 100).unwrap();
        // A later arrival with a tighter budget expires first of all.
        queue.offer(request(3), 10, 20).unwrap();
        let order: Vec<u64> = queue.take(4).iter().map(|q| q.request.id).collect();
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut queue = AdmissionQueue::new(2);
        assert!(queue.offer(request(0), 0, 50).is_ok());
        assert!(queue.offer(request(1), 0, 50).is_ok());
        assert_eq!(queue.offer(request(2), 0, 50), Err(ShedCause::QueueFull));
        assert_eq!(queue.len(), 2);
        queue.take(1);
        assert!(queue.offer(request(2), 1, 50).is_ok(), "a drained slot frees capacity");
    }

    #[test]
    fn expiry_sheds_exactly_the_unaffordable() {
        let mut queue = AdmissionQueue::new(8);
        queue.offer(request(0), 0, 100).unwrap(); // deadline 100
        queue.offer(request(1), 0, 300).unwrap(); // deadline 300
        queue.offer(request(2), 50, 100).unwrap(); // deadline 150
        // At tick 120 with cheapest cost 60: remaining are 0, 180, 30 —
        // requests 0 and 2 can no longer cover the floor.
        let expired: Vec<u64> =
            queue.expire(120, 60).iter().map(|q| q.request.id).collect();
        assert_eq!(expired, vec![0, 2]);
        assert_eq!(queue.len(), 1);
        // Exactly at the boundary (remaining == cost) the request survives.
        let survivor = queue.take(1)[0];
        assert!(!AdmissionQueue::is_expired(&survivor, 240, 60));
        assert!(AdmissionQueue::is_expired(&survivor, 241, 60));
    }

    #[test]
    fn waited_and_remaining_track_the_clock() {
        let queued = QueuedRequest { request: request(0), arrival: 40, deadline: 140 };
        assert_eq!(queued.waited(100), 60);
        assert_eq!(queued.remaining(100), 40);
        assert_eq!(queued.remaining(200), 0, "remaining saturates at zero");
        assert_eq!(queued.waited(10), 0, "waited saturates before arrival");
    }
}
