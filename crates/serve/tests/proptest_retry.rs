//! Property-based tests for the retry/backoff schedule (DESIGN.md §11):
//! for any policy and any request seed, the schedule must be a pure
//! function of `(config, seed)` — replaying it yields the identical delay
//! sequence — and every delay must respect the configured bounds.

use cem_serve::{Backoff, RetryConfig};
use proptest::prelude::*;

/// Build a valid policy from raw generator draws (`max_delay ≥ base_delay`,
/// as `validate()` requires).
fn policy(max_retries: u32, base_delay: u64, extra: u64) -> RetryConfig {
    let config = RetryConfig { max_retries, base_delay, max_delay: base_delay + extra };
    config.validate();
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same seed → bit-identical schedule; the whole point of seeding the
    /// jitter from the request rather than wall clock or a global RNG.
    #[test]
    fn schedule_is_deterministic_per_seed(
        max_retries in 0u32..8,
        base_delay in 1u64..200,
        extra in 0u64..2000,
        seed in 0u64..u64::MAX,
    ) {
        let config = policy(max_retries, base_delay, extra);
        let a = Backoff::new(config, seed).schedule();
        let b = Backoff::new(config, seed).schedule();
        prop_assert_eq!(&a, &b, "replaying the same seed must reproduce the schedule");
        // And per-delay lookups agree with the batch schedule.
        let backoff = Backoff::new(config, seed);
        for (i, &delay) in a.iter().enumerate() {
            prop_assert_eq!(backoff.delay(i as u32 + 1), delay);
        }
    }

    /// The schedule is bounded: exactly `max_retries` entries, each within
    /// `[1, max_delay]` — a request can never back off forever, and the
    /// virtual-clock charge per retry is capped.
    #[test]
    fn schedule_is_bounded(
        max_retries in 0u32..8,
        base_delay in 1u64..200,
        extra in 0u64..2000,
        seed in 0u64..u64::MAX,
    ) {
        let config = policy(max_retries, base_delay, extra);
        let schedule = Backoff::new(config, seed).schedule();
        prop_assert_eq!(schedule.len(), config.max_retries as usize);
        for (i, &delay) in schedule.iter().enumerate() {
            prop_assert!(delay >= 1, "retry {} has a zero delay", i + 1);
            prop_assert!(
                delay <= config.max_delay,
                "retry {} delay {} exceeds max_delay {}",
                i + 1,
                delay,
                config.max_delay
            );
        }
    }

    /// Different seeds de-synchronise retries (jitter does its job): over a
    /// spread of seeds, more than one distinct first-retry delay appears
    /// whenever the jitter window is non-trivial.
    #[test]
    fn jitter_varies_across_seeds(base in 8u64..64) {
        let config = RetryConfig { max_retries: 1, base_delay: base, max_delay: base * 4 };
        let distinct: std::collections::HashSet<u64> =
            (0u64..64).map(|seed| Backoff::new(config, seed).delay(1)).collect();
        prop_assert!(
            distinct.len() > 1,
            "64 seeds produced a single delay {:?} — jitter is dead",
            distinct
        );
    }
}
