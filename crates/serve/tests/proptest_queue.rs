//! Property-based tests for the admission queue (DESIGN.md §12): dequeue
//! order must be a pure function of the queued *set* (never insertion
//! order), shed decisions must be pure functions of `(deadline, clock)`,
//! and depth must never exceed the configured bound.

use cem_serve::{AdmissionQueue, MatchRequest, QueuedRequest, ShedCause};
use proptest::prelude::*;

/// One generated arrival: `(arrival tick, deadline budget)`. Ids are
/// assigned by index so they are unique within a case.
fn offer_all(queue: &mut AdmissionQueue, entries: &[(u64, u64)], order: &[usize]) {
    for &i in order {
        let (at, budget) = entries[i];
        let request = MatchRequest { id: i as u64, entity: i % 7, seed: i as u64 };
        queue.offer(request, at, budget).expect("capacity sized to fit every entry");
    }
}

/// Deterministic Fisher–Yates driven by a splitmix64 stream — the
/// permutation is a pure function of `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (cem_serve::splitmix64(seed, i as u64) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Offering the same set of arrivals in *any* permutation yields the
    /// identical dequeue order: the EDF key `(deadline, arrival, id)` is
    /// intrinsic to the request, never an insertion counter.
    #[test]
    fn dequeue_order_is_independent_of_insertion_order(
        entries in proptest::collection::vec((0u64..500, 60u64..2000), 1..40),
        seed in 0u64..u64::MAX,
    ) {
        let forward: Vec<usize> = (0..entries.len()).collect();
        let shuffled = permutation(entries.len(), seed);

        let mut a = AdmissionQueue::new(entries.len());
        offer_all(&mut a, &entries, &forward);
        let mut b = AdmissionQueue::new(entries.len());
        offer_all(&mut b, &entries, &shuffled);

        let drained_a: Vec<u64> =
            a.take(entries.len()).iter().map(|q| q.request.id).collect();
        let drained_b: Vec<u64> =
            b.take(entries.len()).iter().map(|q| q.request.id).collect();
        prop_assert_eq!(&drained_a, &drained_b, "permuted insertion changed dequeue order");

        // And the order really is earliest-expiring-first with arrival/id
        // tie-breaks: the (deadline, arrival, id) key is non-decreasing.
        let keys: Vec<(u64, u64, u64)> = drained_a
            .iter()
            .map(|&id| {
                let (at, budget) = entries[id as usize];
                (at + budget, at, id)
            })
            .collect();
        for pair in keys.windows(2) {
            prop_assert!(pair[0] <= pair[1], "dequeue violated EDF order: {:?}", keys);
        }
    }

    /// The age-based shed rule is a pure function of `(deadline, clock,
    /// cheapest cost)`: `expire` evicts exactly the entries `is_expired`
    /// flags, and re-evaluating the predicate on the survivors agrees.
    #[test]
    fn shed_decisions_are_pure_functions_of_deadline_and_clock(
        entries in proptest::collection::vec((0u64..500, 60u64..2000), 1..40),
        now in 0u64..3000,
        cheapest in 1u64..500,
    ) {
        let mut queue = AdmissionQueue::new(entries.len());
        offer_all(&mut queue, &entries, &(0..entries.len()).collect::<Vec<_>>());

        let expected: Vec<bool> = entries
            .iter()
            .map(|&(at, budget)| (at + budget).saturating_sub(now) < cheapest)
            .collect();
        let expired = queue.expire(now, cheapest);
        for queued in &expired {
            prop_assert!(
                expected[queued.request.id as usize],
                "req {} evicted but its (deadline, clock) says it is affordable",
                queued.request.id
            );
            prop_assert!(AdmissionQueue::is_expired(queued, now, cheapest));
        }
        prop_assert_eq!(
            expired.len(),
            expected.iter().filter(|&&e| e).count(),
            "expire() must evict exactly the flagged entries"
        );
        // Survivors re-evaluate as affordable under the same (now, cost).
        for queued in queue.take(entries.len()) {
            prop_assert!(!AdmissionQueue::is_expired(&queued, now, cheapest));
        }
        // Purity: the predicate depends only on the value, not queue state.
        let probe = QueuedRequest { request: MatchRequest { id: 0, entity: 0, seed: 0 }, arrival: 0, deadline: now + cheapest };
        prop_assert!(!AdmissionQueue::is_expired(&probe, now, cheapest), "boundary: remaining == cost survives");
        let probe = QueuedRequest { deadline: (now + cheapest).saturating_sub(1), ..probe };
        prop_assert!(AdmissionQueue::is_expired(&probe, now, cheapest));
    }

    /// Depth never exceeds the bound: every offer past capacity is rejected
    /// queue-full, and draining frees exactly that many slots.
    #[test]
    fn depth_never_exceeds_the_capacity_bound(
        capacity in 1usize..32,
        offers in proptest::collection::vec((0u64..500, 60u64..2000), 0..80),
        drain in 0usize..16,
    ) {
        let mut queue = AdmissionQueue::new(capacity);
        let mut accepted = 0usize;
        for (i, &(at, budget)) in offers.iter().enumerate() {
            let request = MatchRequest { id: i as u64, entity: 0, seed: 0 };
            match queue.offer(request, at, budget) {
                Ok(()) => accepted += 1,
                Err(cause) => {
                    prop_assert_eq!(cause, ShedCause::QueueFull);
                    prop_assert_eq!(queue.len(), capacity, "rejection below capacity");
                }
            }
            prop_assert!(queue.len() <= capacity, "depth {} broke the bound {}", queue.len(), capacity);
        }
        prop_assert_eq!(queue.len(), accepted.min(capacity));

        let drained = queue.take(drain);
        prop_assert_eq!(drained.len(), drain.min(accepted.min(capacity)));
        prop_assert_eq!(queue.len(), accepted.min(capacity) - drained.len());
        // Freed slots accept new offers again.
        if !drained.is_empty() {
            let request = MatchRequest { id: 10_000, entity: 0, seed: 0 };
            prop_assert!(queue.offer(request, 0, 100).is_ok());
        }
    }
}
