//! Property tests for the cluster-pruned shard index (DESIGN.md §13).
//!
//! Three contracts, over randomly drawn gallery shapes:
//!
//! 1. **Exactness at full probe** — `nprobe = nclusters` must reproduce the
//!    dense scan bit-for-bit: pruning is an *approximation knob*, never a
//!    different scoring path.
//! 2. **Replay determinism** — probe schedules are pure functions of
//!    `(query, index, config)`, and wave scoring is invariant to both the
//!    thread count and the batch/row-wise GEMM split (`min_batch`).
//! 3. **Fail-closed integrity** — a damaged shard surfaces as a typed
//!    [`ShardError::Corrupt`] naming the shard, and a service holding a
//!    damaged shard index serves exactly what the dense service serves.

use cem_serve::{
    MatchRequest, MatchService, NoFaults, ServeConfig, ShardError, ShardedIndex,
};
use cem_serve::splitmix64;
use cem_tensor::io::StateDict;
use cem_tensor::par::ThreadsGuard;
use crossem::matcher::rank_row;
use proptest::prelude::*;

/// Deterministic unit-normalised vectors; clustered enough for k-means to
/// find structure, varied enough to exercise ties and empty clusters.
fn vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut out = Vec::with_capacity(n * dim);
    for i in 0..n {
        let row: Vec<f32> = (0..dim)
            .map(|d| {
                (splitmix64(seed, (i * dim + d) as u64) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
            })
            .collect();
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        out.extend(row.into_iter().map(|v| v / norm));
    }
    out
}

fn build(images: usize, entities: usize, dim: usize, nclusters: usize, seed: u64) -> ShardedIndex {
    let queries = vectors(entities, dim, seed ^ 0x51);
    let embeddings = vectors(images, dim, seed ^ 0x1E);
    ShardedIndex::build(queries, entities, &embeddings, images, dim, nclusters, 6, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Probing every cluster is the dense scan: same candidates, same
    /// packed panels, same accumulation schedule — so the ranking must be
    /// bit-identical, not merely close.
    #[test]
    fn full_probe_is_bit_identical_to_the_dense_scan(
        images in 8usize..80,
        entities in 1usize..6,
        dim in 2usize..12,
        nclusters in 1usize..8,
        seed in 0u64..(1u64 << 32),
    ) {
        let index = build(images, entities, dim, nclusters, seed);
        let slots: Vec<usize> = (0..entities).collect();
        let wave = index.score_wave(&slots, nclusters, 2, 10, 1).unwrap();
        for (entity, ranking) in slots.iter().zip(&wave.rankings) {
            let dense = index.dense_rank(*entity, 10, 1);
            prop_assert_eq!(&ranking.ids, &dense, "entity {} diverged from dense", entity);
        }
        // Every image was a candidate for every slot.
        prop_assert!(wave.probed_fraction > 0.999, "fraction {}", wave.probed_fraction);
    }

    /// Probe schedules and partial-probe rankings are pure: thread count
    /// and the batched-vs-rowwise GEMM split must not change a bit.
    #[test]
    fn probe_schedules_and_waves_are_thread_and_batch_invariant(
        images in 16usize..80,
        entities in 2usize..6,
        dim in 2usize..12,
        nclusters in 2usize..8,
        nprobe_raw in 1usize..8,
        seed in 0u64..(1u64 << 32),
    ) {
        let nprobe = nprobe_raw.min(nclusters);
        let index = build(images, entities, dim, nclusters, seed);
        let slots: Vec<usize> = (0..entities).collect();
        let run = |threads: usize, min_batch: usize| {
            let _guard = ThreadsGuard::new(threads);
            let probes: Vec<Vec<usize>> =
                slots.iter().map(|&e| index.probe(e, nprobe)).collect();
            let wave = index.score_wave(&slots, nprobe, min_batch, 10, threads).unwrap();
            (probes, wave)
        };
        let (p1, w1) = run(1, 2);
        let (p4, w4) = run(4, 2);
        let (_, rowwise) = run(1, usize::MAX);
        prop_assert_eq!(p1, p4, "probe schedules must not depend on thread count");
        prop_assert_eq!(&w1.rankings, &w4.rankings);
        prop_assert_eq!(
            &w1.rankings, &rowwise.rankings,
            "coalesced and row-wise scoring must agree bitwise"
        );
        prop_assert_eq!(rowwise.batched_gemms, 0, "min_batch = MAX must never batch");
        // Partial probes score at most the probed posting lists.
        prop_assert!(w1.probed_fraction <= 1.0 + 1e-9);
    }

    /// CEMT round-trip: the decoded index serves the same rankings, and a
    /// payload tampered under a stale checksum is a typed corrupt error
    /// naming the damaged shard.
    #[test]
    fn cemt_round_trips_and_tampering_is_typed(
        images in 8usize..48,
        entities in 1usize..4,
        dim in 2usize..8,
        nclusters in 1usize..6,
        seed in 0u64..(1u64 << 32),
    ) {
        let mut index = build(images, entities, dim, nclusters, seed);
        let bytes = index.to_state_dict().to_bytes();
        let decoded =
            ShardedIndex::from_state_dict(&StateDict::from_bytes(&bytes).unwrap()).unwrap();
        let slots: Vec<usize> = (0..entities).collect();
        let a = index.score_wave(&slots, nclusters, 2, 10, 1).unwrap();
        let b = decoded.score_wave(&slots, nclusters, 2, 10, 1).unwrap();
        prop_assert_eq!(a.rankings, b.rankings);

        let victim = (0..index.nclusters()).find(|&c| !index.shard(c).is_empty()).unwrap();
        index.corrupt_shard_for_tests(victim);
        let err = ShardedIndex::from_state_dict(&index.to_state_dict()).map(|_| ()).unwrap_err();
        prop_assert_eq!(err, ShardError::Corrupt { shard: victim });
    }
}

/// End-to-end fail-closed check: a service holding a damaged shard index
/// must answer every request exactly as the dense service does, via the
/// wave-level fallback — corruption costs recall nothing.
#[test]
fn damaged_shards_degrade_the_service_to_dense_bitwise() {
    let (entities, images, dim, nclusters) = (5, 60, 8, 4);
    let mut shards = build(images, entities, dim, nclusters, 21);
    let full = shards.dense_scores(1);
    let filler = |offset: f32| {
        (0..entities * images).map(|i| i as f32 * 0.01 + offset).collect::<Vec<f32>>()
    };
    let index = cem_serve::ServeIndex::new(
        entities,
        images,
        [full, filler(0.1), filler(0.2), filler(0.3)],
    );
    let config = ServeConfig { top_k: 10, nclusters, nprobe: nclusters, ..ServeConfig::default() };
    let requests = MatchRequest::stream(12, entities, 9);

    let mut dense = MatchService::new(config, &index);
    let want = dense.run(&requests, &NoFaults);

    let victim = (0..shards.nclusters()).find(|&c| !shards.shard(c).is_empty()).unwrap();
    shards.corrupt_shard_for_tests(victim);
    assert_eq!(shards.verify(), Err(ShardError::Corrupt { shard: victim }));

    let mut probed = MatchService::with_shards(config, &index, &shards);
    let got = probed.run(&requests, &NoFaults);
    assert_eq!(got, want, "fallback must reproduce the dense service bitwise");
    assert!(probed.stats().shard_fallbacks >= 1);

    // Sanity: the full-tier rankings really are the dense oracle's.
    for (request, response) in requests.iter().zip(&got) {
        if let cem_serve::Outcome::Served { ranking, .. } = &response.outcome {
            let row = shards.dense_scores(1)
                [request.entity * images..(request.entity + 1) * images]
                .to_vec();
            assert_eq!(ranking, &rank_row(&row, 10));
        }
    }
}
