//! In-process contrastive pre-training of the dual encoder on a caption ↔
//! image corpus.
//!
//! This is what turns the randomly-initialised [`crate::Clip`] into the
//! "pre-trained MMLM" the paper assumes: after this loop the model maps
//! captions and images of the same underlying entity close together, so
//! zero-shot prompting works and prompt *tuning* has a meaningful starting
//! point.

use cem_nn::Module;
use cem_obs::{cem_debug, cem_info};
use cem_tensor::optim::{AdamW, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::image::Image;
use crate::model::Clip;

/// Pre-training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Gradient-clipping threshold (global L2 norm).
    pub clip_norm: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig { epochs: 5, batch_size: 32, lr: 3e-4, clip_norm: 5.0 }
    }
}

/// Outcome of a pre-training run.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Mean contrastive loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Number of optimiser steps taken.
    pub steps: usize,
}

impl PretrainReport {
    /// Mean loss of the last epoch, or `None` for an empty run — so an
    /// empty report is distinguishable from a diverged (NaN-loss) one.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

/// Contrastively pre-train `clip` on aligned `(caption tokens, image)`
/// pairs. Pairs are shuffled each epoch; ragged final batches are dropped
/// (InfoNCE needs ≥ 2 examples to have negatives).
pub fn pretrain<R: Rng>(
    clip: &Clip,
    pairs: &[(Vec<usize>, Image)],
    config: &PretrainConfig,
    rng: &mut R,
) -> PretrainReport {
    assert!(pairs.len() >= 2, "need at least two pairs for contrastive pre-training");
    let batch_size = config.batch_size.min(pairs.len()).max(2);
    let mut opt = AdamW::new(clip.params(), config.lr);
    let mut indices: Vec<usize> = (0..pairs.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut steps = 0usize;

    cem_info!(
        "pre-training: {} epochs over {} pairs (batch {batch_size})",
        config.epochs,
        pairs.len()
    );
    for epoch in 0..config.epochs {
        indices.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in indices.chunks(batch_size) {
            if chunk.len() < 2 {
                continue;
            }
            cem_obs::span!("pretrain.batch");
            let texts: Vec<Vec<usize>> = chunk.iter().map(|&i| pairs[i].0.clone()).collect();
            let images: Vec<&Image> = chunk.iter().map(|&i| &pairs[i].1).collect();
            let text_emb = clip.encode_texts(&texts);
            let image_emb = clip.encode_images(&images);
            let loss = clip.contrastive_loss(&text_emb, &image_emb);
            epoch_loss += loss.item();
            batches += 1;
            opt.zero_grad();
            loss.backward();
            opt.clip_grad_norm(config.clip_norm);
            opt.step();
            steps += 1;
        }
        let mean = if batches > 0 { epoch_loss / batches as f32 } else { f32::NAN };
        cem_debug!("pre-train epoch {epoch}: mean_loss={mean} batches={batches}");
        epoch_losses.push(mean);
    }

    PretrainReport { epoch_losses, steps }
}

/// Retrieval accuracy on aligned pairs: fraction of captions whose own image
/// is the top-1 match. A quick pre-training sanity metric.
pub fn aligned_top1_accuracy(clip: &Clip, pairs: &[(Vec<usize>, Image)]) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    cem_tensor::no_grad(|| {
        let texts: Vec<Vec<usize>> = pairs.iter().map(|(t, _)| t.clone()).collect();
        let images: Vec<&Image> = pairs.iter().map(|(_, i)| i).collect();
        let text_emb = clip.encode_texts(&texts);
        let image_emb = clip.encode_images(&images);
        let logits = clip.similarity_logits(&text_emb, &image_emb);
        let predictions = logits.argmax_rows();
        let correct = predictions.iter().enumerate().filter(|&(i, &p)| i == p).count();
        correct as f32 / pairs.len() as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClipConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A micro-world where caption token `10 + k` pairs with an image whose
    /// patches point along axis `k`. Learnable by a tiny model in a few
    /// epochs.
    fn toy_corpus(rng: &mut StdRng, n_classes: usize, per_class: usize) -> Vec<(Vec<usize>, Image)> {
        let patch_dim = 6;
        let mut pairs = Vec::new();
        for k in 0..n_classes {
            for _ in 0..per_class {
                let tokens = vec![1, 10 + k, 2];
                let patches: Vec<Vec<f32>> = (0..4)
                    .map(|_| {
                        let mut p = vec![0.0f32; patch_dim];
                        p[k % patch_dim] = 1.0;
                        for v in p.iter_mut() {
                            *v += 0.1 * cem_tensor::init::randn_value(rng);
                        }
                        p
                    })
                    .collect();
                pairs.push((tokens, Image::from_patches(patches)));
            }
        }
        pairs
    }

    #[test]
    fn pretraining_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let clip = Clip::new(ClipConfig::tiny(40, 6), &mut rng);
        let corpus = toy_corpus(&mut rng, 4, 4);
        let config = PretrainConfig { epochs: 6, batch_size: 8, lr: 1e-3, clip_norm: 5.0 };
        let report = pretrain(&clip, &corpus, &config, &mut rng);
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.final_loss().expect("non-empty run") < report.epoch_losses[0],
            "{:?}",
            report.epoch_losses
        );
        assert!(report.steps > 0);
    }

    #[test]
    fn pretraining_improves_retrieval() {
        let mut rng = StdRng::seed_from_u64(1);
        let clip = Clip::new(ClipConfig::tiny(40, 6), &mut rng);
        let corpus = toy_corpus(&mut rng, 4, 3);
        let before = aligned_top1_accuracy(&clip, &corpus);
        let config = PretrainConfig { epochs: 12, batch_size: 12, lr: 2e-3, clip_norm: 5.0 };
        pretrain(&clip, &corpus, &config, &mut rng);
        let after = aligned_top1_accuracy(&clip, &corpus);
        assert!(
            after > before || after > 0.5,
            "retrieval did not improve: before {before}, after {after}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_pair_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let clip = Clip::new(ClipConfig::tiny(40, 6), &mut rng);
        let corpus = toy_corpus(&mut rng, 1, 1);
        pretrain(&clip, &corpus, &PretrainConfig::default(), &mut rng);
    }
}
