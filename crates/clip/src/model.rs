//! The CLIP dual-encoder model: text tower + image tower + learnable
//! temperature, with the symmetric contrastive objective.

use cem_nn::Module;
use cem_tensor::io::CheckpointError;
use cem_tensor::Tensor;
use rand::Rng;

use crate::image::Image;
use crate::image_encoder::{ImageEncoder, ImageEncoderConfig};
use crate::text_encoder::{TextEncoder, TextEncoderConfig};

/// Joint configuration of both towers.
#[derive(Debug, Clone, Copy)]
pub struct ClipConfig {
    pub vocab_size: usize,
    pub d_model: usize,
    pub heads: usize,
    pub layers: usize,
    pub ffn_hidden: usize,
    /// Text context length (77 in stock CLIP).
    pub max_len: usize,
    pub embed_dim: usize,
    pub patch_dim: usize,
    pub max_patches: usize,
}

impl ClipConfig {
    /// A laptop-scale model shaped like CLIP ViT/32 (12-layer text tower →
    /// 2 layers here; 512-d joint space → 32-d here). Used by every
    /// experiment unless a harness overrides it.
    pub fn small(vocab_size: usize, patch_dim: usize) -> Self {
        ClipConfig {
            vocab_size,
            d_model: 64,
            heads: 4,
            layers: 2,
            ffn_hidden: 128,
            max_len: 77,
            embed_dim: 32,
            patch_dim,
            max_patches: 16,
        }
    }

    /// An even smaller model for unit tests.
    pub fn tiny(vocab_size: usize, patch_dim: usize) -> Self {
        ClipConfig {
            vocab_size,
            d_model: 16,
            heads: 2,
            layers: 1,
            ffn_hidden: 32,
            max_len: 16,
            embed_dim: 8,
            patch_dim,
            max_patches: 8,
        }
    }

    fn text(&self) -> TextEncoderConfig {
        TextEncoderConfig {
            vocab_size: self.vocab_size,
            d_model: self.d_model,
            heads: self.heads,
            layers: self.layers,
            ffn_hidden: self.ffn_hidden,
            max_len: self.max_len,
            embed_dim: self.embed_dim,
        }
    }

    fn image(&self) -> ImageEncoderConfig {
        ImageEncoderConfig {
            patch_dim: self.patch_dim,
            d_model: self.d_model,
            heads: self.heads,
            layers: self.layers,
            ffn_hidden: self.ffn_hidden,
            max_patches: self.max_patches,
            embed_dim: self.embed_dim,
        }
    }
}

/// The dual encoder. The learnable `log_temp` parameterises the softmax
/// temperature τ of Eq. 4 as `exp(log_temp)` (kept in log space for
/// stability, as in the reference implementation).
pub struct Clip {
    pub text: TextEncoder,
    pub image: ImageEncoder,
    log_temp: Tensor,
    config: ClipConfig,
}

impl Clip {
    pub fn new<R: Rng>(config: ClipConfig, rng: &mut R) -> Self {
        Clip {
            text: TextEncoder::new(config.text(), rng),
            image: ImageEncoder::new(config.image(), rng),
            // ln(1/0.07) ≈ 2.659 — the CLIP paper's initialisation.
            log_temp: Tensor::scalar((1.0f32 / 0.07).ln()).requires_grad(),
            config,
        }
    }

    pub fn config(&self) -> &ClipConfig {
        &self.config
    }

    /// Current temperature multiplier `exp(log_temp)`.
    pub fn temperature(&self) -> f32 {
        self.log_temp.at(0).exp()
    }

    /// Encode a batch of token-id sequences: `[N, embed_dim]`, L2-normalised.
    pub fn encode_texts(&self, batch: &[Vec<usize>]) -> Tensor {
        self.text.encode_batch(batch).l2_normalize_rows()
    }

    /// Encode a batch of images: `[M, embed_dim]`, L2-normalised.
    pub fn encode_images(&self, images: &[&Image]) -> Tensor {
        self.image.encode_batch(images).l2_normalize_rows()
    }

    /// Temperature-scaled cosine-similarity logits `[N, M]` between
    /// already-normalised embedding matrices.
    pub fn similarity_logits(&self, text_emb: &Tensor, image_emb: &Tensor) -> Tensor {
        // Clamp the learnable temperature to CLIP's stability range.
        let temp = self.log_temp.clamp(0.0, 4.6052).exp(); // e^4.6052 ≈ 100
        text_emb.matmul_nt(image_emb).mul_scalar_tensor(&temp)
    }

    /// Eq. 4: matching probability of each text against all images — a
    /// softmax over the image axis of the similarity logits.
    pub fn matching_probabilities(&self, text_emb: &Tensor, image_emb: &Tensor) -> Tensor {
        self.similarity_logits(text_emb, image_emb).softmax_rows()
    }

    /// Symmetric InfoNCE over an aligned batch: row `i` of `text_emb`
    /// matches row `i` of `image_emb`.
    pub fn contrastive_loss(&self, text_emb: &Tensor, image_emb: &Tensor) -> Tensor {
        let (n, _) = text_emb.shape().as_matrix();
        let (m, _) = image_emb.shape().as_matrix();
        assert_eq!(n, m, "aligned contrastive loss needs equal batch sizes");
        let targets: Vec<usize> = (0..n).collect();
        let logits = self.similarity_logits(text_emb, image_emb);
        let loss_t2i = logits.cross_entropy_rows(&targets);
        let loss_i2t = logits.transpose().cross_entropy_rows(&targets);
        loss_t2i.add(&loss_i2t).mul_scalar(0.5)
    }

    /// Freeze the image tower and contrastive temperature (the CrossEM
    /// framework trains only prompts + text-side parameters; paper
    /// Sec. II-C: "the image encoder M_I and the contrastive loss in the
    /// CLIP are frozen").
    pub fn freeze_image_tower(&self) {
        self.image.set_trainable(false);
        self.log_temp.set_requires_grad(false);
    }

    pub fn embed_dim(&self) -> usize {
        self.config.embed_dim
    }

    /// Save all parameters to a checkpoint file (CEMT v2: CRC-protected,
    /// written atomically via temp file + fsync + rename).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        self.state_dict().save(path)
    }

    /// Load parameters from a checkpoint produced by [`Clip::save`] into an
    /// architecture-compatible model (shapes must match; names are checked).
    /// Corrupted or mismatched files surface as typed errors, never panics.
    pub fn load(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        let dict = cem_tensor::io::StateDict::load(path)?;
        self.try_load_state_dict(&dict)
    }
}

impl Module for Clip {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("text", self.text.named_params());
        v.extend(cem_nn::module::with_prefix("image", self.image.named_params()));
        v.push(("log_temp".to_string(), self.log_temp.clone()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_clip(seed: u64) -> (Clip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let clip = Clip::new(ClipConfig::tiny(40, 6), &mut rng);
        (clip, rng)
    }

    fn random_image(rng: &mut StdRng) -> Image {
        let data: Vec<f32> = (0..4 * 6).map(|_| cem_tensor::init::randn_value(rng)).collect();
        Image::new(data, 4, 6)
    }

    #[test]
    fn temperature_initialised_like_clip() {
        let (clip, _) = tiny_clip(0);
        assert!((clip.temperature() - 1.0 / 0.07).abs() < 0.01);
    }

    #[test]
    fn encodings_are_unit_norm() {
        let (clip, mut rng) = tiny_clip(1);
        let texts = vec![vec![1, 5, 2], vec![1, 8, 9, 2]];
        let t = clip.encode_texts(&texts);
        for r in 0..2 {
            let norm: f32 = (0..8).map(|c| t.at2(r, c).powi(2)).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4);
        }
        let imgs = [random_image(&mut rng)];
        let refs: Vec<&Image> = imgs.iter().collect();
        let i = clip.encode_images(&refs);
        let norm: f32 = (0..8).map(|c| i.at2(0, c).powi(2)).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn matching_probabilities_rows_sum_to_one() {
        let (clip, mut rng) = tiny_clip(2);
        let texts = vec![vec![1, 5, 2], vec![1, 7, 2]];
        let imgs: Vec<Image> = (0..3).map(|_| random_image(&mut rng)).collect();
        let refs: Vec<&Image> = imgs.iter().collect();
        let p = clip.matching_probabilities(&clip.encode_texts(&texts), &clip.encode_images(&refs));
        assert_eq!(p.dims(), &[2, 3]);
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| p.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn contrastive_loss_is_finite_and_positive() {
        let (clip, mut rng) = tiny_clip(3);
        let texts = vec![vec![1, 5, 2], vec![1, 7, 2], vec![1, 9, 2]];
        let imgs: Vec<Image> = (0..3).map(|_| random_image(&mut rng)).collect();
        let refs: Vec<&Image> = imgs.iter().collect();
        let loss =
            clip.contrastive_loss(&clip.encode_texts(&texts), &clip.encode_images(&refs)).item();
        assert!(loss.is_finite());
        assert!(loss > 0.0);
    }

    #[test]
    fn freeze_image_tower_blocks_gradients() {
        let (clip, mut rng) = tiny_clip(4);
        clip.freeze_image_tower();
        let texts = vec![vec![1, 5, 2], vec![1, 7, 2]];
        let imgs: Vec<Image> = (0..2).map(|_| random_image(&mut rng)).collect();
        let refs: Vec<&Image> = imgs.iter().collect();
        let loss = clip.contrastive_loss(&clip.encode_texts(&texts), &clip.encode_images(&refs));
        loss.backward();
        // Text params get grads; image tower params do not.
        assert!(clip.text.named_params().iter().any(|(_, p)| p.grad().is_some()));
        // The image tower still participates in forward, so its tensors may
        // appear in the graph, but frozen leaves accumulate nothing.
        for (name, p) in clip.image.named_params() {
            assert!(p.grad().is_none(), "frozen param {name} received grad");
        }
    }

    #[test]
    fn disk_checkpoint_roundtrip() {
        let (clip, _) = tiny_clip(6);
        let dir = std::env::temp_dir().join("cem_clip_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cemt");
        clip.save(&path).unwrap();

        let (clip2, _) = tiny_clip(123);
        clip2.load(&path).unwrap();
        let texts = vec![vec![1, 7, 2]];
        assert_eq!(clip.encode_texts(&texts).to_vec(), clip2.encode_texts(&texts).to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_dict_roundtrip_preserves_outputs() {
        let (clip, mut rng) = tiny_clip(5);
        let dict = clip.state_dict();
        let (clip2, _) = tiny_clip(99); // different init
        clip2.load_state_dict(&dict);
        let texts = vec![vec![1, 6, 2]];
        let a = clip.encode_texts(&texts).to_vec();
        let b = clip2.encode_texts(&texts).to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        let _ = &mut rng;
    }
}
