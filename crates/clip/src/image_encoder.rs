//! The image tower: patch projection → class token → Transformer → head
//! projection (a miniature ViT).

use cem_nn::{Embedding, Linear, Module, TransformerEncoder};
use cem_tensor::Tensor;
use rand::Rng;

use crate::image::Image;

/// Configuration of the image tower.
#[derive(Debug, Clone, Copy)]
pub struct ImageEncoderConfig {
    /// Dimensionality of raw patch features.
    pub patch_dim: usize,
    pub d_model: usize,
    pub heads: usize,
    pub layers: usize,
    pub ffn_hidden: usize,
    /// Maximum number of patches (positional table size, +1 for the class
    /// token).
    pub max_patches: usize,
    /// Joint embedding dimension.
    pub embed_dim: usize,
}

/// ViT-style image encoder.
pub struct ImageEncoder {
    patch_proj: Linear,
    class_token: Tensor,
    pos_emb: Embedding,
    transformer: TransformerEncoder,
    proj: Linear,
    config: ImageEncoderConfig,
}

impl ImageEncoder {
    pub fn new<R: Rng>(config: ImageEncoderConfig, rng: &mut R) -> Self {
        ImageEncoder {
            patch_proj: Linear::new(config.patch_dim, config.d_model, rng),
            class_token: cem_tensor::init::randn(&[1, config.d_model], 0.02, rng).requires_grad(),
            pos_emb: Embedding::new(config.max_patches + 1, config.d_model, rng),
            transformer: TransformerEncoder::new(
                config.d_model,
                config.heads,
                config.layers,
                config.ffn_hidden,
                rng,
            ),
            proj: Linear::new_no_bias(config.d_model, config.embed_dim, rng),
            config,
        }
    }

    pub fn config(&self) -> &ImageEncoderConfig {
        &self.config
    }

    /// Encode one image into the joint space: `[embed_dim]`.
    pub fn encode(&self, image: &Image) -> Tensor {
        assert_eq!(
            image.patch_dim(),
            self.config.patch_dim,
            "image patch dim {} != encoder patch dim {}",
            image.patch_dim(),
            self.config.patch_dim
        );
        let n = image.n_patches().min(self.config.max_patches);
        let patches = image.as_tensor().slice_rows(0, n); // [n, patch_dim]
        let projected = self.patch_proj.forward(&patches); // [n, d_model]
        let seq = Tensor::concat_rows(&[self.class_token.clone(), projected]); // [n+1, d]
        let positions: Vec<usize> = (0..n + 1).collect();
        let seq = seq.add(&self.pos_emb.forward(&positions));
        let hidden = self.transformer.forward(&seq, None);
        let cls = hidden.slice_rows(0, 1);
        self.proj.forward(&cls).reshape(&[self.config.embed_dim])
    }

    /// Encode a batch of images into `[N, embed_dim]`.
    pub fn encode_batch(&self, images: &[&Image]) -> Tensor {
        assert!(!images.is_empty(), "empty image batch");
        let rows: Vec<Tensor> = images.iter().map(|img| self.encode(img)).collect();
        Tensor::stack_rows(&rows)
    }

    pub fn embed_dim(&self) -> usize {
        self.config.embed_dim
    }
}

impl Module for ImageEncoder {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("patch_proj", self.patch_proj.named_params());
        v.push(("class_token".to_string(), self.class_token.clone()));
        v.extend(cem_nn::module::with_prefix("pos_emb", self.pos_emb.named_params()));
        v.extend(cem_nn::module::with_prefix("transformer", self.transformer.named_params()));
        v.extend(cem_nn::module::with_prefix("proj", self.proj.named_params()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> ImageEncoderConfig {
        ImageEncoderConfig {
            patch_dim: 6,
            d_model: 16,
            heads: 2,
            layers: 2,
            ffn_hidden: 32,
            max_patches: 9,
            embed_dim: 8,
        }
    }

    fn random_image(rng: &mut StdRng, n: usize, d: usize) -> Image {
        let data: Vec<f32> =
            (0..n * d).map(|_| cem_tensor::init::randn_value(rng)).collect();
        Image::new(data, n, d)
    }

    #[test]
    fn encode_output_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = ImageEncoder::new(small_config(), &mut rng);
        let img = random_image(&mut rng, 4, 6);
        assert_eq!(enc.encode(&img).dims(), &[8]);
    }

    #[test]
    fn excess_patches_truncate() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = ImageEncoder::new(small_config(), &mut rng);
        let img = random_image(&mut rng, 20, 6);
        assert_eq!(enc.encode(&img).dims(), &[8]);
    }

    #[test]
    fn different_images_differ() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = ImageEncoder::new(small_config(), &mut rng);
        let a = enc.encode(&random_image(&mut rng, 4, 6)).to_vec();
        let b = enc.encode(&random_image(&mut rng, 4, 6)).to_vec();
        assert!(a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-4));
    }

    #[test]
    fn batch_matches_individuals() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = ImageEncoder::new(small_config(), &mut rng);
        let imgs: Vec<Image> = (0..3).map(|_| random_image(&mut rng, 4, 6)).collect();
        let refs: Vec<&Image> = imgs.iter().collect();
        let batch = enc.encode_batch(&refs);
        assert_eq!(batch.dims(), &[3, 8]);
        let single = enc.encode(&imgs[2]).to_vec();
        for (j, v) in single.iter().enumerate() {
            assert!((batch.at2(2, j) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_reach_class_token_and_proj() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = ImageEncoder::new(small_config(), &mut rng);
        let img = random_image(&mut rng, 4, 6);
        enc.encode(&img).sum().backward();
        for (name, p) in enc.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    #[should_panic(expected = "patch dim")]
    fn wrong_patch_dim_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let enc = ImageEncoder::new(small_config(), &mut rng);
        let img = random_image(&mut rng, 4, 5);
        let _ = enc.encode(&img);
    }
}
