//! The image representation: a bag of patch feature vectors.
//!
//! A real ViT/32 turns an image into a grid of 32×32 patches and embeds each
//! patch before the Transformer ever sees it; a ResNet's final feature map
//! is likewise a grid of local descriptors. This reproduction represents an
//! image *at that stage*: `n_patches` feature vectors of `patch_dim`
//! dimensions. The synthetic generators in `cem-data` render entity
//! attributes into patches; PCP (paper Alg. 2 phase 1) consumes the same
//! patches as its "local properties".

use cem_tensor::Tensor;

/// An image as a row-major `[n_patches, patch_dim]` block of patch features.
#[derive(Debug, Clone)]
pub struct Image {
    data: Vec<f32>,
    n_patches: usize,
    patch_dim: usize,
}

impl Image {
    /// Build from a flat patch-major buffer.
    pub fn new(data: Vec<f32>, n_patches: usize, patch_dim: usize) -> Self {
        assert_eq!(data.len(), n_patches * patch_dim, "patch buffer size mismatch");
        assert!(n_patches > 0, "image must have at least one patch");
        Image { data, n_patches, patch_dim }
    }

    /// Build from a list of equally-sized patch vectors.
    pub fn from_patches(patches: Vec<Vec<f32>>) -> Self {
        assert!(!patches.is_empty(), "image must have at least one patch");
        let patch_dim = patches[0].len();
        let n_patches = patches.len();
        let mut data = Vec::with_capacity(n_patches * patch_dim);
        for (i, p) in patches.iter().enumerate() {
            assert_eq!(p.len(), patch_dim, "patch {i} has inconsistent dim");
            data.extend_from_slice(p);
        }
        Image { data, n_patches, patch_dim }
    }

    pub fn n_patches(&self) -> usize {
        self.n_patches
    }

    pub fn patch_dim(&self) -> usize {
        self.patch_dim
    }

    /// Patch `i` as a slice.
    pub fn patch(&self, i: usize) -> &[f32] {
        &self.data[i * self.patch_dim..(i + 1) * self.patch_dim]
    }

    /// All patches as a `[n_patches, patch_dim]` tensor (no grad).
    pub fn as_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &[self.n_patches, self.patch_dim])
    }

    /// Mean of all patch vectors (a cheap whole-image descriptor used by
    /// some baselines).
    pub fn mean_patch(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.patch_dim];
        for i in 0..self.n_patches {
            for (m, v) in mean.iter_mut().zip(self.patch(i)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= self.n_patches as f32;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let img = Image::from_patches(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(img.n_patches(), 3);
        assert_eq!(img.patch_dim(), 2);
        assert_eq!(img.patch(1), &[3.0, 4.0]);
    }

    #[test]
    fn tensor_view_shape() {
        let img = Image::new(vec![0.0; 12], 4, 3);
        assert_eq!(img.as_tensor().dims(), &[4, 3]);
    }

    #[test]
    fn mean_patch_averages() {
        let img = Image::from_patches(vec![vec![1.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(img.mean_patch(), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent dim")]
    fn ragged_patches_panic() {
        Image::from_patches(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
