//! The text tower: token + positional embeddings → Transformer → `[CLS]`
//! head projection into the joint embedding space.
//!
//! Two entry points mirror the paper's Figure 4:
//!
//! * **Sequence-based** ([`TextEncoder::encode_ids`]): takes token ids
//!   (already wrapped in `[CLS] … [SEP]` by the tokenizer), used by the
//!   baseline prompt and the hard-encoding prompt.
//! * **Feature-based** ([`TextEncoder::forward_embeddings`]): takes raw
//!   input embeddings `[T, d_model]`, used by the soft prompt, which splices
//!   a learned structural feature vector into the input sequence (Eq. 7).

use cem_nn::{Embedding, Module, TransformerEncoder};
use cem_tensor::Tensor;
use rand::Rng;

/// Configuration of the text tower.
#[derive(Debug, Clone, Copy)]
pub struct TextEncoderConfig {
    pub vocab_size: usize,
    pub d_model: usize,
    pub heads: usize,
    pub layers: usize,
    pub ffn_hidden: usize,
    /// Maximum sequence length (77 in stock CLIP; the paper extends to 512).
    pub max_len: usize,
    /// Joint embedding dimension.
    pub embed_dim: usize,
}

/// CLIP text encoder.
pub struct TextEncoder {
    token_emb: Embedding,
    pos_emb: Embedding,
    transformer: TransformerEncoder,
    proj: cem_nn::Linear,
    config: TextEncoderConfig,
}

impl TextEncoder {
    pub fn new<R: Rng>(config: TextEncoderConfig, rng: &mut R) -> Self {
        TextEncoder {
            token_emb: Embedding::new(config.vocab_size, config.d_model, rng),
            pos_emb: Embedding::new(config.max_len, config.d_model, rng),
            transformer: TransformerEncoder::new(
                config.d_model,
                config.heads,
                config.layers,
                config.ffn_hidden,
                rng,
            ),
            proj: cem_nn::Linear::new_no_bias(config.d_model, config.embed_dim, rng),
            config,
        }
    }

    pub fn config(&self) -> &TextEncoderConfig {
        &self.config
    }

    /// Grow (or shrink) the positional table to a new maximum length,
    /// copying existing positions — how the paper "extend[s] the maximum
    /// length of input tokens from the originally 77 to 512".
    pub fn resize_max_len<R: Rng>(&mut self, new_max: usize, rng: &mut R) {
        let old = self.pos_emb.weight().clone();
        let (old_len, d) = old.shape().as_matrix();
        let mut new_emb = cem_tensor::init::randn(&[new_max, d], 0.01, rng);
        {
            let src = old.to_vec();
            let mut dst = new_emb.data_mut();
            let copy = old_len.min(new_max);
            dst.as_mut_slice()[..copy * d].copy_from_slice(&src[..copy * d]);
        }
        new_emb = new_emb.requires_grad();
        self.pos_emb = Embedding::from_weight(new_emb);
        self.config.max_len = new_max;
    }

    /// Embed token ids into `[T, d_model]` (token + positional), truncating
    /// at `max_len`. This is the input the feature-based path manipulates.
    pub fn embed_ids(&self, ids: &[usize]) -> Tensor {
        let t = ids.len().min(self.config.max_len);
        let ids = &ids[..t];
        let positions: Vec<usize> = (0..t).collect();
        self.token_emb.forward(ids).add(&self.pos_emb.forward(&positions))
    }

    /// Run the Transformer on pre-built input embeddings `[T, d_model]` and
    /// return the projected `[CLS]`(=first position) representation
    /// `[embed_dim]`.
    pub fn forward_embeddings(&self, x: &Tensor) -> Tensor {
        let (t, _) = x.shape().as_matrix();
        assert!(t >= 1, "empty sequence");
        assert!(
            t <= self.config.max_len,
            "sequence length {t} exceeds max_len {} — truncate first",
            self.config.max_len
        );
        let hidden = self.transformer.forward(x, None);
        let cls = hidden.slice_rows(0, 1); // [1, d_model]
        self.proj.forward(&cls).reshape(&[self.config.embed_dim])
    }

    /// Sequence entry point: ids → joint-space vector `[embed_dim]`.
    /// Sequences longer than `max_len` are truncated (paper Sec. III-B
    /// drawback (2) — important for the hard-prompt ablation).
    pub fn encode_ids(&self, ids: &[usize]) -> Tensor {
        let x = self.embed_ids(ids);
        self.forward_embeddings(&x)
    }

    /// Encode a batch of id sequences into `[N, embed_dim]`.
    pub fn encode_batch(&self, batch: &[Vec<usize>]) -> Tensor {
        assert!(!batch.is_empty(), "empty batch");
        let rows: Vec<Tensor> = batch.iter().map(|ids| self.encode_ids(ids)).collect();
        Tensor::stack_rows(&rows)
    }

    /// Read-only view of the token embedding table `[vocab, d_model]` —
    /// used as the "pre-trained LM" initialisation for soft prompts and as
    /// label features in PCP.
    pub fn token_embedding_table(&self) -> &Tensor {
        self.token_emb.weight()
    }

    /// Parameters of the output projection head only (for head-scope
    /// prompt tuning, which preserves the pre-trained tower).
    pub fn head_params(&self) -> Vec<cem_tensor::Tensor> {
        self.proj.params()
    }

    /// Token + positional embedding parameters (input-side tuning).
    pub fn embedding_params(&self) -> Vec<cem_tensor::Tensor> {
        let mut v = self.token_emb.params();
        v.extend(self.pos_emb.params());
        v
    }

    pub fn d_model(&self) -> usize {
        self.config.d_model
    }

    pub fn embed_dim(&self) -> usize {
        self.config.embed_dim
    }

    pub fn max_len(&self) -> usize {
        self.config.max_len
    }
}

impl Module for TextEncoder {
    fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut v = cem_nn::module::with_prefix("token_emb", self.token_emb.named_params());
        v.extend(cem_nn::module::with_prefix("pos_emb", self.pos_emb.named_params()));
        v.extend(cem_nn::module::with_prefix("transformer", self.transformer.named_params()));
        v.extend(cem_nn::module::with_prefix("proj", self.proj.named_params()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> TextEncoderConfig {
        TextEncoderConfig {
            vocab_size: 50,
            d_model: 16,
            heads: 2,
            layers: 2,
            ffn_hidden: 32,
            max_len: 12,
            embed_dim: 8,
        }
    }

    #[test]
    fn encode_ids_output_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TextEncoder::new(small_config(), &mut rng);
        let v = enc.encode_ids(&[1, 7, 9, 2]);
        assert_eq!(v.dims(), &[8]);
    }

    #[test]
    fn long_sequences_truncate_silently() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TextEncoder::new(small_config(), &mut rng);
        let long: Vec<usize> = (0..40).map(|i| i % 50).collect();
        let v = enc.encode_ids(&long);
        assert_eq!(v.dims(), &[8]);
        // Truncation means tokens past max_len do not change the output.
        let mut longer = long.clone();
        longer.extend([5, 6, 7]);
        let v2 = enc.encode_ids(&longer);
        let (a, b) = (v.to_vec(), v2.to_vec());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn different_tokens_give_different_embeddings() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TextEncoder::new(small_config(), &mut rng);
        let a = enc.encode_ids(&[1, 10, 2]).to_vec();
        let b = enc.encode_ids(&[1, 11, 2]).to_vec();
        assert!(a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-4));
    }

    #[test]
    fn batch_matches_individual_encodings() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TextEncoder::new(small_config(), &mut rng);
        let seqs = vec![vec![1, 5, 2], vec![1, 9, 30, 2]];
        let batch = enc.encode_batch(&seqs);
        assert_eq!(batch.dims(), &[2, 8]);
        let single = enc.encode_ids(&seqs[1]).to_vec();
        for (j, v) in single.iter().enumerate() {
            assert!((batch.at2(1, j) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_max_len_preserves_existing_positions_behaviour() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut enc = TextEncoder::new(small_config(), &mut rng);
        let before = enc.encode_ids(&[1, 4, 2]).to_vec();
        enc.resize_max_len(64, &mut rng);
        assert_eq!(enc.max_len(), 64);
        let after = enc.encode_ids(&[1, 4, 2]).to_vec();
        for (x, y) in before.iter().zip(&after) {
            assert!((x - y).abs() < 1e-5);
        }
        // And longer sequences are now representable.
        let long: Vec<usize> = (0..40).map(|i| i % 50).collect();
        let v = enc.encode_ids(&long);
        assert_eq!(v.dims(), &[8]);
    }

    #[test]
    fn feature_path_consumes_custom_embeddings() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TextEncoder::new(small_config(), &mut rng);
        let x = enc.embed_ids(&[1, 6, 2]);
        assert_eq!(x.dims(), &[3, 16]);
        let out = enc.forward_embeddings(&x);
        assert_eq!(out.dims(), &[8]);
        // Same as the sequence path end to end.
        let direct = enc.encode_ids(&[1, 6, 2]).to_vec();
        for (x, y) in out.to_vec().iter().zip(&direct) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_reach_token_table() {
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TextEncoder::new(small_config(), &mut rng);
        enc.encode_ids(&[1, 3, 2]).sum().backward();
        assert!(enc.token_embedding_table().grad().is_some());
    }
}
