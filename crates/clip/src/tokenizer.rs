//! Word-level tokenizer with BERT-style special tokens.

use std::collections::HashMap;

/// Id of the padding token.
pub const PAD: usize = 0;
/// Id of the sequence-start token (`[CLS]`).
pub const CLS: usize = 1;
/// Id of the sequence-end token (`[SEP]`).
pub const SEP: usize = 2;
/// Id of the mask/placeholder token (`[MASK]`).
pub const MASK: usize = 3;
/// Id of the unknown-word token.
pub const UNK: usize = 4;

const SPECIALS: [&str; 5] = ["[PAD]", "[CLS]", "[SEP]", "[MASK]", "[UNK]"];

/// A fixed word-level vocabulary. Text is lowercased and split on
/// non-alphanumeric boundaries (hyphens inside words are kept, matching how
/// attribute names like `long-wings` appear in the datasets).
#[derive(Debug, Clone)]
pub struct Tokenizer {
    word_to_id: HashMap<String, usize>,
    id_to_word: Vec<String>,
}

/// Split text into normalised word tokens.
pub fn split_words(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !(c.is_alphanumeric() || c == '-' || c == '_'))
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect()
}

impl Tokenizer {
    /// Build a vocabulary from a corpus of texts. Words are assigned ids in
    /// first-appearance order after the special tokens.
    pub fn build<'a>(corpus: impl IntoIterator<Item = &'a str>) -> Self {
        let mut word_to_id = HashMap::new();
        let mut id_to_word = Vec::new();
        for special in SPECIALS {
            word_to_id.insert(special.to_string(), id_to_word.len());
            id_to_word.push(special.to_string());
        }
        for text in corpus {
            for word in split_words(text) {
                if !word_to_id.contains_key(&word) {
                    word_to_id.insert(word.clone(), id_to_word.len());
                    id_to_word.push(word);
                }
            }
        }
        Tokenizer { word_to_id, id_to_word }
    }

    pub fn vocab_size(&self) -> usize {
        self.id_to_word.len()
    }

    /// Id of a word, or `UNK`.
    pub fn id_of(&self, word: &str) -> usize {
        self.word_to_id.get(word).copied().unwrap_or(UNK)
    }

    /// The word for an id (panics on out-of-range ids).
    pub fn word_of(&self, id: usize) -> &str {
        &self.id_to_word[id]
    }

    /// Tokenize raw text to word ids (no specials added).
    pub fn tokenize(&self, text: &str) -> Vec<usize> {
        split_words(text).iter().map(|w| self.id_of(w)).collect()
    }

    /// Encode as a `[CLS] … [SEP]`-delimited sequence, truncated to
    /// `max_len` total positions (the paper calls out CLIP's 77-token limit
    /// and later extends it to 512). Returns `(ids, valid_len)`; `ids` is
    /// exactly `valid_len` long — padding is the caller's concern.
    pub fn encode(&self, text: &str, max_len: usize) -> (Vec<usize>, usize) {
        assert!(max_len >= 2, "max_len must fit [CLS] and [SEP]");
        let mut ids = vec![CLS];
        for id in self.tokenize(text) {
            if ids.len() == max_len - 1 {
                break; // reserve the final slot for [SEP]
            }
            ids.push(id);
        }
        ids.push(SEP);
        let len = ids.len();
        (ids, len)
    }

    /// Decode ids back to a readable string (specials skipped).
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .filter(|&&id| id >= SPECIALS.len())
            .map(|&id| self.word_of(id))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Fraction of words in `text` that are in-vocabulary.
    pub fn coverage(&self, text: &str) -> f32 {
        let words = split_words(text);
        if words.is_empty() {
            return 1.0;
        }
        let known = words.iter().filter(|w| self.word_to_id.contains_key(*w)).count();
        known as f32 / words.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let t = Tokenizer::build(["hello world"]);
        assert_eq!(t.id_of("[PAD]"), PAD);
        assert_eq!(t.id_of("[CLS]"), CLS);
        assert_eq!(t.id_of("[SEP]"), SEP);
        assert_eq!(t.id_of("[MASK]"), MASK);
        assert_eq!(t.id_of("[UNK]"), UNK);
        assert_eq!(t.vocab_size(), 7);
    }

    #[test]
    fn split_normalises_case_and_punctuation() {
        assert_eq!(split_words("A Photo, of LAYSAN albatross!"), vec![
            "a", "photo", "of", "laysan", "albatross"
        ]);
        assert_eq!(split_words("long-wings"), vec!["long-wings"]);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let t = Tokenizer::build(["known words only"]);
        assert_eq!(t.id_of("mystery"), UNK);
        let ids = t.tokenize("known mystery");
        assert_eq!(ids[1], UNK);
    }

    #[test]
    fn encode_adds_specials_and_truncates() {
        let t = Tokenizer::build(["a b c d e f g h"]);
        let (ids, len) = t.encode("a b c d e f g h", 5);
        assert_eq!(len, 5);
        assert_eq!(ids[0], CLS);
        assert_eq!(*ids.last().unwrap(), SEP);
        assert_eq!(ids.len(), 5); // CLS + 3 words + SEP
    }

    #[test]
    fn encode_short_text_is_not_padded() {
        let t = Tokenizer::build(["bird"]);
        let (ids, len) = t.encode("bird", 77);
        assert_eq!(ids.len(), 3);
        assert_eq!(len, 3);
    }

    #[test]
    fn decode_skips_specials() {
        let t = Tokenizer::build(["white crown"]);
        let (ids, _) = t.encode("white crown", 77);
        assert_eq!(t.decode(&ids), "white crown");
    }

    #[test]
    fn coverage_reflects_vocabulary() {
        let t = Tokenizer::build(["white black"]);
        assert!((t.coverage("white black") - 1.0).abs() < 1e-6);
        assert!((t.coverage("white purple") - 0.5).abs() < 1e-6);
        assert_eq!(t.coverage(""), 1.0);
    }

    #[test]
    fn ids_stable_across_rebuilds() {
        let t1 = Tokenizer::build(["alpha beta gamma"]);
        let t2 = Tokenizer::build(["alpha beta gamma"]);
        assert_eq!(t1.id_of("gamma"), t2.id_of("gamma"));
    }
}
