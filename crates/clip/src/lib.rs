//! # cem-clip
//!
//! A miniature CLIP-style dual encoder, built and *pre-trained in process*
//! to stand in for the pre-trained CLIP checkpoint the paper prompt-tunes
//! (see DESIGN.md for the substitution argument).
//!
//! Components mirror the reference model:
//!
//! * [`tokenizer::Tokenizer`] — word-level tokenizer with the `[CLS]` /
//!   `[SEP]` / `[MASK]` specials the paper's sequence encoder uses, plus a
//!   configurable context length (77 by default, extensible to 512 as the
//!   paper does during prompt learning).
//! * [`text_encoder::TextEncoder`] — token + positional embeddings feeding a
//!   pre-LN Transformer; the `[CLS]` output is projected into the joint
//!   embedding space. Exposes both the *sequence* entry point (token ids)
//!   and the *feature* entry point (raw input embeddings) that the paper's
//!   soft prompt requires (Fig. 4b).
//! * [`image::Image`] + [`image_encoder::ImageEncoder`] — images are grids
//!   of patch feature vectors (a ViT/32 after patchification is exactly
//!   this); the encoder projects patches, prepends a learnable class token,
//!   runs the Transformer, and projects into the joint space.
//! * [`model::Clip`] — the dual encoder with a learnable temperature and the
//!   symmetric InfoNCE objective used for pre-training.
//! * [`pretrain`] — the in-process contrastive pre-training loop.

pub mod image;
pub mod image_encoder;
pub mod model;
pub mod pretrain;
pub mod text_encoder;
pub mod tokenizer;

pub use image::Image;
pub use image_encoder::ImageEncoder;
pub use model::{Clip, ClipConfig};
pub use pretrain::{pretrain, PretrainReport};
pub use text_encoder::TextEncoder;
pub use tokenizer::Tokenizer;
