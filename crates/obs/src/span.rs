//! Scope timers backing the [`span!`](crate::span) macro.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::registry::SpanStats;

/// RAII scope timer. While obs is disabled, opening a span is a branch and
/// the guard holds nothing — no clock read, no allocation, no atomics.
pub struct SpanGuard(Option<(Arc<SpanStats>, Instant)>);

impl SpanGuard {
    /// Open a span named `name`, resolving (once per call site) through
    /// `cached`. Called by the [`span!`](crate::span) macro.
    #[inline]
    pub fn open(name: &'static str, cached: &OnceLock<Arc<SpanStats>>) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard(None);
        }
        let stats = Arc::clone(cached.get_or_init(|| crate::registry::global().span_stats(name)));
        SpanGuard(Some((stats, Instant::now())))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((stats, start)) = self.0.take() {
            stats.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_records_nothing() {
        static CACHE: OnceLock<Arc<SpanStats>> = OnceLock::new();
        {
            let _g = SpanGuard::open("test.span.disabled", &CACHE);
        }
        // The cache was never populated: the disabled path did no lookup.
        assert!(CACHE.get().is_none());
    }

    #[test]
    fn enabled_guard_records_once_per_scope() {
        let _on = crate::force_enable();
        static CACHE: OnceLock<Arc<SpanStats>> = OnceLock::new();
        for _ in 0..3 {
            let _g = SpanGuard::open("test.span.enabled", &CACHE);
        }
        let snap = crate::registry::global().snapshot();
        assert_eq!(snap.span("test.span.enabled").unwrap().calls, 3);
    }
}
