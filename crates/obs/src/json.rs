//! Minimal flat JSON — exactly what the event schema needs, nothing more.
//!
//! Every event line is one *flat* JSON object: string, finite number,
//! boolean, or null values, no nested containers. Flatness is a deliberate
//! schema constraint (it keeps every consumer — `obs_report`, CI
//! validation, `jq`-style ad-hoc tooling — trivial), so the parser rejects
//! nesting rather than supporting it. Field order is preserved, which makes
//! serialize → parse → serialize round-trips byte-stable.
//!
//! Numbers are emitted through Rust's shortest-roundtrip `f64` formatting;
//! values beyond 2^53 (where `f64` loses integer precision) must be encoded
//! as strings by the caller — [`crate::events::Event`] does this for seeds
//! and fingerprints.

use std::fmt;

/// A flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A flat JSON object with preserved field order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Object(pub Vec<(String, Value)>);

impl Object {
    pub fn new() -> Self {
        Object::default()
    }

    /// Append a field (last write wins on lookup only if keys are unique —
    /// callers keep them unique).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.0.push((key.into(), value.into()));
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Serialize as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.0.len() * 16 + 2);
        out.push('{');
        for (i, (key, value)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, key);
            out.push(':');
            match value {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Num(n) => {
                    if n.is_finite() {
                        // Integral values print without a fraction.
                        if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                            out.push_str(&format!("{}", *n as i64));
                        } else {
                            out.push_str(&format!("{n}"));
                        }
                    } else {
                        // JSON has no NaN/∞; null is the honest encoding.
                        out.push_str("null");
                    }
                }
                Value::Str(s) => write_string(&mut out, s),
            }
        }
        out.push('}');
        out
    }

    /// Parse one flat JSON object. Errors carry the byte offset.
    pub fn parse(input: &str) -> Result<Object, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let obj = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing bytes after object"));
        }
        Ok(obj)
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn object(&mut self) -> Result<Object, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'{') | Some(b'[') => {
                Err(self.err("nested containers are outside the flat event schema"))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad utf8"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Value)]) -> Object {
        Object(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn round_trip_preserves_fields_and_order() {
        let o = obj(&[
            ("type", "epoch_end".into()),
            ("epoch", Value::Num(3.0)),
            ("loss", Value::Num(0.125)),
            ("diverged", Value::Bool(false)),
            ("note", Value::Null),
        ]);
        let line = o.to_json();
        let parsed = Object::parse(&line).unwrap();
        assert_eq!(parsed, o);
        // Byte-stable second round.
        assert_eq!(parsed.to_json(), line);
    }

    #[test]
    fn integers_print_without_fraction() {
        let o = obj(&[("n", Value::Num(42.0))]);
        assert_eq!(o.to_json(), r#"{"n":42}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let o = obj(&[("n", Value::Num(f64::NAN))]);
        assert_eq!(o.to_json(), r#"{"n":null}"#);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "line\nbreak \"quoted\" back\\slash\ttab\u{1}";
        let o = obj(&[("s", tricky.into())]);
        let parsed = Object::parse(&o.to_json()).unwrap();
        assert_eq!(parsed.str("s"), Some(tricky));
    }

    #[test]
    fn unicode_survives() {
        let o = obj(&[("s", "CrossEM⁺ — テスト".into())]);
        let parsed = Object::parse(&o.to_json()).unwrap();
        assert_eq!(parsed.str("s"), Some("CrossEM⁺ — テスト"));
    }

    #[test]
    fn nested_containers_are_rejected() {
        let err = Object::parse(r#"{"a": {"b": 1}}"#).unwrap_err();
        assert!(err.message.contains("flat"), "{err}");
        assert!(Object::parse(r#"{"a": [1,2]}"#).is_err());
    }

    #[test]
    fn malformed_lines_error_with_offset() {
        assert!(Object::parse("").is_err());
        assert!(Object::parse("{").is_err());
        assert!(Object::parse(r#"{"a" 1}"#).is_err());
        assert!(Object::parse(r#"{"a": 1} extra"#).is_err());
        assert!(Object::parse(r#"{"a": 12..5}"#).is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(Object::parse("{}").unwrap(), Object::new());
        assert_eq!(Object::parse(" { } ").unwrap(), Object::new());
    }
}
