//! # cem-obs
//!
//! Observability for the CrossEM workspace: structured tracing, a metrics
//! registry, and run-manifest telemetry (see DESIGN.md, "Observability").
//! Pure std — this crate sits *below* `cem-tensor` (whose kernels it
//! instruments), so it must not pull in any dependency.
//!
//! Three layers:
//!
//! * **Registry** ([`registry`]) — a global, thread-safe store of named
//!   counters, gauges, and log₂-bucketed latency histograms. Hot paths
//!   record through [`span!`] / [`counter_add!`], which cache their handle
//!   in a call-site `OnceLock` so an increment is one relaxed atomic add.
//! * **Event stream** ([`events`]) — flat JSON objects, one per line,
//!   written through a process-global [`events::JsonlSink`] (epoch
//!   boundaries, batch losses, checkpoint saves/loads, guard trips, cache
//!   hits, k-means convergence). Each line is a single `write_all`, so
//!   concurrent writers never interleave partial lines.
//! * **Run manifest** ([`manifest`]) — an [`manifest::ObsSession`] opens
//!   the JSONL file next to the checkpoints, writes a [`manifest::RunManifest`]
//!   as the first line, and on `finish` appends per-span/per-counter
//!   summary lines plus a final `run_end` record.
//!
//! ## Overhead contract
//!
//! Telemetry is **off by default** and zero-cost-when-disabled: every
//! instrumentation point first checks [`enabled()`] — one relaxed atomic
//! load — and does nothing else when it returns false. Enabling happens via
//! the `CEM_OBS` environment variable (`1`/`true`/`on`), programmatically
//! through [`force_enable`], or implicitly while an
//! [`manifest::ObsSession`] is live. Telemetry only *observes* (wall-clock
//! reads and atomic adds); it never touches RNG streams, parameters, or
//! schedules, so training results are bit-identical with obs on or off at
//! any thread count (asserted by `tests/observability.rs`).
//!
//! Leveled logging ([`cem_info!`], [`cem_debug!`], gated by `CEM_LOG`) is
//! independent of the metrics switch so library crates never print
//! unconditionally.

pub mod events;
pub mod json;
pub mod logging;
pub mod manifest;
pub mod registry;
pub mod span;

pub use events::{emit, install_sink, uninstall_sink, Event, JsonlSink};
pub use json::{JsonError, Object, Value};
pub use logging::{log_enabled, set_log_level, LogLevel};
pub use manifest::{build_info, BuildInfo, ObsSession, RunManifest};
pub use registry::{global, Counter, Gauge, Registry, Snapshot, SpanStats};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Live programmatic enables (forced guards + active sessions).
static FORCED: AtomicUsize = AtomicUsize::new(0);

/// `CEM_OBS` parsed once per process.
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CEM_OBS")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "TRUE" | "ON"))
            .unwrap_or(false)
    })
}

/// Whether telemetry records anything. The disabled path of every
/// instrumentation point is this single relaxed load and a branch.
#[inline]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) > 0 || env_enabled()
}

/// RAII programmatic enable (testing and drill harnesses). Nests: obs stays
/// on until every guard has dropped (and `CEM_OBS` is unset).
pub struct ObsGuard(());

/// Turn telemetry on for the lifetime of the returned guard.
pub fn force_enable() -> ObsGuard {
    FORCED.fetch_add(1, Ordering::Relaxed);
    ObsGuard(())
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        FORCED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Time a lexical scope into the global registry's histogram for `$name`.
///
/// ```
/// fn hot() {
///     cem_obs::span!("phase.encode");
///     // … work; the span closes when the scope ends …
/// }
/// ```
///
/// Span names are dot-separated, coarse-to-fine (`phase.encode`,
/// `prep.proximity`, `checkpoint.save`); `obs_report` treats the `phase.*`,
/// `prep.*`, `setup.*`, `pretrain.*`, and `checkpoint.*` families as the
/// disjoint leaves of the wall-time breakdown, so spans within one family
/// must not nest.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        let _cem_obs_span = {
            static STATS: std::sync::OnceLock<std::sync::Arc<$crate::registry::SpanStats>> =
                std::sync::OnceLock::new();
            $crate::span::SpanGuard::open($name, &STATS)
        };
    };
}

/// Add to the global counter `$name` (no-op while disabled).
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static COUNTER: std::sync::OnceLock<std::sync::Arc<$crate::registry::Counter>> =
                std::sync::OnceLock::new();
            COUNTER.get_or_init(|| $crate::registry::global().counter($name)).add($n as u64);
        }
    };
}

/// Set the global gauge `$name` (no-op while disabled).
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static GAUGE: std::sync::OnceLock<std::sync::Arc<$crate::registry::Gauge>> =
                std::sync::OnceLock::new();
            GAUGE.get_or_init(|| $crate::registry::global().gauge($name)).set($v as f64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_enable_nests_and_restores() {
        // Note: CEM_OBS unset in the test environment.
        let before = enabled();
        {
            let _a = force_enable();
            assert!(enabled());
            {
                let _b = force_enable();
                assert!(enabled());
            }
            assert!(enabled());
        }
        assert_eq!(enabled(), before);
    }

    #[test]
    fn macros_record_only_while_enabled() {
        counter_add!("test.lib.disabled", 5);
        let snap = global().snapshot();
        assert_eq!(snap.counter("test.lib.disabled"), None);

        let _g = force_enable();
        counter_add!("test.lib.enabled", 2);
        counter_add!("test.lib.enabled", 3);
        let snap = global().snapshot();
        assert_eq!(snap.counter("test.lib.enabled"), Some(5));
    }

    #[test]
    fn span_macro_times_a_scope() {
        let _g = force_enable();
        {
            span!("test.lib.span");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = global().snapshot();
        let s = snap.span("test.lib.span").expect("span recorded");
        assert!(s.calls >= 1);
        assert!(s.total_nanos >= 2_000_000, "slept 2ms, recorded {}ns", s.total_nanos);
    }
}
