//! Leveled stderr logging for library crates.
//!
//! Library code must never print unconditionally; it logs through
//! [`cem_info!`](crate::cem_info) / [`cem_debug!`](crate::cem_debug), which
//! are silent unless `CEM_LOG` (or a programmatic [`set_log_level`]) turns
//! them on. The default is [`LogLevel::Off`], so tests and downstream
//! consumers see no output.
//!
//! `CEM_LOG` accepts `off` (default), `info`, and `debug`; unknown values
//! fall back to `off`. Binaries (the bench drills) may call
//! [`set_log_level`] to force a level regardless of the environment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Verbosity tiers, ordered: `Off < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// No output (the default).
    Off = 0,
    /// Milestones: run/epoch starts and ends, checkpoints, guard trips.
    Info = 1,
    /// Per-batch and per-iteration detail.
    Debug = 2,
}

impl LogLevel {
    fn from_u8(v: u8) -> LogLevel {
        match v {
            2 => LogLevel::Debug,
            1 => LogLevel::Info,
            _ => LogLevel::Off,
        }
    }

    fn parse(s: &str) -> LogLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" | "2" => LogLevel::Debug,
            "info" | "1" => LogLevel::Info,
            _ => LogLevel::Off,
        }
    }
}

/// Programmatic override: 0 = none (defer to `CEM_LOG`), else level + 1.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_level() -> LogLevel {
    static PARSED: OnceLock<LogLevel> = OnceLock::new();
    *PARSED.get_or_init(|| {
        std::env::var("CEM_LOG").map(|v| LogLevel::parse(&v)).unwrap_or(LogLevel::Off)
    })
}

/// The effective level: a [`set_log_level`] override wins, else `CEM_LOG`.
pub fn current_log_level() -> LogLevel {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_level(),
        v => LogLevel::from_u8(v - 1),
    }
}

/// Would a message at `level` be printed?
#[inline]
pub fn log_enabled(level: LogLevel) -> bool {
    level != LogLevel::Off && level <= current_log_level()
}

/// Force the level from code (binaries only; libraries should leave the
/// environment in charge).
pub fn set_log_level(level: LogLevel) {
    OVERRIDE.store(level as u8 + 1, Ordering::Relaxed);
}

/// Print one formatted line to stderr (the macros' backend).
pub fn log_line(level: LogLevel, args: std::fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let tag = match level {
        LogLevel::Off => return,
        LogLevel::Info => "info",
        LogLevel::Debug => "debug",
    };
    eprintln!("[cem:{tag}] {args}");
}

/// Log a milestone (`CEM_LOG=info` or higher).
#[macro_export]
macro_rules! cem_info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Info) {
            $crate::logging::log_line($crate::LogLevel::Info, format_args!($($arg)*));
        }
    };
}

/// Log fine-grained progress (`CEM_LOG=debug`).
#[macro_export]
macro_rules! cem_debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Debug) {
            $crate::logging::log_line($crate::LogLevel::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(LogLevel::Off < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(LogLevel::parse("debug"), LogLevel::Debug);
        assert_eq!(LogLevel::parse("INFO"), LogLevel::Info);
        assert_eq!(LogLevel::parse("1"), LogLevel::Info);
        assert_eq!(LogLevel::parse("garbage"), LogLevel::Off);
        assert_eq!(LogLevel::parse(""), LogLevel::Off);
    }

    #[test]
    fn override_controls_enablement() {
        // Tests share the process, so restore the "no override" state last.
        set_log_level(LogLevel::Debug);
        assert!(log_enabled(LogLevel::Info));
        assert!(log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Info);
        assert!(log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Off);
        assert!(!log_enabled(LogLevel::Info));
        // Off is never "enabled" — it is the absence of logging.
        assert!(!log_enabled(LogLevel::Off));
    }
}
